"""Sweep-engine parallelism smoke benchmark.

Times a 3-scenario x 3-ratio market sweep through ``repro.api.Sweep`` on a
multiprocessing pool and checks the facade's core guarantee along the way:
the parallel run's metrics are byte-identical to the serial run's, because
every grid cell's spec fully seeds its own simulation.
"""

from __future__ import annotations

import pytest

from repro.api import Simulation, Sweep
from repro.experiments.reporting import emit_block

WORKERS = 4


def build_sweep() -> Sweep:
    base = (
        Simulation.builder()
        .scenario("geth_unmodified")
        .workload("market", num_buys=30, num_buyers=2)
        .miners(1)
        .clients(2)
        .seed(11)
        .build()
    )
    return (
        Sweep(base)
        .over(
            scenario=["geth_unmodified", "sereth_client", "semantic_mining"],
            buys_per_set=[1.0, 2.0, 10.0],
        )
        .trials(1)
    )


@pytest.mark.benchmark(group="sweep")
def test_bench_parallel_sweep_matches_serial(benchmark):
    serial = build_sweep().run(workers=1)
    parallel = benchmark.pedantic(
        lambda: build_sweep().run(workers=WORKERS), rounds=1, iterations=1
    )
    assert serial.to_json() == parallel.to_json(), "parallel sweep diverged from serial"

    rows = [
        f"{row.tags['scenario']:>16}  ratio {row.tags['buys_per_set']:>4}:1  "
        f"eta = {row.efficiency:.1%}"
        for row in parallel
    ]
    emit_block(
        f"Sweep engine — 9 runs on {WORKERS} workers (byte-identical to serial)",
        "\n".join(rows),
    )
    benchmark.extra_info["runs"] = len(parallel)
    benchmark.extra_info["workers"] = WORKERS
