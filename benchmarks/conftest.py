"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's reported results (see the
per-experiment index in DESIGN.md) and prints the corresponding table or
series via :func:`repro.experiments.reporting.emit_block`, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the evaluation section's numbers; the pytest-benchmark timings are
a by-product that track how expensive each harness is.
"""
