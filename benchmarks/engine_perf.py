#!/usr/bin/env python
"""Engine performance harness: measures per-trial sweep throughput and writes
``BENCH_engine.json``.

Where ``substrate_perf.py`` times the chain primitives (trie, keccak, pool)
and ``experiments_perf.py`` times the experiment lifecycle's execution modes,
this harness times the simulation *engine* itself — the layer between them:
world-state forking, block build/validate, gossip delivery, and worker warmup.

* ``fresh_rows_per_s`` — the figure2 smoke sweep run serially through
  :func:`repro.api.experiment.run_experiment` (no checkpoint), rows/second
  (higher is better).  This is the headline number: how many grid cells the
  engine clears per second of wall time.  *Fresh* means fresh process
  state: every per-process memo (digests, trie roots, wire encodings,
  genesis templates) is cleared before each timed repeat, so the number is
  what a brand-new sweep worker sees on a grid it has never run — repeating
  an identical grid against warm memos would flatter the engine for work a
  real sweep never gets back.
* ``cold_trial_s``     — one figure2 smoke cell with every per-process cache
  cleared first (the first-trial-in-a-fresh-worker cost; lower is better);
* ``warm_trial_s``     — the same cell immediately re-run with warm
  per-process caches (the steady-state worker cost; lower is better).

Checksums: the sweep's exported rows and the single cell's summary are
SHA-256'd so any engine change that alters observable output is caught;
``outputs_identical`` certifies current == baseline output (it is ``null``
when sizes differ, i.e. nothing comparable was measured).

Baseline protocol (same as the substrate harness): the first run — or
``--record-baseline`` — stores its numbers under ``"baseline"``; later runs
keep that baseline, update ``"current"``, and report per-metric ``"speedup"``
(always oriented so higher is better).  A ``speedup`` block is only emitted
when the baseline and current runs used the same sizes and worker count —
comparing across grids or worker counts is meaningless.

``--smoke`` (CI): single repeat, and the run **fails** if its output
checksums differ from the committed baseline's — machine speed varies across
runners but observable output must not.

Usage::

    PYTHONPATH=src python benchmarks/engine_perf.py
    PYTHONPATH=src python benchmarks/engine_perf.py --smoke
    PYTHONPATH=src python benchmarks/engine_perf.py --record-baseline
"""

from __future__ import annotations

import argparse
import hashlib
import json
import time
from pathlib import Path
from typing import Any, Dict, Tuple

SECONDS_METRICS = {"cold_trial_s", "warm_trial_s"}
THROUGHPUT_METRICS = {"fresh_rows_per_s"}
METRICS = tuple(sorted(SECONDS_METRICS | THROUGHPUT_METRICS))


def _clear_engine_caches() -> None:
    """Drop every per-process memo the engine consults (cold-start state)."""
    from repro.api.lifecycle import reset_process_caches

    reset_process_caches()


def _sweep_and_cell():
    """The figure2 smoke sweep plus its first cell's spec."""
    from repro.api import ExperimentOptions
    from repro.api.experiment import plan_experiment

    _experiment, _options, sweep = plan_experiment(
        "figure2", ExperimentOptions(smoke=True, workers=1)
    )
    jobs = sweep.jobs()
    return sweep, jobs[0][0], len(jobs)


def bench_fresh_sweep(workers: int) -> Tuple[float, int, str]:
    """The figure2 smoke sweep through the experiment engine from fresh
    process state; returns (elapsed, rows, checksum-of-exported-rows)."""
    from repro.api import ExperimentOptions, run_experiment

    _clear_engine_caches()
    started = time.perf_counter()
    run = run_experiment("figure2", ExperimentOptions(smoke=True, workers=workers))
    elapsed = time.perf_counter() - started
    rows = len(run.frame)
    checksum = hashlib.sha256(run.export_frame().to_json().encode("utf-8")).hexdigest()
    return elapsed, rows, checksum


def bench_trial(spec, cold: bool) -> Tuple[float, str]:
    """One simulation trial; ``cold`` clears every per-process cache first."""
    from repro.api.engine import run_simulation

    if cold:
        _clear_engine_caches()
    started = time.perf_counter()
    result = run_simulation(spec)
    elapsed = time.perf_counter() - started
    checksum = hashlib.sha256(
        json.dumps(result.summary(), sort_keys=True).encode("utf-8")
    ).hexdigest()
    return elapsed, checksum


def run_benchmarks(workers: int, repeats: int) -> Dict[str, Any]:
    _sweep, cell_spec, rows = _sweep_and_cell()
    checksums: Dict[str, str] = {}
    best: Dict[str, float] = {}
    for _ in range(repeats):
        elapsed, sweep_rows, sweep_checksum = bench_fresh_sweep(workers)
        best["fresh_rows_per_s"] = max(
            best.get("fresh_rows_per_s", 0.0), sweep_rows / elapsed
        )
        checksums["sweep_rows"] = sweep_checksum

    for _ in range(repeats):
        cold_elapsed, cell_checksum = bench_trial(cell_spec, cold=True)
        warm_elapsed, warm_checksum = bench_trial(cell_spec, cold=False)
        assert warm_checksum == cell_checksum, "warm trial changed observable output"
        best["cold_trial_s"] = min(best.get("cold_trial_s", float("inf")), cold_elapsed)
        best["warm_trial_s"] = min(best.get("warm_trial_s", float("inf")), warm_elapsed)
        checksums["figure2_cell"] = cell_checksum

    metrics = {name: round(value, 4) for name, value in best.items()}
    for name in METRICS:
        print(f"  {name:20s} {metrics[name]:10.4f}")
    return {
        "metrics": metrics,
        "checksums": checksums,
        "sizes": {"sweep_rows": rows},
        "workers": workers,
    }


def compute_speedup(baseline: Dict[str, Any], current: Dict[str, Any]) -> Dict[str, float]:
    """Per-metric speedup, higher is better — or ``{}`` (refusal) when the
    runs measured different grids or worker counts."""
    if baseline.get("sizes") != current.get("sizes"):
        return {}
    if baseline.get("workers") != current.get("workers"):
        return {}
    speedup: Dict[str, float] = {}
    for name, current_value in current["metrics"].items():
        baseline_value = baseline["metrics"].get(name)
        if not baseline_value or not current_value:
            continue
        if name in THROUGHPUT_METRICS:
            speedup[name] = round(current_value / baseline_value, 3)
        else:
            speedup[name] = round(baseline_value / current_value, 3)
    return speedup


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=1,
                        help="sweep worker count (pinned and recorded; speedup "
                             "is refused across differing counts)")
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing")
    parser.add_argument("--smoke", action="store_true",
                        help="single repeat; fail if output checksums differ "
                             "from the committed baseline")
    parser.add_argument("--record-baseline", action="store_true",
                        help="store this run as the baseline (overwriting any existing one)")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_engine.json",
    )
    arguments = parser.parse_args()

    repeats = 1 if arguments.smoke else arguments.repeats
    print(f"engine benchmarks (workers={arguments.workers}, best of {repeats}):")
    run = run_benchmarks(arguments.workers, repeats)

    report: Dict[str, Any] = {}
    if arguments.output.exists():
        try:
            report = json.loads(arguments.output.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            report = {}

    committed_baseline = report.get("baseline")
    if arguments.smoke and committed_baseline is not None:
        if committed_baseline.get("sizes") == run["sizes"] and (
            committed_baseline.get("checksums") != run["checksums"]
        ):
            raise SystemExit(
                "engine output checksums differ from the committed baseline:\n"
                f"  baseline: {committed_baseline.get('checksums')}\n"
                f"  current:  {run['checksums']}"
            )

    if arguments.record_baseline or "baseline" not in report:
        report["baseline"] = run
    report["current"] = run
    report["speedup"] = compute_speedup(report["baseline"], run)
    baseline = report["baseline"]
    report["outputs_identical"] = (
        baseline["checksums"] == run["checksums"]
        if baseline.get("sizes") == run["sizes"]
        else None
    )

    arguments.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {arguments.output}")
    if report["speedup"]:
        print("speedup vs baseline: " + ", ".join(
            f"{name}={value}x" for name, value in sorted(report["speedup"].items())
        ))
    elif report["baseline"] is not run:
        print("speedup refused: baseline and current differ in sizes or workers")
    if report["outputs_identical"] is False:
        raise SystemExit("engine output differs from baseline")


if __name__ == "__main__":
    main()
