"""E4 — the paper's headline claims, evaluated on a measured Figure 2 sweep.

* client-only HMS improves state throughput across the whole ratio range
  (paper: "a factor of five");
* semantic mining lifts efficiency from a few percent to most transactions
  succeeding where state changes are frequent (paper: "<5% to >80%", an
  order of magnitude);
* the relative gain is largest at 1-2 buys per set;
* all sets succeed.
"""

from __future__ import annotations

import pytest

from repro.analysis.plotting import format_table
from repro.experiments.claims import check_headline_claims
from repro.experiments.figure2 import Figure2Config, run_figure2
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scenario import GETH_UNMODIFIED

from repro.experiments.reporting import emit_block as emit


def run_claims():
    config = Figure2Config(
        ratios=(1.0, 2.0, 10.0, 20.0),
        trials=2,
        num_buys=100,
        base=ExperimentConfig(scenario=GETH_UNMODIFIED, seed=23),
    )
    figure2 = run_figure2(config, keep_results=True)
    return figure2, check_headline_claims(figure2)


@pytest.mark.benchmark(group="headline-claims")
def test_bench_headline_claims(benchmark):
    figure2, checks = benchmark.pedantic(run_claims, rounds=1, iterations=1)
    rows = [
        [check.claim[:60], check.paper_value, check.measured_value, "yes" if check.holds else "NO"]
        for check in checks
    ]
    emit(
        "Headline claims (paper: Abstract / Section VII)",
        format_table(["claim", "paper", "measured", "holds"], rows),
    )
    # The qualitative shape must hold; exact multipliers are testbed-dependent.
    assert checks[0].holds, "client-only HMS must improve efficiency across the range"
    assert checks[1].holds, "semantic mining must lift low-ratio efficiency dramatically"
    assert all(check.holds for check in checks if "sets succeed" in check.claim)
    benchmark.extra_info["claims"] = [(check.claim, check.holds) for check in checks]
