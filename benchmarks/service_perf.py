#!/usr/bin/env python
"""Service tail-latency harness: the RPC facade under load, written to
``BENCH_service.json``.

Spawns an in-process :class:`~repro.service.ServiceServer` (or targets a
running one via ``--url``), drives the ``repro.service.loadgen`` mix in
both loop disciplines — closed (saturation service time) and open
(scheduled arrivals, queueing included, no coordinated omission) — and
records throughput plus p50/p95/p99 per mode.

``--smoke`` (CI) is a **hard gate** on the loadgen report's own gates:
zero errors, worst-mode p95 under the (generous) ceiling, and two
same-spec sessions running to byte-identical summaries.  Absolute
latencies vary across runners; the error-rate and determinism contracts
must not.

Baseline protocol (same as the other harnesses): the first write — or
``--record-baseline`` — pins ``"baseline"``; later runs keep it, update
``"current"``, and report numeric ``"deltas"``.

Usage::

    PYTHONPATH=src python benchmarks/service_perf.py            # report only
    PYTHONPATH=src python benchmarks/service_perf.py --smoke    # CI gates
    PYTHONPATH=src python benchmarks/service_perf.py --url http://127.0.0.1:8547
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode; fail hard if any loadgen gate (errors, p95, determinism) breaks",
    )
    parser.add_argument(
        "--record-baseline",
        action="store_true",
        help="store this run as the baseline (overwriting any existing one)",
    )
    parser.add_argument(
        "--url", help="target a running server instead of spawning one in-process"
    )
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=25, dest="requests_per_client")
    parser.add_argument("--mix", default="market")
    parser.add_argument("--arrival", default="poisson", choices=("regular", "poisson", "bursty"))
    parser.add_argument("--rate", type=float, default=50.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--p95-ceiling", type=float, default=2000.0)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_service.json",
    )
    arguments = parser.parse_args()

    import repro.contracts  # noqa: F401  (registers the shipped contracts)
    from repro.service import (
        LoadgenConfig,
        ServiceConfig,
        ServiceServer,
        format_report,
        run_loadgen,
        write_bench,
    )

    server = None
    if arguments.url:
        url = arguments.url.rstrip("/")
    else:
        server = ServiceServer(
            ServiceConfig(port=0, workers=4, idle_timeout=None, retention_default=64)
        ).start()
        url = server.url

    print(f"service load benchmarks against {url}:")
    try:
        config = LoadgenConfig(
            url=url,
            clients=arguments.clients,
            requests_per_client=arguments.requests_per_client,
            mode="both",
            arrival=arguments.arrival,
            rate=arguments.rate,
            mix=arguments.mix,
            seed=arguments.seed,
            smoke=arguments.smoke,
            p95_ceiling_ms=arguments.p95_ceiling,
        )
        report = run_loadgen(config)
    finally:
        if server is not None:
            server.shutdown()

    print(format_report(report))

    if arguments.record_baseline and arguments.output.exists():
        arguments.output.unlink()
    bench = write_bench(report, arguments.output)
    print(f"wrote {arguments.output}")
    print(json.dumps(bench["current"], indent=2, sort_keys=True))

    # The gate runs last so the report is written either way (CI uploads it).
    if arguments.smoke and not report["passed"]:
        raise SystemExit(f"loadgen gates failed: {report['gates']}")


if __name__ == "__main__":
    main()
