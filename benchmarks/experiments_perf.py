#!/usr/bin/env python
"""Experiment-engine performance harness: writes ``BENCH_experiments.json``.

Measures the experiment layer the way `substrate_perf.py` measures the chain
substrate — rows/second through the generic experiment lifecycle for one
figure2 smoke grid, in three execution modes:

* ``fresh_rows_per_s``        — a plain in-memory sweep (no checkpoint);
* ``checkpointed_rows_per_s`` — the same sweep writing its JSONL checkpoint
  row by row (the durability overhead the resumable path pays);
* ``resumed_rows_per_s``      — re-running against the complete checkpoint
  (zero cells execute; this is the resume fast path and should be orders of
  magnitude above the other two).

Every mode checksums its exported rows: ``outputs_identical`` certifies that
checkpoint durability and resumption changed nothing observable.

Baseline protocol (same as the substrate harness): the first run — or
``--record-baseline`` — stores its numbers under ``"baseline"``; later runs
keep that baseline, update ``"current"``, and report per-metric ``"speedup"``
(current / baseline: all metrics here are throughputs, higher is better).
The worker count is pinned per run and recorded next to the metrics, and a
``speedup`` block is only emitted when the baseline and current runs used
the same grid size *and* worker count — a 1-worker "current" against a
4-worker "baseline" is not a measurement, it is a category error.

Usage::

    PYTHONPATH=src python benchmarks/experiments_perf.py
    PYTHONPATH=src python benchmarks/experiments_perf.py --quick --workers 2
"""

from __future__ import annotations

import argparse
import hashlib
import json
import tempfile
import time
from pathlib import Path
from typing import Any, Dict

from repro.api import ExperimentOptions, run_experiment

METRICS = ("fresh_rows_per_s", "checkpointed_rows_per_s", "resumed_rows_per_s")


def _rows_checksum(run) -> str:
    return hashlib.sha256(run.export_frame().to_json().encode("utf-8")).hexdigest()


def run_grid(experiment: str, workers: int, smoke: bool, repeats: int) -> Dict[str, Any]:
    """Best-of-``repeats`` rows/second for the three execution modes."""
    results: Dict[str, Any] = {"metrics": {}, "checksums": {}, "rows": None}
    best: Dict[str, float] = {}
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as scratch:
            checkpoint = Path(scratch) / "sweep.jsonl"

            started = time.perf_counter()
            fresh = run_experiment(
                experiment, ExperimentOptions(smoke=smoke, workers=workers)
            )
            fresh_elapsed = time.perf_counter() - started
            rows = len(fresh.frame)

            started = time.perf_counter()
            checkpointed = run_experiment(
                experiment,
                ExperimentOptions(smoke=smoke, workers=workers, checkpoint=checkpoint),
            )
            checkpointed_elapsed = time.perf_counter() - started

            started = time.perf_counter()
            resumed = run_experiment(
                experiment,
                ExperimentOptions(smoke=smoke, workers=workers, checkpoint=checkpoint),
            )
            resumed_elapsed = time.perf_counter() - started

        results["rows"] = rows
        best["fresh_rows_per_s"] = max(
            best.get("fresh_rows_per_s", 0.0), rows / fresh_elapsed
        )
        best["checkpointed_rows_per_s"] = max(
            best.get("checkpointed_rows_per_s", 0.0), rows / checkpointed_elapsed
        )
        best["resumed_rows_per_s"] = max(
            best.get("resumed_rows_per_s", 0.0), rows / resumed_elapsed
        )
        results["checksums"] = {
            "fresh": _rows_checksum(fresh),
            "checkpointed": _rows_checksum(checkpointed),
            "resumed": _rows_checksum(resumed),
        }
        results["claims_pass"] = fresh.passed
    results["metrics"] = {name: round(value, 3) for name, value in best.items()}
    checksums = results["checksums"]
    results["outputs_identical"] = len(set(checksums.values())) == 1
    return results


def compute_speedup(baseline: Dict[str, Any], current: Dict[str, Any]) -> Dict[str, float]:
    """Per-metric current/baseline ratios — or ``{}`` (an explicit refusal)
    when the two runs measured different grids or worker counts, in which
    case the ratios would compare apples to oranges."""
    comparable_keys = ("experiment", "rows", "workers")
    if any(baseline.get(key) != current.get(key) for key in comparable_keys):
        return {}
    speedup = {}
    for name in METRICS:
        baseline_value = baseline["metrics"].get(name)
        current_value = current["metrics"].get(name)
        if not baseline_value or not current_value:
            continue
        speedup[name] = round(current_value / baseline_value, 3)
    return speedup


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--experiment", default="figure2", help="registered experiment to time")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing")
    parser.add_argument(
        "--quick", action="store_true", help="single repeat (CI smoke)"
    )
    parser.add_argument(
        "--record-baseline",
        action="store_true",
        help="store this run as the baseline (overwriting any existing one)",
    )
    parser.add_argument("--output", default="BENCH_experiments.json")
    arguments = parser.parse_args()

    repeats = 1 if arguments.quick else arguments.repeats
    run = run_grid(arguments.experiment, arguments.workers, smoke=True, repeats=repeats)
    run["experiment"] = arguments.experiment
    run["workers"] = arguments.workers

    output = Path(arguments.output)
    report: Dict[str, Any] = {}
    if output.exists():
        try:
            report = json.loads(output.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            report = {}
    if arguments.record_baseline or "baseline" not in report:
        report["baseline"] = run
    report["current"] = run
    report["speedup"] = compute_speedup(report["baseline"], run)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    print(json.dumps(report["current"], indent=2, sort_keys=True))
    if report["speedup"]:
        print(f"speedup vs baseline: {report['speedup']}")
    else:
        print(
            "speedup refused: baseline "
            f"(experiment={report['baseline'].get('experiment')!r}, "
            f"rows={report['baseline'].get('rows')}, "
            f"workers={report['baseline'].get('workers')}) is not comparable to "
            f"current (experiment={run.get('experiment')!r}, rows={run.get('rows')}, "
            f"workers={run.get('workers')})"
        )
    if not run["outputs_identical"]:
        raise SystemExit("exported rows differ across execution modes")
    if not run["claims_pass"]:
        raise SystemExit("claim gates failed on the benchmark grid")


if __name__ == "__main__":
    main()
