"""E5 (quantitative) — frontrunning under attack (paper: Sections II-F, V-B).

The paper claims mark-bound offers defeat the frontrunning attack: a victim
can never be filled at terms it did not observe.  This bench runs an active
attacker against victims using each read mode and reports fill rates, the
number of attacks, and the count of "overpaid" fills (which must be zero).
"""

from __future__ import annotations

import pytest

from repro.analysis.plotting import format_percentage, format_table
from repro.clients.market import READ_COMMITTED, READ_UNCOMMITTED
from repro.experiments.frontrunning import FrontrunningConfig, run_frontrunning_experiment
from repro.experiments.reporting import emit_block as emit


def run_both():
    hms_victim = run_frontrunning_experiment(
        FrontrunningConfig(num_victim_buys=40, seed=17, victim_read_mode=READ_UNCOMMITTED)
    )
    committed_victim = run_frontrunning_experiment(
        FrontrunningConfig(num_victim_buys=40, seed=17, victim_read_mode=READ_COMMITTED)
    )
    return hms_victim, committed_victim


@pytest.mark.benchmark(group="frontrunning")
def test_bench_frontrunning(benchmark):
    hms_victim, committed_victim = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        [
            "READ-UNCOMMITTED victim (HMS)",
            format_percentage(hms_victim.fill_rate),
            hms_victim.attacks_launched,
            hms_victim.overpaid,
        ],
        [
            "READ-COMMITTED victim (baseline)",
            format_percentage(committed_victim.fill_rate),
            committed_victim.attacks_launched,
            committed_victim.overpaid,
        ],
    ]
    emit(
        "Frontrunning under attack (paper: Sections II-F and V-B)",
        format_table(["victim", "filled at observed terms", "attacks", "overpaid fills"], rows),
    )
    # Structural protection: nobody is ever filled at unobserved terms.
    assert hms_victim.overpaid == 0 and committed_victim.overpaid == 0
    assert hms_victim.audit_clean and committed_victim.audit_clean
    # HMS victims get far more of their orders filled despite the attacker.
    assert hms_victim.fill_rate > committed_victim.fill_rate
    benchmark.extra_info["hms_fill_rate"] = hms_victim.fill_rate
    benchmark.extra_info["committed_fill_rate"] = committed_victim.fill_rate
