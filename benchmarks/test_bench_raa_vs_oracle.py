"""A5 — RAA versus a conventional blockchain oracle (paper: Sections II-E, III-D).

The paper motivates RAA by the structural latency of request/response
oracles: intra-block data cannot be obtained through an oracle because the
request and the answer must each commit in a block.  This bench measures the
data latency of both paths on the same simulated network.
"""

from __future__ import annotations

import pytest

from repro.analysis.plotting import format_table
from repro.experiments.reporting import emit_block as emit
from repro.oracle.comparison import OracleComparisonConfig, run_raa_vs_oracle


@pytest.mark.benchmark(group="raa-vs-oracle")
def test_bench_raa_vs_oracle(benchmark):
    result = benchmark.pedantic(
        lambda: run_raa_vs_oracle(OracleComparisonConfig(num_queries=10, seed=47)),
        rounds=1,
        iterations=1,
    )
    rows = [
        ["RAA (local view call)", f"{result.mean_raa_latency:.3f}", f"{max(result.raa_latencies):.3f}"],
        [
            "Oracle (request + answer round trip)",
            f"{result.mean_oracle_latency:.1f}",
            f"{max(result.oracle_latencies):.1f}",
        ],
    ]
    emit(
        "A5 — data latency: RAA vs conventional oracle (paper: Section III-D)",
        format_table(["path", "mean latency (s)", "max latency (s)"], rows),
    )
    assert result.oracle_unanswered == 0
    assert result.mean_oracle_latency > result.config.block_interval * 0.5
    assert result.mean_raa_latency < 0.01
    benchmark.extra_info["mean_oracle_latency"] = result.mean_oracle_latency
    benchmark.extra_info["mean_raa_latency"] = result.mean_raa_latency
