"""A1-A4 — ablation sweeps backing the paper's Section V-C prose.

* A1 miner participation: "if only a fraction of the miners were assisting
  ... there would still be benefits proportional to the participation".
* A2 gossip impairment: "or if communication of the TxPool were impeded".
* A3 submission interval: baseline efficiency is "more sensitive to the
  transaction interval" at high read ratios.
* A4 block interval: HMS reduces the significance of the block interval
  (the reparameterization discussion in Section VI).
"""

from __future__ import annotations

import pytest

from repro.analysis.plotting import format_percentage, format_table
from repro.experiments.ablations import (
    sweep_block_interval,
    sweep_gossip_impairment,
    sweep_semantic_miner_fraction,
    sweep_submission_interval,
)
from repro.experiments.reporting import emit_block as emit
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scenario import GETH_UNMODIFIED, SEMANTIC_MINING, SERETH_CLIENT_SCENARIO


def render(result):
    rows = [
        [point.scenario, f"{point.parameter:g}", format_percentage(point.mean_efficiency)]
        for point in result.points
    ]
    return format_table(["scenario", result.parameter_name, "efficiency"], rows)


@pytest.mark.benchmark(group="ablations")
def test_bench_ablation_miner_fraction(benchmark):
    base = ExperimentConfig(scenario=SEMANTIC_MINING, buys_per_set=2.0, num_buys=60, num_buyers=3, seed=31)
    result = benchmark.pedantic(
        lambda: sweep_semantic_miner_fraction(
            fractions=(0.0, 0.25, 0.5, 0.75, 1.0), trials=2, base=base, num_miners=4
        ),
        rounds=1,
        iterations=1,
    )
    emit("A1 — semantic mining participation (paper: Section V-C prose)", render(result))
    values = result.values("semantic_mining")
    # Benefits should be roughly proportional to participation: full assistance
    # beats no assistance by a clear margin and is (near-)monotone overall.
    assert values[-1] > values[0]
    assert values[-1] >= 0.75
    benchmark.extra_info["efficiency_by_fraction"] = values


@pytest.mark.benchmark(group="ablations")
def test_bench_ablation_gossip_impairment(benchmark):
    base = ExperimentConfig(
        scenario=SERETH_CLIENT_SCENARIO, buys_per_set=2.0, num_buys=60, num_buyers=3, seed=37
    )
    result = benchmark.pedantic(
        lambda: sweep_gossip_impairment(latencies=(0.05, 0.5, 2.0, 5.0), trials=2, base=base),
        rounds=1,
        iterations=1,
    )
    emit("A2 — TxPool gossip impairment (paper: Section V-C prose)", render(result))
    sereth = [point.mean_efficiency for point in result.series("sereth_client")]
    # Impeded pool communication degrades the client-only HMS view.
    assert sereth[0] >= sereth[-1]
    benchmark.extra_info["sereth_efficiency_by_latency"] = sereth


@pytest.mark.benchmark(group="ablations")
def test_bench_ablation_submission_interval(benchmark):
    base = ExperimentConfig(scenario=GETH_UNMODIFIED, num_buys=60, num_buyers=3, seed=41)
    result = benchmark.pedantic(
        lambda: sweep_submission_interval(intervals=(0.25, 0.5, 1.0, 2.0), trials=2, base=base, buys_per_set=10.0),
        rounds=1,
        iterations=1,
    )
    emit("A3 — submission-interval sensitivity at 10:1 (paper: Section V-A prose)", render(result))
    geth = [point.mean_efficiency for point in result.series("geth_unmodified")]
    sereth = [point.mean_efficiency for point in result.series("sereth_client")]
    # HMS clients should dominate the baseline at every submission interval.
    assert all(s >= g - 0.05 for g, s in zip(geth, sereth))
    benchmark.extra_info["geth"] = geth
    benchmark.extra_info["sereth"] = sereth


@pytest.mark.benchmark(group="ablations")
def test_bench_ablation_block_interval(benchmark):
    base = ExperimentConfig(scenario=GETH_UNMODIFIED, buys_per_set=4.0, num_buys=60, num_buyers=3, seed=43)
    result = benchmark.pedantic(
        lambda: sweep_block_interval(block_intervals=(5.0, 13.0, 30.0, 60.0), trials=2, base=base),
        rounds=1,
        iterations=1,
    )
    emit("A4 — block-interval sensitivity (paper: Section VI reparameterization)", render(result))
    geth = [point.mean_efficiency for point in result.series("geth_unmodified")]
    semantic = [point.mean_efficiency for point in result.series("semantic_mining")]
    # Longer block intervals hurt the READ-COMMITTED baseline much more than
    # the HMS-assisted configurations (HMS "decreases the significance of
    # block interval").
    assert geth[0] >= geth[-1] - 0.05
    assert min(semantic) >= 0.7
    benchmark.extra_info["geth"] = geth
    benchmark.extra_info["semantic"] = semantic
