"""E1 — Figure 2: transaction efficiency vs READ-UNCOMMITTED/WRITE ratio.

Regenerates the paper's single quantitative figure: the efficiency of 100
buy transactions at buy:set ratios from 1:1 to 20:1 under the three
scenarios (unmodified Geth, Sereth client, semantic mining), with 90%
confidence intervals over seeded trials.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure2 import Figure2Config, run_figure2
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scenario import GETH_UNMODIFIED

from repro.experiments.reporting import emit_block as emit

RATIOS = (1.0, 2.0, 4.0, 10.0, 20.0)
TRIALS = 2
NUM_BUYS = 100


def run_sweep():
    config = Figure2Config(
        ratios=RATIOS,
        trials=TRIALS,
        num_buys=NUM_BUYS,
        base=ExperimentConfig(scenario=GETH_UNMODIFIED, seed=11),
    )
    return run_figure2(config)


@pytest.mark.benchmark(group="figure2")
def test_bench_figure2(benchmark):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("Figure 2 — eta vs buy:set ratio (paper: Fig. 2)", result.as_table() + "\n\n" + result.as_chart())

    # Shape assertions: the orderings the figure reports must hold.
    for ratio in RATIOS:
        geth = result.point("geth_unmodified", ratio).mean_efficiency
        sereth = result.point("sereth_client", ratio).mean_efficiency
        semantic = result.point("semantic_mining", ratio).mean_efficiency
        assert geth <= sereth + 0.05, f"HMS client should beat baseline at {ratio}:1"
        assert sereth <= semantic + 0.05, f"semantic mining should beat client-only at {ratio}:1"
        assert semantic >= 0.75, f"semantic mining should commit most buys at {ratio}:1"
    # Baseline must be poor where state changes are frequent (paper: a few percent).
    assert result.point("geth_unmodified", 1.0).mean_efficiency <= 0.20

    benchmark.extra_info["series_geth"] = result.series("geth_unmodified")
    benchmark.extra_info["series_sereth"] = result.series("sereth_client")
    benchmark.extra_info["series_semantic"] = result.series("semantic_mining")
