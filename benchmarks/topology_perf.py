#!/usr/bin/env python
"""Topology performance harness: times propagation cells per gossip graph and
writes ``BENCH_topology.json``.

Where ``engine_perf.py`` times the simulation engine on the default full-mesh
network, this harness times the *network model* itself: one displacement-
under-defense cell per registered topology at 100 peers, plus the scale leg —
``random_k`` at 1000 peers — which the propagation experiment's full grid
depends on staying tractable (the CI budget for that leg is ten minutes; it
runs only outside ``--smoke``).

Per leg the report records wall seconds alongside the run's observable
propagation digest — block-propagation p50/p95, orphan rate, deliveries, and
mean degree — and a SHA-256 of the full summary.  The ``full_mesh`` leg rides
the legacy direct-broadcast path, so its checksum doubles as a byte-identity
sentinel: under ``--smoke`` the run **fails** if it drifts from the committed
baseline's, exactly like the engine harness treats its sweep rows.

Baseline protocol (same as the other harnesses): the first run — or
``--record-baseline`` — stores its numbers under ``"baseline"``; later runs
keep that baseline, update ``"current"``, and report per-leg ``"speedup"``
on wall seconds (higher is better), refused when the grids differ.

Usage::

    PYTHONPATH=src python benchmarks/topology_perf.py
    PYTHONPATH=src python benchmarks/topology_perf.py --smoke
    PYTHONPATH=src python benchmarks/topology_perf.py --record-baseline
"""

from __future__ import annotations

import argparse
import hashlib
import json
import time
from pathlib import Path
from typing import Any, Dict

BENCH_SEED = 20260807
BENCH_BUYS = 8
DIGEST_KEYS = (
    "block_propagation_p50",
    "block_propagation_p95",
    "orphan_rate",
    "block_deliveries",
    "block_duplicates",
    "mean_degree",
)
SENTINEL_LEGS = ("full_mesh_100",)


def legs(smoke: bool):
    from repro.experiments.propagation import DEFAULT_TOPOLOGIES

    table = [(f"{name}_100", name, 100) for name in DEFAULT_TOPOLOGIES]
    if not smoke:
        table.append(("random_k_1000", "random_k", 1000))
    return table


def bench_leg(topology: str, peers: int) -> Dict[str, Any]:
    from repro.api.engine import run_simulation
    from repro.experiments.propagation import _cell_spec

    spec = _cell_spec(topology, peers, "displacement", BENCH_BUYS, BENCH_SEED)
    started = time.perf_counter()
    summary = run_simulation(spec).summary()
    elapsed = time.perf_counter() - started
    digest = summary["extras"]["network"]
    checksum = hashlib.sha256(
        json.dumps(summary, sort_keys=True).encode("utf-8")
    ).hexdigest()
    leg = {"wall_s": round(elapsed, 3), "checksum": checksum}
    for key in DIGEST_KEYS:
        value = digest[key]
        leg[key] = round(value, 5) if isinstance(value, float) else value
    return leg


def run_benchmarks(smoke: bool) -> Dict[str, Any]:
    legs_run: Dict[str, Any] = {}
    for leg_name, topology, peers in legs(smoke):
        leg = bench_leg(topology, peers)
        legs_run[leg_name] = leg
        print(
            f"  {leg_name:16s} {leg['wall_s']:8.2f}s  "
            f"p50 {leg['block_propagation_p50']:.3f}s  "
            f"p95 {leg['block_propagation_p95']:.3f}s  "
            f"orphan_rate {leg['orphan_rate']:.4f}"
        )
    return {
        "legs": legs_run,
        "sizes": {"buys": BENCH_BUYS, "seed": BENCH_SEED, "smoke": smoke},
    }


def compute_speedup(baseline: Dict[str, Any], current: Dict[str, Any]) -> Dict[str, float]:
    """Per-leg wall-time speedup (higher is better); legs absent from either
    run are skipped, and differing grid sizes refuse comparison entirely."""
    if baseline.get("sizes", {}).get("buys") != current.get("sizes", {}).get("buys"):
        return {}
    speedup: Dict[str, float] = {}
    for leg_name, leg in current["legs"].items():
        baseline_leg = baseline.get("legs", {}).get(leg_name)
        if not baseline_leg or not leg.get("wall_s"):
            continue
        speedup[leg_name] = round(baseline_leg["wall_s"] / leg["wall_s"], 3)
    return speedup


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="skip the 1000-peer leg; fail if the full_mesh "
                             "leg's checksum drifts from the committed baseline")
    parser.add_argument("--record-baseline", action="store_true",
                        help="store this run as the baseline (overwriting any existing one)")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_topology.json",
    )
    arguments = parser.parse_args()

    print(f"topology benchmarks ({'smoke' if arguments.smoke else 'full'} grid):")
    run = run_benchmarks(arguments.smoke)

    report: Dict[str, Any] = {}
    if arguments.output.exists():
        try:
            report = json.loads(arguments.output.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            report = {}

    committed_baseline = report.get("baseline")
    if arguments.smoke and committed_baseline is not None:
        for leg_name in SENTINEL_LEGS:
            baseline_leg = committed_baseline.get("legs", {}).get(leg_name)
            current_leg = run["legs"].get(leg_name)
            if not baseline_leg or not current_leg:
                continue
            if baseline_leg["checksum"] != current_leg["checksum"]:
                raise SystemExit(
                    f"{leg_name} output checksum drifted from the committed "
                    "baseline — the full-mesh path is no longer byte-identical:\n"
                    f"  baseline: {baseline_leg['checksum']}\n"
                    f"  current:  {current_leg['checksum']}"
                )

    if arguments.record_baseline or "baseline" not in report:
        report["baseline"] = run
    report["current"] = run
    report["speedup"] = compute_speedup(report["baseline"], run)

    arguments.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {arguments.output}")
    if report["speedup"]:
        print("speedup vs baseline: " + ", ".join(
            f"{name}={value}x" for name, value in sorted(report["speedup"].items())
        ))


if __name__ == "__main__":
    main()
