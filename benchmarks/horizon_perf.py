#!/usr/bin/env python
"""Horizon performance harness: long-run throughput and peak RSS per retention
setting, written to ``BENCH_horizon.json``.

Where ``engine_perf.py`` times single trials and ``substrate_perf.py`` the
chain primitives, this harness measures the *memory model*: it drives the
registered ``horizon`` experiment (the ``steady_state`` workload for 50k+
blocks per leg, one fresh child process per leg so ``ru_maxrss`` is
per-leg), and records for every retention setting:

* ``blocks_per_second`` — end-to-end block throughput (higher is better);
* ``peak_rss_mb``       — the leg's process-lifetime RSS high-water mark
  (lower is better).

``--smoke`` (CI) is a **hard gate**: the run fails if any retained leg's
peak RSS exceeds the committed ceiling (``RSS_CEILING_MB``), if the
unretained control does *not* measurably exceed the retained footprint, or
if any of the experiment's claim gates fail.  Machine speed varies across
runners; the RSS contract must not.

Baseline protocol (same as the other harnesses): the first run — or
``--record-baseline`` — stores its numbers under ``"baseline"``; later runs
keep that baseline, update ``"current"``, and report per-leg ``"speedup"``
(blocks/s, higher is better) plus ``"rss_delta_mb"`` (current - baseline,
negative is better).

Usage::

    PYTHONPATH=src python benchmarks/horizon_perf.py            # full grid
    PYTHONPATH=src python benchmarks/horizon_perf.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Dict


def _leg_label(retention) -> str:
    return "unretained" if retention is None else f"retained_{retention}"


def run_benchmarks(smoke: bool) -> Dict[str, Any]:
    """Run the horizon experiment and flatten it into per-leg metrics."""
    from repro.api import ExperimentOptions, run_experiment
    from repro.experiments.horizon import RSS_CEILING_MB

    run = run_experiment("horizon", ExperimentOptions(smoke=smoke))
    legs: Dict[str, Dict[str, float]] = {}
    for row in run.frame.rows():
        legs[_leg_label(row["retention"])] = {
            "blocks_produced": row["blocks_produced"],
            "blocks_per_second": row["blocks_per_second"],
            "peak_rss_mb": row["peak_rss_mb"],
            "wall_seconds": row["wall_seconds"],
        }
    for label, metrics in sorted(legs.items()):
        print(
            f"  {label:14s} {metrics['blocks_produced']:>7.0f} blocks  "
            f"{metrics['blocks_per_second']:>7.1f} blocks/s  "
            f"peak {metrics['peak_rss_mb']:>6.1f} MB"
        )
    return {
        "legs": legs,
        "rss_ceiling_mb": RSS_CEILING_MB,
        "claims": [check.as_dict() for check in run.claim_checks],
        "claims_pass": run.passed,
        "sizes": {"grid": "smoke" if smoke else "full"},
    }


def enforce_gates(run: Dict[str, Any]) -> None:
    """The hard CI assertions: ceiling, measurable excess, claim gates."""
    ceiling = run["rss_ceiling_mb"]
    retained = {
        label: leg for label, leg in run["legs"].items() if label != "unretained"
    }
    for label, leg in sorted(retained.items()):
        if leg["peak_rss_mb"] > ceiling:
            raise SystemExit(
                f"RSS ceiling breached: {label} peaked at {leg['peak_rss_mb']:.1f} MB "
                f"(ceiling {ceiling:.0f} MB)"
            )
    if not run["claims_pass"]:
        failed = [check["claim"] for check in run["claims"] if not check["holds"]]
        raise SystemExit(f"horizon claim gates failed: {', '.join(failed)}")


def compute_deltas(baseline: Dict[str, Any], current: Dict[str, Any]) -> Dict[str, Any]:
    """Per-leg speedup (blocks/s) and RSS delta vs the baseline — or ``{}``
    when the runs used different grids."""
    if baseline.get("sizes") != current.get("sizes"):
        return {}
    deltas: Dict[str, Any] = {}
    for label, leg in current["legs"].items():
        base = baseline["legs"].get(label)
        if not base:
            continue
        deltas[label] = {
            "blocks_per_second": round(
                leg["blocks_per_second"] / base["blocks_per_second"], 3
            ),
            "rss_delta_mb": round(leg["peak_rss_mb"] - base["peak_rss_mb"], 1),
        }
    return deltas


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI grid; fail hard if the RSS ceiling or any claim gate breaks",
    )
    parser.add_argument(
        "--record-baseline",
        action="store_true",
        help="store this run as the baseline (overwriting any existing one)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_horizon.json",
    )
    arguments = parser.parse_args()

    print(f"horizon benchmarks ({'smoke' if arguments.smoke else 'full'} grid):")
    run = run_benchmarks(arguments.smoke)

    report: Dict[str, Any] = {}
    if arguments.output.exists():
        try:
            report = json.loads(arguments.output.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            report = {}

    if arguments.record_baseline or "baseline" not in report:
        report["baseline"] = run
    report["current"] = run
    report["deltas"] = compute_deltas(report["baseline"], run)

    arguments.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {arguments.output}")
    if report["deltas"]:
        print(
            "vs baseline: "
            + ", ".join(
                f"{label}: {delta['blocks_per_second']}x blocks/s, "
                f"{delta['rss_delta_mb']:+.1f} MB"
                for label, delta in sorted(report["deltas"].items())
            )
        )

    # Gates run last so the report is written either way (CI uploads it).
    if arguments.smoke:
        enforce_gates(run)


if __name__ == "__main__":
    main()
