"""A6 — HMS processing overhead (paper: Section III-C).

"Due to this filtering only a small percentage of the TxPool requires
processing, so the overhead of HMS is relatively small."  These
microbenchmarks measure the cost of one HMS view computation as a function
of pool size and of the fraction of the pool that is Sereth traffic, plus
the cost of the underlying substrate operations (keccak, block execution).
"""

from __future__ import annotations

import pytest

from repro.chain import Blockchain, GenesisConfig, Transaction
from repro.contracts.sereth import SerethContract, genesis_storage, initial_mark
from repro.core.hms.fpv import HEAD_FLAG, SUCCESS_FLAG, compute_mark, fpv_to_words
from repro.core.hms.hash_mark_set import HashMarkSet
from repro.core.hms.process import HMSConfig
from repro.crypto.addresses import address_from_label
from repro.crypto.keccak import Keccak256
from repro.encoding.hexutil import to_bytes32
from repro.evm import ExecutionEngine
from repro.experiments.reporting import emit_block as emit

OWNER = address_from_label("owner")
OTHER = address_from_label("other")
CONTRACT = address_from_label("sereth-exchange")
SET_ABI = SerethContract.function_by_name("set").abi
CONFIG = HMSConfig(contract_address=CONTRACT, set_selector=SET_ABI.selector)


def build_pool(total: int, sereth_fraction: float):
    """A pool with ``total`` entries of which ``sereth_fraction`` are Sereth sets."""
    sereth_count = int(total * sereth_fraction)
    entries = []
    mark = initial_mark(CONTRACT)
    for index in range(sereth_count):
        flag = HEAD_FLAG if index == 0 else SUCCESS_FLAG
        calldata = SET_ABI.encode_call(fpv_to_words(flag, mark, 100 + index))
        entries.append((Transaction(sender=OWNER, nonce=index, to=CONTRACT, data=calldata), float(index)))
        mark = compute_mark(mark, to_bytes32(100 + index))
    for index in range(total - sereth_count):
        entries.append(
            (Transaction(sender=OTHER, nonce=index, to=OTHER, value=1), float(sereth_count + index))
        )
    return entries


@pytest.mark.benchmark(group="hms-overhead")
@pytest.mark.parametrize("pool_size", [50, 200, 800])
def test_bench_hms_view_vs_pool_size(benchmark, pool_size):
    """Cost of one READ-UNCOMMITTED view computation at 20% Sereth traffic."""
    entries = build_pool(pool_size, sereth_fraction=0.2)
    hms = HashMarkSet(CONFIG)
    view = benchmark(lambda: hms.read_uncommitted(entries))
    assert view.source == "series"
    assert view.depth == int(pool_size * 0.2)


@pytest.mark.benchmark(group="hms-overhead")
@pytest.mark.parametrize("sereth_fraction", [0.05, 0.5, 1.0])
def test_bench_hms_view_vs_sereth_fraction(benchmark, sereth_fraction):
    """Cost of the view as the Sereth share of a 400-entry pool grows."""
    entries = build_pool(400, sereth_fraction=sereth_fraction)
    hms = HashMarkSet(CONFIG)
    view = benchmark(lambda: hms.read_uncommitted(entries))
    assert view.depth == int(400 * sereth_fraction)


@pytest.mark.benchmark(group="substrate-micro")
def test_bench_keccak256_small_input(benchmark):
    """Raw Keccak-f[1600] sponge cost for a 64-byte message (uncached)."""
    message = bytes(range(64))
    digest = benchmark(lambda: Keccak256(message).digest())
    assert len(digest) == 32


@pytest.mark.benchmark(group="substrate-micro")
def test_bench_block_execution_and_validation(benchmark):
    """Execute-and-validate cost for a 50-transaction Sereth block."""
    genesis = GenesisConfig.for_labels(["owner", "miner"])
    genesis.deploy_contract(CONTRACT, "Sereth", storage=genesis_storage(OWNER, CONTRACT))
    producer = Blockchain(ExecutionEngine(), genesis)
    mark = initial_mark(CONTRACT)
    transactions = []
    for index in range(50):
        flag = HEAD_FLAG if index == 0 else SUCCESS_FLAG
        calldata = SET_ABI.encode_call(fpv_to_words(flag, mark, 100 + index))
        transactions.append(Transaction(sender=OWNER, nonce=index, to=CONTRACT, data=calldata))
        mark = compute_mark(mark, to_bytes32(100 + index))

    def produce_and_validate():
        block, _ = producer.build_block(transactions, miner=address_from_label("miner"), timestamp=13.0)
        validator = Blockchain(ExecutionEngine(), genesis)
        validator.add_block(block)
        return block

    block = benchmark(produce_and_validate)
    assert block.successful_transaction_count() == 50
