#!/usr/bin/env python
"""Substrate performance harness: measures the simulation hot path and writes
``BENCH_substrate.json``.

Covers the four layers the chain substrate spends its time in:

* ``trie_commit_s``       — insert N keys into a :class:`MerklePatriciaTrie`,
  recomputing ``root()`` after every put (the per-block commit path);
* ``trie_churn_s``        — interleaved put/delete churn over a live trie with
  a root recomputation per operation (storage clears + reorgs);
* ``pool_view_s``         — TxPool adds interleaved with
  ``transactions_with_arrival()`` views (the HMS view path);
* ``keccak_bulk_mbps``    — single-hasher absorption throughput (higher is
  better; every other metric is seconds, lower is better);
* ``keccak_small_s``      — many distinct small messages (the cache-miss
  path every fresh transaction hash takes);
* ``figure2_cell_s``      — one end-to-end market-workload cell through
  :func:`repro.api.engine.run_simulation`;
* ``sequential_history_s``— one sequential-history run (single sender,
  nonce-ordered, the paper's Section V sanity experiment).

The two end-to-end benchmarks also record a SHA-256 checksum of their
``SimulationResult.summary()`` so any optimisation that changes observable
output (roots, metrics, sweep rows) is caught immediately: the checksum must
be byte-identical across harness versions for identical specs.

Baseline protocol: the first run (or ``--record-baseline``) stores its
timings under ``"baseline"``; later runs keep that baseline, update
``"current"``, and report per-metric ``"speedup"`` (baseline / current for
seconds-metrics, current / baseline for throughput metrics).

Usage::

    PYTHONPATH=src python benchmarks/substrate_perf.py            # full grid
    PYTHONPATH=src python benchmarks/substrate_perf.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import hashlib
import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, Tuple

from repro.chain.trie import MerklePatriciaTrie
from repro.crypto import keccak as keccak_module
from repro.crypto.keccak import Keccak256
from repro.encoding.rlp import rlp_encode
from repro.experiments.runner import ExperimentConfig, experiment_spec
from repro.experiments.scenario import SERETH_CLIENT_SCENARIO
from repro.experiments.sequential import SequentialHistoryConfig, sequential_spec
from repro.txpool.pool import TxPool

SECONDS_METRICS = {
    "trie_commit_s",
    "trie_churn_s",
    "pool_view_s",
    "keccak_small_s",
    "figure2_cell_s",
    "sequential_history_s",
}
THROUGHPUT_METRICS = {"keccak_bulk_mbps"}


def _clear_hash_cache() -> None:
    """Restore cold-start process state so every timed section starts cold.

    Delegates to the shared lifecycle helper (which drops the keccak,
    trie-root, wire, and genesis memos) with a keccak-only fallback so the
    harness can still time builds that predate ``repro.api.lifecycle``.
    """
    try:
        from repro.api.lifecycle import reset_process_caches
    except ImportError:  # pre-lifecycle-module builds
        keccak_module.clear_hash_cache()
    else:
        reset_process_caches()


# -- micro benchmarks ---------------------------------------------------------------


def bench_trie_commit(num_keys: int) -> float:
    """Put ``num_keys`` entries, recomputing the root after every put."""
    keys = [hashlib.sha256(b"trie-commit-%d" % index).digest() for index in range(num_keys)]
    _clear_hash_cache()
    trie = MerklePatriciaTrie()
    started = time.perf_counter()
    for index, key in enumerate(keys):
        trie.put(key, b"value-%d" % index)
        trie.root()
    return time.perf_counter() - started


def bench_trie_churn(num_keys: int) -> float:
    """Interleave puts and deletes over a live trie, root after each op."""
    keys = [hashlib.sha256(b"trie-churn-%d" % index).digest() for index in range(num_keys)]
    trie = MerklePatriciaTrie()
    for index, key in enumerate(keys):
        trie.put(key, b"seed-%d" % index)
    _clear_hash_cache()
    trie.root()  # settle the resident structure before timing churn
    started = time.perf_counter()
    for index, key in enumerate(keys):
        if index % 2 == 0:
            trie.delete(key)
        else:
            trie.put(key, b"churn-%d" % index)
        trie.root()
    return time.perf_counter() - started


def bench_pool_view(num_transactions: int, views_per_add: int) -> float:
    """TxPool adds interleaved with full HMS-style views."""
    from repro.chain.transaction import Transaction
    from repro.crypto.addresses import address_from_label

    senders = [address_from_label(f"bench/sender-{index}") for index in range(8)]
    transactions = [
        Transaction(
            sender=senders[index % len(senders)],
            nonce=index // len(senders),
            gas_price=1 + index % 7,
            gas_limit=21_000,
            to=senders[(index + 1) % len(senders)],
            value=index,
        )
        for index in range(num_transactions)
    ]
    for transaction in transactions:  # pre-hash outside the timed section
        transaction.hash
    pool = TxPool()
    started = time.perf_counter()
    for index, transaction in enumerate(transactions):
        pool.add(transaction, arrival_time=float(index))
        for _ in range(views_per_add):
            pool.transactions_with_arrival()
    return time.perf_counter() - started


def bench_keccak_bulk(megabytes: float) -> float:
    """Absorption throughput in MB/s over one long message."""
    data = bytes(range(256)) * int(megabytes * 1024 * 1024 / 256)
    hasher = Keccak256()
    started = time.perf_counter()
    hasher.update(data)
    hasher.digest()
    elapsed = time.perf_counter() - started
    return (len(data) / (1024 * 1024)) / elapsed


def bench_keccak_small(num_messages: int) -> float:
    """Hash ``num_messages`` distinct 64-byte messages (cache misses)."""
    messages = [hashlib.sha256(b"keccak-small-%d" % index).digest() * 2 for index in range(num_messages)]
    _clear_hash_cache()
    keccak256 = keccak_module.keccak256
    started = time.perf_counter()
    for message in messages:
        keccak256(message)
    return time.perf_counter() - started


# -- end-to-end benchmarks ----------------------------------------------------------


def _summary_checksum(summary: Dict[str, Any]) -> str:
    return hashlib.sha256(
        json.dumps(summary, sort_keys=True).encode("utf-8")
    ).hexdigest()


def bench_figure2_cell(num_buys: int) -> Tuple[float, str]:
    """One market-workload Figure-2 cell, end to end through the facade."""
    from repro.api.engine import run_simulation

    spec = experiment_spec(
        ExperimentConfig(
            scenario=SERETH_CLIENT_SCENARIO,
            buys_per_set=4.0,
            num_buys=num_buys,
            num_miners=2,
            num_client_peers=2,
            seed=1234,
        )
    )
    _clear_hash_cache()
    started = time.perf_counter()
    result = run_simulation(spec)
    elapsed = time.perf_counter() - started
    return elapsed, _summary_checksum(result.summary())


def bench_sequential_history(num_pairs: int) -> Tuple[float, str]:
    """The single-sender sequential-history experiment, end to end."""
    from repro.api.engine import run_simulation

    spec = sequential_spec(SequentialHistoryConfig(num_pairs=num_pairs, seed=7))
    _clear_hash_cache()
    started = time.perf_counter()
    result = run_simulation(spec)
    elapsed = time.perf_counter() - started
    return elapsed, _summary_checksum(result.summary())


# -- harness ------------------------------------------------------------------------


def run_benchmarks(quick: bool, repeats: int) -> Dict[str, Any]:
    """Run the full grid and return ``{"metrics": ..., "checksums": ..., ...}``."""
    if quick:
        sizes = {
            "trie_keys": 150,
            "pool_transactions": 300,
            "views_per_add": 1,
            "keccak_megabytes": 0.25,
            "keccak_messages": 600,
            "figure2_buys": 30,
            "sequential_pairs": 10,
        }
    else:
        sizes = {
            "trie_keys": 500,
            "pool_transactions": 1200,
            "views_per_add": 2,
            "keccak_megabytes": 1.0,
            "keccak_messages": 3000,
            "figure2_buys": 80,
            "sequential_pairs": 25,
        }

    checksums: Dict[str, str] = {}

    def figure2() -> float:
        elapsed, checksum = bench_figure2_cell(sizes["figure2_buys"])
        checksums["figure2_cell"] = checksum
        return elapsed

    def sequential() -> float:
        elapsed, checksum = bench_sequential_history(sizes["sequential_pairs"])
        checksums["sequential_history"] = checksum
        return elapsed

    grid: Dict[str, Callable[[], float]] = {
        "trie_commit_s": lambda: bench_trie_commit(sizes["trie_keys"]),
        "trie_churn_s": lambda: bench_trie_churn(sizes["trie_keys"]),
        "pool_view_s": lambda: bench_pool_view(
            sizes["pool_transactions"], sizes["views_per_add"]
        ),
        "keccak_bulk_mbps": lambda: bench_keccak_bulk(sizes["keccak_megabytes"]),
        "keccak_small_s": lambda: bench_keccak_small(sizes["keccak_messages"]),
        "figure2_cell_s": figure2,
        "sequential_history_s": sequential,
    }

    metrics: Dict[str, float] = {}
    for name, runner in grid.items():
        samples = [runner() for _ in range(repeats)]
        # Best-of-N: the minimum is the least noisy estimator for wall time,
        # the maximum for throughput.
        metrics[name] = (
            max(samples) if name in THROUGHPUT_METRICS else min(samples)
        )
        print(f"  {name:24s} {metrics[name]:10.4f}")

    return {"sizes": sizes, "metrics": metrics, "checksums": checksums}


def compute_speedup(baseline: Dict[str, float], current: Dict[str, float]) -> Dict[str, float]:
    speedup: Dict[str, float] = {}
    for name, current_value in current.items():
        baseline_value = baseline.get(name)
        if not baseline_value or not current_value:
            continue
        if name in THROUGHPUT_METRICS:
            speedup[name] = round(current_value / baseline_value, 3)
        else:
            speedup[name] = round(baseline_value / current_value, 3)
    return speedup


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced grid for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=3, help="samples per benchmark (best-of)")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_substrate.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--record-baseline",
        action="store_true",
        help="store this run as the baseline (overwriting any existing one)",
    )
    arguments = parser.parse_args()

    print(f"substrate benchmarks ({'quick' if arguments.quick else 'full'} grid, "
          f"best of {arguments.repeats}):")
    run = run_benchmarks(arguments.quick, arguments.repeats)

    report: Dict[str, Any] = {}
    if arguments.output.exists():
        report = json.loads(arguments.output.read_text(encoding="utf-8"))

    if arguments.record_baseline or "baseline" not in report:
        report["baseline"] = run
    report["current"] = run
    report["speedup"] = compute_speedup(
        report["baseline"]["metrics"], run["metrics"]
    )
    baseline_checksums = report["baseline"].get("checksums", {})
    report["output_identical_to_baseline"] = (
        baseline_checksums == run["checksums"]
        if report["baseline"]["sizes"] == run["sizes"]
        else None
    )

    arguments.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {arguments.output}")
    if report["speedup"]:
        print("speedup vs baseline: " + ", ".join(
            f"{name}={value}x" for name, value in sorted(report["speedup"].items())
        ))


if __name__ == "__main__":
    main()
