#!/usr/bin/env python
"""Fault-injection overhead harness: faults-off vs dormant-faults wall time,
written to ``BENCH_chaos.json``.

The fault subsystem's performance contract has two halves.  First, a run
with **no faults configured** must be byte-identical to the pre-fault
world: the ``golden`` leg re-runs the golden determinism sweep and fails
if its export checksum drifts from the committed
:data:`repro.experiments.chaos.GOLDEN_SWEEP_SHA256`.  Second, merely
*installing* the injector must be nearly free: the ``faults_off`` and
``dormant`` legs time the same gossip-heavy cell without faults and with
a fault whose window never opens — every hop crosses the injector's
inline window gate and nothing else — and under ``--smoke`` the run
**fails** if the best matched-pair CPU-time ratio exceeds
``MAX_OVERHEAD_RATIO``.  Machine speed varies across runners; the ratio
contract must not.

A third, informational ``faulted`` leg times one heavy combined-mix chaos
cell (message faults + crash/restart + displacement adversary) so the
report also records what a genuinely degraded cell costs.

Baseline protocol (same as the other harnesses): the first run — or
``--record-baseline`` — stores its numbers under ``"baseline"``; later
runs keep that baseline, update ``"current"``, and report per-leg
``"deltas"`` on wall seconds.

Usage::

    PYTHONPATH=src python benchmarks/chaos_perf.py            # report only
    PYTHONPATH=src python benchmarks/chaos_perf.py --smoke    # CI gates
"""

from __future__ import annotations

import argparse
import hashlib
import json
from pathlib import Path
from time import perf_counter, process_time
from typing import Any, Dict

MAX_OVERHEAD_RATIO = 1.05
"""The committed ceiling on dormant/faults-off wall time (CI-asserted)."""

FAULTED_SEED = 20260807
FAULTED_BUYS = 8


RATIO_BUYS = 400
RATIO_SEED = 77


def _ratio_spec(dormant: bool):
    """The big gossip-heavy cell the overhead ratio is measured on.

    400 buys across three clients under the defense: tens of thousands of
    gossip hops, ~half a second of wall time — enough signal for a 5%
    ceiling.  The dormant variant differs only in an installed fault whose
    window never opens, so every hop crosses the injector's inline window
    gate and nothing else changes.
    """
    from repro.api.builder import SimulationBuilder

    builder = (
        SimulationBuilder()
        .workload("market", num_buys=RATIO_BUYS)
        .scenario("semantic_mining")
        .miners(1)
        .clients(3)
        .seed(RATIO_SEED)
    )
    if dormant:
        builder = builder.fault("drop", rate=0.5, target="both", start=1e9)
    return builder.build()


def _timed_ratio_legs(samples: int) -> Dict[str, Any]:
    """Interleaved CPU-time sampling of the faults-off/dormant pair.

    A 5% ratio gate cannot survive wall-clock scheduling noise on a shared
    runner, so each run is timed in **process CPU time** with the garbage
    collector parked (collected before, disabled during) — the two big
    noise sources on an otherwise deterministic workload.  Samples are
    interleaved in matched pairs and the gate takes the *minimum* per-pair
    ratio: timing noise is one-sided (it only inflates a leg), so the best
    matched pair is the closest estimate of the true ratio, and any real
    seam regression inflates every pair alike.
    """
    import gc

    from repro.api.engine import run_simulation

    timings: Dict[str, list] = {"faults_off": [], "dormant": []}
    for _ in range(samples):
        for name, dormant in (("faults_off", False), ("dormant", True)):
            spec = _ratio_spec(dormant)
            gc.collect()
            gc.disable()
            start = process_time()
            run_simulation(spec).summary()
            timings[name].append(process_time() - start)
            gc.enable()
    pair_ratios = [
        dormant / off
        for off, dormant in zip(timings["faults_off"], timings["dormant"])
    ]
    return {
        "faults_off": {"cpu_seconds": round(min(timings["faults_off"]), 5)},
        "dormant": {"cpu_seconds": round(min(timings["dormant"]), 5)},
        "ratio": round(min(pair_ratios), 3),
    }


def _golden_leg() -> Dict[str, Any]:
    """One timed pass of the committed golden sweep, checksum-gated."""
    from repro.experiments.chaos import GOLDEN_SWEEP_SHA256, golden_sweep

    start = perf_counter()
    result = golden_sweep().run(workers=1)
    elapsed = perf_counter() - start
    checksum = hashlib.sha256(result.to_json().encode("utf-8")).hexdigest()
    return {
        "rows": len(result),
        "wall_seconds": round(elapsed, 3),
        "checksum": checksum,
        "golden": checksum == GOLDEN_SWEEP_SHA256,
    }


def _timed_faulted_cell() -> Dict[str, Any]:
    """One heavy combined-mix defended cell, timed end to end."""
    from repro.api.engine import run_simulation
    from repro.experiments.chaos import _cell_spec

    spec = _cell_spec("semantic_mining", "combined", "heavy", FAULTED_BUYS, FAULTED_SEED)
    start = perf_counter()
    summary = run_simulation(spec).summary()
    elapsed = perf_counter() - start
    faults = summary["extras"]["faults"]
    return {
        "wall_seconds": round(elapsed, 3),
        "injections": faults["injections"],
        "peer_restarts": faults["peer_restarts"],
        "converged": faults["converged"],
        "checksum": hashlib.sha256(
            json.dumps(summary, sort_keys=True).encode("utf-8")
        ).hexdigest(),
    }


def run_benchmarks(samples: int) -> Dict[str, Any]:
    from repro.api.engine import run_simulation

    run_simulation(_ratio_spec(False))  # untimed warm-up: imports, bytecode
    golden = _golden_leg()
    ratio_legs = _timed_ratio_legs(samples)
    faults_off, dormant = ratio_legs["faults_off"], ratio_legs["dormant"]
    ratio = ratio_legs["ratio"]
    faulted = _timed_faulted_cell()

    print(f"  golden:     {golden['rows']} rows in "
          f"{golden['wall_seconds']:.2f}s  golden={golden['golden']}")
    print(f"  faults_off: min {faults_off['cpu_seconds']:.3f}s cpu over "
          f"{samples} samples ({RATIO_BUYS} buys)")
    print(f"  dormant:    min {dormant['cpu_seconds']:.3f}s cpu")
    print(f"  overhead:   {ratio}x (ceiling {MAX_OVERHEAD_RATIO}x)")
    print(f"  faulted:    1 cell in {faulted['wall_seconds']:.2f}s  "
          f"({faulted['injections']} injections, "
          f"{faulted['peer_restarts']} restarts, "
          f"converged={faulted['converged']})")
    return {
        "golden": golden,
        "faults_off": faults_off,
        "dormant": dormant,
        "faulted": faulted,
        "overhead_ratio": ratio,
        "max_overhead_ratio": MAX_OVERHEAD_RATIO,
        "sizes": {"ratio_buys": RATIO_BUYS, "ratio_seed": RATIO_SEED,
                  "samples": samples,
                  "faulted_buys": FAULTED_BUYS, "faulted_seed": FAULTED_SEED},
    }


def compute_deltas(baseline: Dict[str, Any], current: Dict[str, Any]) -> Dict[str, Any]:
    """Per-leg wall-time speedup vs the baseline — ``{}`` across grid changes."""
    if baseline.get("sizes") != current.get("sizes"):
        return {}
    deltas: Dict[str, Any] = {}
    for leg, key in (("golden", "wall_seconds"), ("faults_off", "cpu_seconds"),
                     ("dormant", "cpu_seconds"), ("faulted", "wall_seconds")):
        base = baseline.get(leg, {}).get(key)
        value = current.get(leg, {}).get(key)
        if base and value:
            deltas[leg] = {"speedup": round(base / value, 3)}
    return deltas


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode; fail hard if the golden checksum drifts or the "
             "dormant/faults-off ratio breaks the ceiling",
    )
    parser.add_argument(
        "--record-baseline",
        action="store_true",
        help="store this run as the baseline (overwriting any existing one)",
    )
    parser.add_argument(
        "--samples", type=int, default=5,
        help="interleaved timings per ratio leg (minimum wins)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_chaos.json",
    )
    arguments = parser.parse_args()

    print("chaos benchmarks (golden sweep, dormant faults, one faulted cell):")
    run = run_benchmarks(arguments.samples)

    if not run["golden"]["golden"]:
        raise SystemExit(
            "faults-off golden sweep checksum drifted — the fault subsystem "
            "is no longer byte-invisible when unconfigured: "
            f"{run['golden']['checksum']}"
        )
    if arguments.smoke and run["overhead_ratio"] > MAX_OVERHEAD_RATIO:
        raise SystemExit(
            f"dormant-fault overhead {run['overhead_ratio']}x exceeds the "
            f"{MAX_OVERHEAD_RATIO}x ceiling"
        )

    report: Dict[str, Any] = {}
    if arguments.output.exists():
        try:
            report = json.loads(arguments.output.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            report = {}

    if arguments.record_baseline or "baseline" not in report:
        report["baseline"] = run
    report["current"] = run
    report["deltas"] = compute_deltas(report["baseline"], run)

    arguments.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {arguments.output}")


if __name__ == "__main__":
    main()
