"""E2 — sequential history: a single-sender workload commits with eta = 1.0.

Paper, Section V: "the transaction failure rate was zero and the transaction
efficiency was 1.0" when all transactions come from one address (real-time
order = nonce order = block order).
"""

from __future__ import annotations

import pytest

from repro.experiments.sequential import SequentialHistoryConfig, run_sequential_history

from repro.experiments.reporting import emit_block as emit


@pytest.mark.benchmark(group="sequential-history")
def test_bench_sequential_history(benchmark):
    result = benchmark.pedantic(
        lambda: run_sequential_history(SequentialHistoryConfig(num_pairs=25, seed=4)),
        rounds=1,
        iterations=1,
    )
    report = result.report
    emit(
        "Sequential history (paper: Section V, qualitative experiment)",
        f"submitted={report.submitted}  committed={report.committed}  "
        f"successful={report.successful}  efficiency={report.efficiency:.3f} (paper: 1.0)",
    )
    assert report.committed == report.submitted == 50
    assert result.efficiency == 1.0
    benchmark.extra_info["efficiency"] = result.efficiency
