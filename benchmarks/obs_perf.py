#!/usr/bin/env python
"""Observability overhead harness: tracing-off vs tracing-on throughput,
written to ``BENCH_obs.json``.

Runs the ``figure2`` smoke grid twice through the sweep engine — once
untraced (the default zero-cost path: every instrumented call site is a
single dead branch) and once under the ``repro.obs`` tracer — and records
rows/s for each mode plus their ratio.  The traced pass also reports the
hot-phase ranking, so the benchmark doubles as a profiling smoke test.

``--smoke`` (CI) is a **hard gate**: the run fails if traced wall time
exceeds ``MAX_OVERHEAD_RATIO`` x the untraced wall time.  Machine speed
varies across runners; the *ratio* contract must not.

Baseline protocol (same as the other harnesses): the first run — or
``--record-baseline`` — stores its numbers under ``"baseline"``; later runs
keep that baseline, update ``"current"``, and report per-mode ``"speedup"``.

Usage::

    PYTHONPATH=src python benchmarks/obs_perf.py            # report only
    PYTHONPATH=src python benchmarks/obs_perf.py --smoke    # CI ratio gate
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from time import perf_counter
from typing import Any, Dict

MAX_OVERHEAD_RATIO = 1.25
"""The committed ceiling on traced/untraced wall time (CI-asserted)."""


def _grid():
    """The figure2 smoke grid, freshly planned (its own seeds, no overrides)."""
    from repro.api import ExperimentOptions, plan_experiment

    _experiment, _options, sweep = plan_experiment(
        "figure2", ExperimentOptions(smoke=True)
    )
    return sweep


def _timed_pass(sweep, repeats: int) -> Dict[str, Any]:
    """Run ``sweep`` ``repeats`` times; keep the fastest pass's numbers."""
    best: Dict[str, Any] = {}
    for _ in range(repeats):
        start = perf_counter()
        result = sweep.run(workers=1)
        elapsed = perf_counter() - start
        if not best or elapsed < best["wall_seconds"]:
            best = {
                "rows": len(result),
                "wall_seconds": round(elapsed, 3),
                "rows_per_second": round(len(result) / elapsed, 3),
                "result": result,
            }
    return best


def run_benchmarks(repeats: int) -> Dict[str, Any]:
    from repro.obs import format_hot_phase_table

    untraced = _timed_pass(_grid(), repeats)
    traced = _timed_pass(_grid().observed(), repeats)
    ratio = round(traced["wall_seconds"] / untraced["wall_seconds"], 3)

    summaries = [row.summary for row in traced.pop("result").rows]
    untraced.pop("result")
    events = sum(
        summary.get("observability", {}).get("events", 0) for summary in summaries
    )
    print(f"  untraced: {untraced['rows']} rows in {untraced['wall_seconds']:.2f}s "
          f"({untraced['rows_per_second']:.2f} rows/s)")
    print(f"  traced:   {traced['rows']} rows in {traced['wall_seconds']:.2f}s "
          f"({traced['rows_per_second']:.2f} rows/s), {events} events")
    print(f"  overhead: {ratio}x (ceiling {MAX_OVERHEAD_RATIO}x)")
    print(format_hot_phase_table(summaries).rstrip("\n"))
    return {
        "untraced": untraced,
        "traced": traced,
        "overhead_ratio": ratio,
        "max_overhead_ratio": MAX_OVERHEAD_RATIO,
        "traced_events": events,
        "sizes": {"grid": "figure2-smoke", "repeats": repeats},
    }


def compute_deltas(baseline: Dict[str, Any], current: Dict[str, Any]) -> Dict[str, Any]:
    """Per-mode rows/s speedup vs the baseline — ``{}`` across grid changes."""
    if baseline.get("sizes") != current.get("sizes"):
        return {}
    deltas: Dict[str, Any] = {}
    for mode in ("untraced", "traced"):
        base = baseline.get(mode, {}).get("rows_per_second")
        if base:
            deltas[mode] = {
                "rows_per_second": round(current[mode]["rows_per_second"] / base, 3)
            }
    return deltas


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode; fail hard if the traced/untraced ratio breaks the ceiling",
    )
    parser.add_argument(
        "--record-baseline",
        action="store_true",
        help="store this run as the baseline (overwriting any existing one)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="passes per mode (fastest wins)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_obs.json",
    )
    arguments = parser.parse_args()

    print("observability benchmarks (figure2 smoke grid):")
    run = run_benchmarks(arguments.repeats)

    report: Dict[str, Any] = {}
    if arguments.output.exists():
        try:
            report = json.loads(arguments.output.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            report = {}

    if arguments.record_baseline or "baseline" not in report:
        report["baseline"] = run
    report["current"] = run
    report["deltas"] = compute_deltas(report["baseline"], run)

    arguments.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {arguments.output}")

    # The gate runs last so the report is written either way (CI uploads it).
    if arguments.smoke and run["overhead_ratio"] > MAX_OVERHEAD_RATIO:
        raise SystemExit(
            f"tracing overhead {run['overhead_ratio']}x exceeds the "
            f"{MAX_OVERHEAD_RATIO}x ceiling"
        )


if __name__ == "__main__":
    main()
