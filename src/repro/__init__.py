"""repro: a reproduction of "Read-Uncommitted Transactions for Smart Contract
Performance" (Cook, Painter, Peterson, Dechev — ICDCS 2019).

The package provides:

* ``repro.core`` — the paper's contributions: the Hash-Mark-Set algorithm
  (Algorithms 1-3), semantic mining, Runtime Argument Augmentation, and the
  state-throughput metrics;
* ``repro.chain`` / ``repro.evm`` / ``repro.txpool`` / ``repro.consensus`` /
  ``repro.net`` — the simulated Ethereum substrate the paper's system runs
  on (accounts, transactions, blocks, a contract engine, pools, miners, and
  a discrete-event gossip network);
* ``repro.contracts`` — the Sereth contract (Listing 1) and companions;
* ``repro.clients`` / ``repro.workloads`` / ``repro.experiments`` — the
  dynamic-pricing market workload and the harness that regenerates the
  paper's evaluation (Figure 2 and the headline claims);
* ``repro.api`` — the facade everything runs through: a fluent simulation
  builder, scenario/workload registries, the network engine, and a parallel
  parameter-sweep runner.

Quickstart::

    from repro.api import Simulation

    spec = (
        Simulation.builder()
        .scenario("semantic_mining")
        .workload("market", buys_per_set=2.0)
        .seed(42)
        .build()
    )
    print(Simulation(spec).run().efficiency)
"""

__version__ = "1.1.0"

__all__ = ["__version__"]
