"""repro: a reproduction of "Read-Uncommitted Transactions for Smart Contract
Performance" (Cook, Painter, Peterson, Dechev — ICDCS 2019).

The package provides:

* ``repro.core`` — the paper's contributions: the Hash-Mark-Set algorithm
  (Algorithms 1-3), semantic mining, Runtime Argument Augmentation, and the
  state-throughput metrics;
* ``repro.chain`` / ``repro.evm`` / ``repro.txpool`` / ``repro.consensus`` /
  ``repro.net`` — the simulated Ethereum substrate the paper's system runs
  on (accounts, transactions, blocks, a contract engine, pools, miners, and
  a discrete-event gossip network);
* ``repro.contracts`` — the Sereth contract (Listing 1) and companions;
* ``repro.clients`` / ``repro.workloads`` / ``repro.experiments`` — the
  dynamic-pricing market workload and the harness that regenerates the
  paper's evaluation (Figure 2 and the headline claims).

Quickstart::

    from repro.experiments import ExperimentConfig, SEMANTIC_MINING, run_market_experiment

    result = run_market_experiment(ExperimentConfig(scenario=SEMANTIC_MINING, buys_per_set=2.0))
    print(result.efficiency)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
