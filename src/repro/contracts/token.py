"""An ERC20-style fungible token contract.

Used by the examples to show that the substrate supports conventional
contracts alongside Sereth, and by the marketplace example where purchases
settle in tokens.
"""

from __future__ import annotations

from ..crypto.keccak import keccak256
from ..evm.contract import Contract, contract_function
from ..evm.message import CallContext
from ..evm.storage import ContractStorage, mapping_slot

__all__ = ["TokenContract"]

SLOT_TOTAL_SUPPLY = 0
SLOT_OWNER = 1
BALANCES_BASE = 2
ALLOWANCES_BASE = 3

TRANSFER_EVENT = keccak256(b"Transfer(address,address,uint256)")
APPROVAL_EVENT = keccak256(b"Approval(address,address,uint256)")


class TokenContract(Contract):
    """Minimal ERC20: mint (owner only), transfer, approve, transferFrom."""

    CODE_NAME = "Token"

    def constructor(self, context: CallContext, storage: ContractStorage) -> None:
        storage.store_address(SLOT_OWNER, context.sender)
        storage.store_int(SLOT_TOTAL_SUPPLY, 0)

    # -- views ---------------------------------------------------------------

    @contract_function([], returns=["uint256"], view=True)
    def total_supply(self, context: CallContext, storage: ContractStorage) -> int:
        return storage.load_int(SLOT_TOTAL_SUPPLY)

    @contract_function(["address"], returns=["uint256"], view=True)
    def balance_of(self, context: CallContext, storage: ContractStorage, owner: bytes) -> int:
        return storage.load_int(mapping_slot(BALANCES_BASE, owner))

    @contract_function(["address", "address"], returns=["uint256"], view=True)
    def allowance(
        self, context: CallContext, storage: ContractStorage, owner: bytes, spender: bytes
    ) -> int:
        return storage.load_int(self._allowance_slot(owner, spender))

    # -- mutations -------------------------------------------------------------

    @contract_function(["address", "uint256"])
    def mint(self, context: CallContext, storage: ContractStorage, to: bytes, amount: int) -> None:
        """Create new tokens; only the deployer may mint."""
        owner = storage.load_address(SLOT_OWNER)
        self.require(context.sender == owner, "only the owner may mint")
        storage.increment(SLOT_TOTAL_SUPPLY, amount)
        storage.increment(mapping_slot(BALANCES_BASE, to), amount)
        context.emit(self.address, topics=[TRANSFER_EVENT], data=b"")

    @contract_function(["address", "uint256"])
    def transfer(self, context: CallContext, storage: ContractStorage, to: bytes, amount: int) -> None:
        self._move(context, storage, context.sender, to, amount)

    @contract_function(["address", "uint256"])
    def approve(
        self, context: CallContext, storage: ContractStorage, spender: bytes, amount: int
    ) -> None:
        storage.store_int(self._allowance_slot(context.sender, spender), amount)
        context.emit(self.address, topics=[APPROVAL_EVENT], data=b"")

    @contract_function(["address", "address", "uint256"])
    def transfer_from(
        self,
        context: CallContext,
        storage: ContractStorage,
        owner: bytes,
        to: bytes,
        amount: int,
    ) -> None:
        allowance_slot = self._allowance_slot(owner, context.sender)
        allowance = storage.load_int(allowance_slot)
        self.require(allowance >= amount, "allowance exceeded")
        storage.store_int(allowance_slot, allowance - amount)
        self._move(context, storage, owner, to, amount)

    # -- internals ----------------------------------------------------------------

    def _move(
        self,
        context: CallContext,
        storage: ContractStorage,
        sender: bytes,
        to: bytes,
        amount: int,
    ) -> None:
        self.require(amount >= 0, "amount must be non-negative")
        from_slot = mapping_slot(BALANCES_BASE, sender)
        balance = storage.load_int(from_slot)
        self.require(balance >= amount, "insufficient token balance")
        storage.store_int(from_slot, balance - amount)
        storage.increment(mapping_slot(BALANCES_BASE, to), amount)
        context.emit(self.address, topics=[TRANSFER_EVENT], data=b"")

    @staticmethod
    def _allowance_slot(owner: bytes, spender: bytes) -> bytes:
        return mapping_slot(ALLOWANCES_BASE, keccak256(owner, spender))
