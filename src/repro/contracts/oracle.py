"""A conventional blockchain-oracle contract pair.

Section II-E of the paper describes oracles as the standard way for a smart
contract to reach external data — and Section III-D argues they cannot
deliver *intra-block* data because a request/response oracle needs at least
one full block round-trip per query.  These two contracts implement that
baseline: consumers post a request, an off-chain oracle operator observes
the request event and answers with a second transaction, and only then can
the consumer read the value.  The RAA-vs-oracle benchmark (A5 in DESIGN.md)
measures that round-trip against the zero-round-trip RAA path.
"""

from __future__ import annotations

from typing import Tuple

from ..crypto.keccak import keccak256
from ..encoding.hexutil import bytes32_from_int, to_bytes32
from ..evm.contract import Contract, contract_function
from ..evm.message import CallContext
from ..evm.storage import ContractStorage, mapping_slot

__all__ = ["OracleContract"]

SLOT_OPERATOR = 0
SLOT_NEXT_REQUEST_ID = 1
REQUESTS_BASE = 2      # request id -> requester address
ANSWERS_BASE = 3       # request id -> answered value
ANSWERED_BASE = 4      # request id -> 1 when answered

REQUEST_EVENT = keccak256(b"OracleRequest(uint256,address,bytes32)")
ANSWER_EVENT = keccak256(b"OracleAnswer(uint256,bytes32)")


class OracleContract(Contract):
    """Request/response oracle: ask with one transaction, read after another."""

    CODE_NAME = "Oracle"

    def constructor(self, context: CallContext, storage: ContractStorage) -> None:
        storage.store_address(SLOT_OPERATOR, context.sender)
        storage.store_int(SLOT_NEXT_REQUEST_ID, 0)

    # -- consumer side -------------------------------------------------------------

    @contract_function(["bytes32"], returns=["uint256"])
    def request(self, context: CallContext, storage: ContractStorage, query: bytes) -> int:
        """Post a data request; returns the request id (also logged)."""
        request_id = storage.load_int(SLOT_NEXT_REQUEST_ID)
        storage.store_int(SLOT_NEXT_REQUEST_ID, request_id + 1)
        storage.store(
            mapping_slot(REQUESTS_BASE, bytes32_from_int(request_id)),
            to_bytes32(context.sender),
        )
        context.emit(
            self.address,
            topics=[REQUEST_EVENT, bytes32_from_int(request_id)],
            data=query,
        )
        return request_id

    @contract_function(["uint256"], returns=["bool", "bytes32"], view=True)
    def read_answer(
        self, context: CallContext, storage: ContractStorage, request_id: int
    ) -> Tuple[bool, bytes]:
        """Return (answered, value) for a request id."""
        key = bytes32_from_int(request_id)
        answered = storage.load_int(mapping_slot(ANSWERED_BASE, key)) != 0
        value = storage.load(mapping_slot(ANSWERS_BASE, key))
        return answered, value

    # -- operator side ----------------------------------------------------------------

    @contract_function(["uint256", "bytes32"])
    def answer(
        self, context: CallContext, storage: ContractStorage, request_id: int, value: bytes
    ) -> None:
        """Answer a pending request; only the operator may call."""
        operator = storage.load_address(SLOT_OPERATOR)
        self.require(context.sender == operator, "only the oracle operator may answer")
        key = bytes32_from_int(request_id)
        requester = storage.load(mapping_slot(REQUESTS_BASE, key))
        self.require(requester != b"\x00" * 32, "unknown request id")
        self.require(
            storage.load_int(mapping_slot(ANSWERED_BASE, key)) == 0,
            "request already answered",
        )
        storage.store(mapping_slot(ANSWERS_BASE, key), value)
        storage.store_int(mapping_slot(ANSWERED_BASE, key), 1)
        context.emit(self.address, topics=[ANSWER_EVENT, key], data=value)
