"""An English auction whose bid history is mark-chained.

A third READ-UNCOMMITTED use case (besides the Sereth exchange and the
ticket sale): in an open-outcry auction the quantity every participant needs
*now* is the current high bid, and it changes with every accepted bid — the
worst case for READ-COMMITTED reads.  Each accepted bid advances a hash mark
exactly like Sereth's ``set``, so HMS can serialize the pending bid stream
and RAA can hand bidders the uncommitted high bid; a bid must name the mark
of the bid it is outbidding, which simultaneously defeats bid-shading races
(you cannot accidentally outbid a bid you never saw).
"""

from __future__ import annotations

from typing import List, Tuple

from ..crypto.keccak import keccak256
from ..encoding.hexutil import int_from_bytes32, to_bytes32
from ..evm.contract import Contract, contract_function
from ..evm.message import CallContext
from ..evm.storage import ContractStorage, mapping_slot

__all__ = ["AuctionContract"]

SLOT_SELLER = 0
SLOT_MARK = 1
SLOT_HIGH_BID = 2
SLOT_HIGH_BIDDER = 3
SLOT_BID_COUNT = 4
SLOT_CLOSED = 5
REFUNDS_BASE = 6

BID_EVENT = keccak256(b"BidAccepted(address,uint256)")
CLOSED_EVENT = keccak256(b"AuctionClosed(address,uint256)")


class AuctionContract(Contract):
    """English auction with a hash-mark-chained bid history."""

    CODE_NAME = "Auction"

    def constructor(self, context: CallContext, storage: ContractStorage) -> None:
        storage.store_address(SLOT_SELLER, context.sender)
        storage.store(SLOT_MARK, keccak256(b"auction/genesis/", self.address))
        storage.store_int(SLOT_HIGH_BID, 0)
        storage.store_address(SLOT_HIGH_BIDDER, context.sender)
        storage.store_int(SLOT_BID_COUNT, 0)
        storage.store_int(SLOT_CLOSED, 0)

    # -- views ----------------------------------------------------------------------

    @contract_function([], returns=["bytes32", "uint256", "bytes32"], view=True)
    def auction_state(
        self, context: CallContext, storage: ContractStorage
    ) -> Tuple[bytes, int, bytes]:
        """Committed (mark, high bid, high bidder)."""
        return (
            storage.load(SLOT_MARK),
            storage.load_int(SLOT_HIGH_BID),
            storage.load(SLOT_HIGH_BIDDER),
        )

    @contract_function(["bytes32[3]"], returns=["bytes32"], view=True, raa_arguments=[0])
    def pending_high_bid(
        self, context: CallContext, storage: ContractStorage, raa: List[bytes]
    ) -> bytes:
        """RAA-augmented view of the high bid after all pending bids."""
        return raa[2]

    @contract_function(["bytes32[3]"], returns=["bytes32"], view=True, raa_arguments=[0])
    def pending_mark(
        self, context: CallContext, storage: ContractStorage, raa: List[bytes]
    ) -> bytes:
        """RAA-augmented view of the mark after all pending bids."""
        return raa[1]

    @contract_function(["address"], returns=["uint256"], view=True)
    def refund_of(self, context: CallContext, storage: ContractStorage, bidder: bytes) -> int:
        """Amount an outbid participant can withdraw."""
        return storage.load_int(mapping_slot(REFUNDS_BASE, bidder))

    # -- transactions -------------------------------------------------------------------

    @contract_function(["bytes32[3]"])
    def bid(self, context: CallContext, storage: ContractStorage, fpv: List[bytes]) -> None:
        """Place a bid: ``fpv`` = (flag, previous_mark, amount).

        The bid must reference the current mark (i.e. name the bid it is
        outbidding), exceed the current high bid, and carry that much value.
        The previous high bidder's funds become withdrawable.
        """
        self.require(storage.load_int(SLOT_CLOSED) == 0, "auction is closed")
        current_mark = storage.load(SLOT_MARK)
        self.require(fpv[1] == current_mark, "stale mark: you are not outbidding the current high bid")
        amount = int_from_bytes32(fpv[2])
        current_high = storage.load_int(SLOT_HIGH_BID)
        self.require(amount > current_high, "bid does not exceed the current high bid")
        self.require(context.value >= amount, "bid must be funded with at least its amount")

        previous_bidder = storage.load_address(SLOT_HIGH_BIDDER)
        if current_high > 0:
            refund_slot = mapping_slot(REFUNDS_BASE, previous_bidder)
            storage.store_int(refund_slot, storage.load_int(refund_slot) + current_high)

        storage.store(SLOT_MARK, self.keccak(context, fpv[1], fpv[2]))
        storage.store_int(SLOT_HIGH_BID, amount)
        storage.store_address(SLOT_HIGH_BIDDER, context.sender)
        storage.increment(SLOT_BID_COUNT)
        context.emit(self.address, topics=[BID_EVENT, to_bytes32(context.sender)], data=fpv[2])

    @contract_function([])
    def close(self, context: CallContext, storage: ContractStorage) -> None:
        """End the auction; only the seller may close it."""
        seller = storage.load_address(SLOT_SELLER)
        self.require(context.sender == seller, "only the seller may close the auction")
        self.require(storage.load_int(SLOT_CLOSED) == 0, "auction already closed")
        storage.store_int(SLOT_CLOSED, 1)
        context.emit(
            self.address,
            topics=[CLOSED_EVENT, storage.load(SLOT_HIGH_BIDDER)],
            data=to_bytes32(storage.load_int(SLOT_HIGH_BID)),
        )

    @contract_function([])
    def withdraw_refund(self, context: CallContext, storage: ContractStorage) -> None:
        """Zero out the caller's refund balance (value transfer is modelled by
        the engine's balance bookkeeping for the contract account)."""
        refund_slot = mapping_slot(REFUNDS_BASE, context.sender)
        amount = storage.load_int(refund_slot)
        self.require(amount > 0, "nothing to withdraw")
        storage.store_int(refund_slot, 0)
