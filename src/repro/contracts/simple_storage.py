"""A minimal key/value contract used by engine tests and the quickstart."""

from __future__ import annotations

from typing import List

from ..crypto.keccak import keccak256
from ..evm.contract import Contract, contract_function
from ..evm.message import CallContext
from ..evm.storage import ContractStorage, mapping_slot

__all__ = ["SimpleStorageContract"]

SLOT_OWNER = 0
SLOT_VALUE = 1
MAPPING_BASE = 2


class SimpleStorageContract(Contract):
    """Stores a single uint256 plus a per-address mapping."""

    CODE_NAME = "SimpleStorage"

    def constructor(self, context: CallContext, storage: ContractStorage) -> None:
        storage.store_address(SLOT_OWNER, context.sender)
        storage.store_int(SLOT_VALUE, 0)

    @contract_function(["uint256"])
    def set_value(self, context: CallContext, storage: ContractStorage, value: int) -> None:
        """Set the shared value (anyone may call)."""
        storage.store_int(SLOT_VALUE, value)
        context.emit(self.address, topics=[keccak256(b"ValueChanged(uint256)")])

    @contract_function([], returns=["uint256"], view=True)
    def get_value(self, context: CallContext, storage: ContractStorage) -> int:
        return storage.load_int(SLOT_VALUE)

    @contract_function(["uint256"])
    def set_my_entry(self, context: CallContext, storage: ContractStorage, value: int) -> None:
        """Set the caller's entry in the per-address mapping."""
        storage.store_int(mapping_slot(MAPPING_BASE, context.sender), value)

    @contract_function(["address"], returns=["uint256"], view=True)
    def entry_of(self, context: CallContext, storage: ContractStorage, owner: bytes) -> int:
        return storage.load_int(mapping_slot(MAPPING_BASE, owner))

    @contract_function(["uint256"])
    def set_if_owner(self, context: CallContext, storage: ContractStorage, value: int) -> None:
        """Set the shared value, reverting unless the caller deployed the contract."""
        owner = storage.load_address(SLOT_OWNER)
        self.require(owner == context.sender, "only the owner may call set_if_owner")
        storage.store_int(SLOT_VALUE, value)
