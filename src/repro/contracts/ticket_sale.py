"""Ticket sale contract: a second READ-UNCOMMITTED use case.

A fixed inventory of tickets is sold at a price that the organiser can
change at any time.  Like the Sereth exchange, each price change advances a
hash mark, so buyers using the Hash-Mark-Set view can bind their purchase to
the exact price interval they observed — and remaining inventory is itself a
fast-changing state variable buyers want an uncommitted view of.
"""

from __future__ import annotations

from typing import List, Tuple

from ..crypto.keccak import keccak256
from ..encoding.hexutil import int_from_bytes32, to_bytes32
from ..evm.contract import Contract, contract_function
from ..evm.message import CallContext
from ..evm.storage import ContractStorage, mapping_slot

__all__ = ["TicketSaleContract"]

SLOT_ORGANISER = 0
SLOT_MARK = 1
SLOT_PRICE = 2
SLOT_REMAINING = 3
SLOT_SOLD = 4
TICKETS_BASE = 5

PRICE_CHANGED_EVENT = keccak256(b"PriceChanged(bytes32,uint256)")
TICKET_SOLD_EVENT = keccak256(b"TicketSold(address,uint256)")


class TicketSaleContract(Contract):
    """Sells a fixed inventory at an organiser-controlled, mark-chained price."""

    CODE_NAME = "TicketSale"

    #: Inventory installed at deployment; kept as a class attribute so the
    #: constructor needs no arguments (constructor calldata stays empty).
    INITIAL_INVENTORY = 1_000

    def constructor(self, context: CallContext, storage: ContractStorage) -> None:
        storage.store_address(SLOT_ORGANISER, context.sender)
        storage.store(SLOT_MARK, keccak256(b"ticket-sale/genesis/", self.address))
        storage.store_int(SLOT_PRICE, 0)
        storage.store_int(SLOT_REMAINING, self.INITIAL_INVENTORY)
        storage.store_int(SLOT_SOLD, 0)

    # -- views -------------------------------------------------------------------

    @contract_function([], returns=["bytes32", "uint256", "uint256"], view=True)
    def sale_state(
        self, context: CallContext, storage: ContractStorage
    ) -> Tuple[bytes, int, int]:
        """Committed (mark, price, remaining)."""
        return (
            storage.load(SLOT_MARK),
            storage.load_int(SLOT_PRICE),
            storage.load_int(SLOT_REMAINING),
        )

    @contract_function(["bytes32[3]"], returns=["bytes32"], view=True, raa_arguments=[0])
    def pending_mark(self, context: CallContext, storage: ContractStorage, raa: List[bytes]) -> bytes:
        """RAA-augmented view of the mark after all pending price changes."""
        return raa[1]

    @contract_function(["bytes32[3]"], returns=["bytes32"], view=True, raa_arguments=[0])
    def pending_price(self, context: CallContext, storage: ContractStorage, raa: List[bytes]) -> bytes:
        """RAA-augmented view of the price after all pending price changes."""
        return raa[2]

    @contract_function(["address"], returns=["uint256"], view=True)
    def tickets_of(self, context: CallContext, storage: ContractStorage, owner: bytes) -> int:
        return storage.load_int(mapping_slot(TICKETS_BASE, owner))

    # -- transactions ----------------------------------------------------------------

    @contract_function(["bytes32[3]"])
    def set_price(self, context: CallContext, storage: ContractStorage, fpv: List[bytes]) -> None:
        """Change the ticket price; ``fpv`` = (flag, previous_mark, new price)."""
        organiser = storage.load_address(SLOT_ORGANISER)
        self.require(context.sender == organiser, "only the organiser may set the price")
        current_mark = storage.load(SLOT_MARK)
        self.require(fpv[1] == current_mark, "stale mark")
        new_price = int_from_bytes32(fpv[2])
        storage.store(SLOT_MARK, self.keccak(context, fpv[1], fpv[2]))
        storage.store_int(SLOT_PRICE, new_price)
        context.emit(self.address, topics=[PRICE_CHANGED_EVENT, fpv[1]], data=fpv[2])

    @contract_function(["bytes32[3]", "uint256"])
    def buy_tickets(
        self,
        context: CallContext,
        storage: ContractStorage,
        offer: List[bytes],
        quantity: int,
    ) -> None:
        """Buy ``quantity`` tickets at the offered (mark, price) interval."""
        self.require(quantity > 0, "quantity must be positive")
        current_mark = storage.load(SLOT_MARK)
        current_price = storage.load(SLOT_PRICE)
        self.require(offer[1] == current_mark, "stale mark")
        self.require(offer[2] == current_price, "stale price")
        remaining = storage.load_int(SLOT_REMAINING)
        self.require(remaining >= quantity, "sold out")
        storage.store_int(SLOT_REMAINING, remaining - quantity)
        storage.increment(SLOT_SOLD, quantity)
        storage.increment(mapping_slot(TICKETS_BASE, context.sender), quantity)
        context.emit(
            self.address,
            topics=[TICKET_SOLD_EVENT, to_bytes32(context.sender)],
            data=to_bytes32(quantity),
        )
