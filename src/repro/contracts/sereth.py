"""The Sereth contract — a Python port of Listing 1 from the paper.

Sereth manages one shared state variable ``P``, an AMV tuple
``(address, mark, value)`` stored in slots 0..2, plus the ``nSet``/``nBuy``
counters.  ``set`` changes the price if (and only if) the caller supplied
the current mark; ``buy`` purchases at the current price if the caller
supplied both the current mark and the current price.  ``mark`` and ``get``
are pure functions whose ``bytes32[3]`` argument is filled in by Runtime
Argument Augmentation with the Hash-Mark-Set view of the pending pool.

One deliberate deviation from the Solidity listing: the listing silently
skips the state update when the mark check fails, whereas this port reverts.
Either way the transaction is included in the block with no state change;
reverting lets the receipt's ``success`` flag coincide with "made a state
change", which is exactly what the paper's state-throughput metric counts
(Section III-A).
"""

from __future__ import annotations

from typing import List, Tuple

from ..crypto.addresses import Address
from ..crypto.keccak import keccak256
from ..encoding.hexutil import to_bytes32
from ..evm.contract import Contract, contract_function
from ..evm.message import CallContext
from ..evm.storage import ContractStorage

__all__ = ["SerethContract", "initial_mark"]

# Storage layout (mirrors the elided state variable declarations in Listing 1).
SLOT_P_ADDRESS = 0   # p[0]: address of the last successful setter/buyer
SLOT_P_MARK = 1      # p[1]: the current mark
SLOT_P_VALUE = 2     # p[2]: the current value (price)
SLOT_N_SET = 3       # nSet: number of successful price changes
SLOT_N_BUY = 4       # nBuy: number of successful purchases


def initial_mark(contract_address: Address) -> bytes:
    """The genesis mark installed by the constructor.

    Derived from the contract address so that independent deployments have
    distinct series roots, the way a fresh Solidity deployment starts from
    its own storage.
    """
    return keccak256(b"sereth/genesis-mark/", contract_address)


class SerethContract(Contract):
    """Dynamic-pricing exchange managed by the Hash-Mark-Set algorithm."""

    CODE_NAME = "Sereth"

    def constructor(self, context: CallContext, storage: ContractStorage) -> None:
        """Install the genesis mark and a zero price owned by the deployer."""
        storage.store_address(SLOT_P_ADDRESS, context.sender)
        storage.store(SLOT_P_MARK, initial_mark(self.address))
        storage.store(SLOT_P_VALUE, to_bytes32(0))
        storage.store_int(SLOT_N_SET, 0)
        storage.store_int(SLOT_N_BUY, 0)

    # -- pure functions used with RAA (Listing 1: mark and get) ----------------

    @contract_function(["bytes32[3]"], returns=["bytes32"], view=True, raa_arguments=[0])
    def mark(self, context: CallContext, storage: ContractStorage, raa: List[bytes]) -> bytes:
        """Return the (RAA-provided) intra-block mark: ``raa[1]``."""
        return raa[1]

    @contract_function(["bytes32[3]"], returns=["bytes32"], view=True, raa_arguments=[0])
    def get(self, context: CallContext, storage: ContractStorage, raa: List[bytes]) -> bytes:
        """Return the (RAA-provided) intra-block value: ``raa[2]``."""
        return raa[2]

    # -- public state getters (Solidity auto-generates these for public vars) --

    @contract_function([], returns=["bytes32", "bytes32", "bytes32"], view=True)
    def current(self, context: CallContext, storage: ContractStorage) -> Tuple[bytes, bytes, bytes]:
        """The committed AMV tuple (READ-COMMITTED view of ``P``)."""
        return (
            storage.load(SLOT_P_ADDRESS),
            storage.load(SLOT_P_MARK),
            storage.load(SLOT_P_VALUE),
        )

    @contract_function([], returns=["uint256", "uint256"], view=True)
    def stats(self, context: CallContext, storage: ContractStorage) -> Tuple[int, int]:
        """Return ``(nSet, nBuy)``."""
        return storage.load_int(SLOT_N_SET), storage.load_int(SLOT_N_BUY)

    # -- transactions -------------------------------------------------------------

    @contract_function(["bytes32[3]"])
    def set(self, context: CallContext, storage: ContractStorage, fpv: List[bytes]) -> None:
        """Change the price if ``fpv`` carries the current mark.

        ``fpv`` is (flag, previous_mark, value).  On success the stored mark
        advances to ``keccak256(previous_mark, value)``, chaining every state
        change into the series HMS reconstructs off-chain.
        """
        current_mark = storage.load(SLOT_P_MARK)
        self.require(
            self.keccak(context, fpv[1]) == self.keccak(context, current_mark),
            "stale mark: fpv[1] does not match p[1]",
        )
        storage.increment(SLOT_N_SET)
        storage.store_address(SLOT_P_ADDRESS, context.sender)
        storage.store(SLOT_P_MARK, self.keccak(context, fpv[1], fpv[2]))
        storage.store(SLOT_P_VALUE, fpv[2])
        context.emit(
            self.address,
            topics=[keccak256(b"Set(bytes32,bytes32)"), fpv[1]],
            data=fpv[2],
        )

    @contract_function(["bytes32[3]"])
    def buy(self, context: CallContext, storage: ContractStorage, offer: List[bytes]) -> None:
        """Buy one item if ``offer`` carries both the current mark and price.

        ``offer`` is (flag, mark, price).  Binding the purchase to the mark
        proves which price interval the buyer observed, which is what defeats
        the lost-update and frontrunning problems (Section V-B).
        """
        current_mark = storage.load(SLOT_P_MARK)
        current_value = storage.load(SLOT_P_VALUE)
        self.require(
            self.keccak(context, offer[1]) == self.keccak(context, current_mark),
            "stale mark: offer[1] does not match p[1]",
        )
        self.require(
            self.keccak(context, offer[2]) == self.keccak(context, current_value),
            "stale price: offer[2] does not match p[2]",
        )
        storage.increment(SLOT_N_BUY)
        storage.store_address(SLOT_P_ADDRESS, context.sender)
        context.emit(
            self.address,
            topics=[keccak256(b"Buy(bytes32,bytes32)"), offer[1]],
            data=offer[2],
        )


def genesis_storage(owner: Address, contract_addr: Address) -> dict:
    """The storage the constructor would write, for genesis pre-deployment.

    Experiments pre-deploy Sereth in the genesis state (the exchange already
    exists when trading opens); this helper keeps that storage in lockstep
    with :meth:`SerethContract.constructor`.
    """
    return {
        to_bytes32(SLOT_P_ADDRESS): to_bytes32(owner),
        to_bytes32(SLOT_P_MARK): initial_mark(contract_addr),
        to_bytes32(SLOT_P_VALUE): to_bytes32(0),
        to_bytes32(SLOT_N_SET): to_bytes32(0),
        to_bytes32(SLOT_N_BUY): to_bytes32(0),
    }


# Selector constants used by HMS configuration and the clients.
SET_SELECTOR = SerethContract.function_by_name("set").selector
BUY_SELECTOR = SerethContract.function_by_name("buy").selector
