"""Contracts shipped with the reproduction.

Importing this package registers every contract class with the default
registry, so blocks replay identically on every peer of an experiment.
"""

from ..evm.registry import default_registry
from .auction import AuctionContract
from .oracle import OracleContract
from .sereth import (
    BUY_SELECTOR,
    SET_SELECTOR,
    SerethContract,
    genesis_storage,
    initial_mark,
)
from .simple_storage import SimpleStorageContract
from .ticket_sale import TicketSaleContract
from .token import TokenContract

for _contract_class in (
    SerethContract,
    SimpleStorageContract,
    TicketSaleContract,
    TokenContract,
    OracleContract,
    AuctionContract,
):
    default_registry().register(_contract_class)

__all__ = [
    "AuctionContract",
    "SerethContract",
    "SET_SELECTOR",
    "BUY_SELECTOR",
    "initial_mark",
    "genesis_storage",
    "SimpleStorageContract",
    "TicketSaleContract",
    "TokenContract",
    "OracleContract",
]
