"""Cryptographic primitives: Keccak-256 and address/selector derivation."""

from .keccak import Keccak256, keccak256, keccak_f1600
from .addresses import (
    ADDRESS_LENGTH,
    Address,
    ZERO_ADDRESS,
    address_from_label,
    contract_address,
    function_selector,
    is_address,
    to_checksum,
)

__all__ = [
    "Keccak256",
    "keccak256",
    "keccak_f1600",
    "ADDRESS_LENGTH",
    "Address",
    "ZERO_ADDRESS",
    "address_from_label",
    "contract_address",
    "function_selector",
    "is_address",
    "to_checksum",
]
