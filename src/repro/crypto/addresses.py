"""Address and selector derivation helpers.

Ethereum addresses are the last 20 bytes of the Keccak-256 hash of the
public key; contract addresses are derived from the creator address and
nonce.  We do not model secp256k1 keys, so externally-owned account
addresses are derived deterministically from a human-readable label, which
keeps experiment traces readable while preserving the 20-byte address
format used throughout the chain substrate.
"""

from __future__ import annotations

from .keccak import keccak256

__all__ = [
    "Address",
    "ADDRESS_LENGTH",
    "ZERO_ADDRESS",
    "address_from_label",
    "contract_address",
    "function_selector",
    "is_address",
    "to_checksum",
]

ADDRESS_LENGTH = 20

Address = bytes
"""A 20-byte account identifier."""

ZERO_ADDRESS: Address = b"\x00" * ADDRESS_LENGTH


def is_address(value: object) -> bool:
    """Return True if ``value`` is a well-formed 20-byte address."""
    return isinstance(value, (bytes, bytearray)) and len(value) == ADDRESS_LENGTH


def address_from_label(label: str) -> Address:
    """Derive a deterministic externally-owned-account address from a label.

    Used by the workload generators and examples so that "alice", "miner-0"
    etc. map to stable addresses across runs.
    """
    if not label:
        raise ValueError("address label must be non-empty")
    return keccak256(b"repro/address/" + label.encode("utf-8"))[-ADDRESS_LENGTH:]


def contract_address(creator: Address, nonce: int) -> Address:
    """Derive a contract address from its creator and the creator's nonce.

    Ethereum uses ``keccak256(rlp([sender, nonce]))[12:]``; we use the same
    inputs (and the project's RLP encoder) so that repeated deployments from
    the same account yield distinct, deterministic addresses.
    """
    from ..encoding.rlp import rlp_encode

    if not is_address(creator):
        raise ValueError("creator must be a 20-byte address")
    if nonce < 0:
        raise ValueError("nonce must be non-negative")
    encoded = rlp_encode([creator, nonce])
    return keccak256(encoded)[-ADDRESS_LENGTH:]


def function_selector(signature: str) -> bytes:
    """Return the 4-byte ABI selector for a function signature string.

    Example: ``function_selector("set(bytes32[3])")``.
    """
    if "(" not in signature or not signature.endswith(")"):
        raise ValueError(f"malformed function signature: {signature!r}")
    return keccak256(signature.encode("ascii"))[:4]


def to_checksum(address: Address) -> str:
    """Render an address as an EIP-55 checksummed hex string."""
    if not is_address(address):
        raise ValueError("expected a 20-byte address")
    hex_address = address.hex()
    hash_hex = keccak256(hex_address.encode("ascii")).hex()
    checksummed = []
    for character, hash_character in zip(hex_address, hash_hex):
        if character.isdigit():
            checksummed.append(character)
        elif int(hash_character, 16) >= 8:
            checksummed.append(character.upper())
        else:
            checksummed.append(character)
    return "0x" + "".join(checksummed)
