"""Keccak-f[1600] sponge and the Keccak-256 hash used by Ethereum.

Ethereum uses the *original* Keccak submission padding (a single ``0x01``
domain byte) rather than the NIST SHA-3 padding (``0x06``), so the values
produced here match ``keccak256`` as computed by Geth/Solidity and therefore
match the "marks" that the Sereth contract and the Hash-Mark-Set algorithm
compute in the paper.

The implementation is a straightforward, dependency-free sponge over the
Keccak-f[1600] permutation.  It is not optimised for speed (hashing is not
the bottleneck in the discrete-event experiments) but is exact.
"""

from __future__ import annotations

from typing import Iterable, List

__all__ = ["keccak256", "keccak_f1600", "Keccak256"]

_ROUNDS = 24

# Round constants for the iota step.
_RC = [
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A, 0x8000000080008000,
    0x000000000000808B, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
    0x000000000000008A, 0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089, 0x8000000000008003,
    0x8000000000008002, 0x8000000000000080, 0x000000000000800A, 0x800000008000000A,
    0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
]

# Rotation offsets for the rho step, indexed [x][y].
_ROTATION = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
]

_MASK = (1 << 64) - 1


def _rotl(value: int, shift: int) -> int:
    """Rotate a 64-bit lane left by ``shift`` bits."""
    shift %= 64
    if shift == 0:
        return value
    return ((value << shift) | (value >> (64 - shift))) & _MASK


def keccak_f1600(state: List[int]) -> List[int]:
    """Apply the Keccak-f[1600] permutation to a 25-lane state.

    The state is a flat list of 25 64-bit integers in lane order
    ``state[x + 5 * y]``.  A new list is returned; the input is not
    modified.
    """
    if len(state) != 25:
        raise ValueError(f"Keccak-f[1600] state must have 25 lanes, got {len(state)}")
    lanes = [[state[x + 5 * y] for y in range(5)] for x in range(5)]
    for round_index in range(_ROUNDS):
        # theta
        c = [lanes[x][0] ^ lanes[x][1] ^ lanes[x][2] ^ lanes[x][3] ^ lanes[x][4] for x in range(5)]
        d = [c[(x - 1) % 5] ^ _rotl(c[(x + 1) % 5], 1) for x in range(5)]
        for x in range(5):
            for y in range(5):
                lanes[x][y] ^= d[x]
        # rho and pi
        b = [[0] * 5 for _ in range(5)]
        for x in range(5):
            for y in range(5):
                b[y][(2 * x + 3 * y) % 5] = _rotl(lanes[x][y], _ROTATION[x][y])
        # chi
        for x in range(5):
            for y in range(5):
                lanes[x][y] = b[x][y] ^ ((~b[(x + 1) % 5][y]) & b[(x + 2) % 5][y] & _MASK)
        # iota
        lanes[0][0] ^= _RC[round_index]
    return [lanes[x][y] & _MASK for y in range(5) for x in range(5)]


class Keccak256:
    """Incremental Keccak-256 hasher (rate 1088 bits / 136 bytes)."""

    RATE_BYTES = 136
    DIGEST_SIZE = 32

    def __init__(self, data: bytes = b"") -> None:
        self._state = [0] * 25
        self._buffer = bytearray()
        self._finalized = False
        if data:
            self.update(data)

    def update(self, data: bytes) -> "Keccak256":
        """Absorb ``data`` into the sponge."""
        if self._finalized:
            raise RuntimeError("cannot update a finalized Keccak256 hasher")
        self._buffer.extend(data)
        while len(self._buffer) >= self.RATE_BYTES:
            block = bytes(self._buffer[: self.RATE_BYTES])
            del self._buffer[: self.RATE_BYTES]
            self._absorb(block)
        return self

    def _absorb(self, block: bytes) -> None:
        for lane_index in range(self.RATE_BYTES // 8):
            lane = int.from_bytes(block[lane_index * 8 : lane_index * 8 + 8], "little")
            self._state[lane_index] ^= lane
        self._state = keccak_f1600(self._state)

    def digest(self) -> bytes:
        """Return the 32-byte digest. The hasher may keep being updated only
        if ``digest`` has not been called (Keccak padding is terminal)."""
        padded = bytearray(self._buffer)
        pad_length = self.RATE_BYTES - (len(padded) % self.RATE_BYTES)
        padding = bytearray(pad_length)
        # Original Keccak (pre-SHA3) multi-rate padding: 0x01 ... 0x80.
        padding[0] = 0x01
        padding[-1] |= 0x80
        padded.extend(padding)

        state = list(self._state)
        for offset in range(0, len(padded), self.RATE_BYTES):
            block = bytes(padded[offset : offset + self.RATE_BYTES])
            for lane_index in range(self.RATE_BYTES // 8):
                lane = int.from_bytes(block[lane_index * 8 : lane_index * 8 + 8], "little")
                state[lane_index] ^= lane
            state = keccak_f1600(state)

        output = bytearray()
        for lane_index in range(self.DIGEST_SIZE // 8):
            output.extend(state[lane_index].to_bytes(8, "little"))
        return bytes(output)

    def hexdigest(self) -> str:
        """Return the digest as a lowercase hex string (no 0x prefix)."""
        return self.digest().hex()


from functools import lru_cache


@lru_cache(maxsize=200_000)
def _keccak256_cached(data: bytes) -> bytes:
    return Keccak256(data).digest()


def keccak256(*chunks: bytes) -> bytes:
    """Hash the concatenation of ``chunks`` with Keccak-256.

    Accepting multiple chunks mirrors Solidity's ``keccak256(a, b)`` usage in
    the Sereth contract (Listing 1), where a transaction's mark is
    ``keccak256(previous_mark, value)``.

    Results are memoised: the simulated network re-hashes the same
    transactions on every validating peer (block replay), and HMS recomputes
    the same marks on every view call, so caching pure hash results removes a
    large constant factor without changing any observable behaviour.
    """
    for chunk in chunks:
        if not isinstance(chunk, (bytes, bytearray)):
            raise TypeError(f"keccak256 expects bytes, got {type(chunk).__name__}")
    return _keccak256_cached(b"".join(bytes(chunk) for chunk in chunks))
