"""Keccak-f[1600] sponge and the Keccak-256 hash used by Ethereum.

Ethereum uses the *original* Keccak submission padding (a single ``0x01``
domain byte) rather than the NIST SHA-3 padding (``0x06``), so the values
produced here match ``keccak256`` as computed by Geth/Solidity and therefore
match the "marks" that the Sereth contract and the Hash-Mark-Set algorithm
compute in the paper.

The permutation is generated at import time as one fully unrolled function:
all 24 rounds are emitted as straight-line code over 25 local variables, with
the theta/rho/pi/chi index arithmetic and rotation offsets folded into
constants.  Hashing *is* on the simulator's hot path (every transaction hash,
every trie node, every HMS mark), and the unrolled form runs several times
faster than a loop-and-list implementation while remaining dependency-free
and bit-exact.

The module-level :func:`keccak256` memoises digests (validating peers re-hash
the same transactions on every block replay).  The memo is process-global, so
long-lived sweep workers must reset it between engine runs via
:func:`clear_hash_cache`; :func:`hash_cache_stats` exposes hit/size counters
for the benchmark harness.
"""

from __future__ import annotations

import struct
from functools import lru_cache
from typing import Dict, List

__all__ = [
    "keccak256",
    "keccak_f1600",
    "Keccak256",
    "clear_hash_cache",
    "hash_cache_stats",
]

_ROUNDS = 24

# Round constants for the iota step.
_RC = [
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A, 0x8000000080008000,
    0x000000000000808B, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
    0x000000000000008A, 0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089, 0x8000000000008003,
    0x8000000000008002, 0x8000000000000080, 0x000000000000800A, 0x800000008000000A,
    0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
]

# Rotation offsets for the rho step, indexed [x][y].
_ROTATION = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
]

_MASK = (1 << 64) - 1


def _generate_permutation() -> "callable":
    """Emit the unrolled permutation as source and compile it.

    The state is a flat sequence of 25 lanes in ``state[x + 5 * y]`` order
    (the same layout the loop implementation used); the generated function
    takes that sequence and returns a new 25-element list.
    """

    def rotl(expr: str, shift: int) -> str:
        shift %= 64
        if shift == 0:
            return expr
        return f"(({expr} << {shift}) & M | ({expr} >> {64 - shift}))"

    lines = [
        "def _permute(state, M=_MASK):",
        "    (" + ", ".join(f"a{index}" for index in range(25)) + ") = state",
    ]
    for round_index in range(_ROUNDS):
        # theta: column parities, then mix each lane with its neighbours'.
        for x in range(5):
            column = " ^ ".join(f"a{x + 5 * y}" for y in range(5))
            lines.append(f"    c{x} = {column}")
        for x in range(5):
            lines.append(f"    d{x} = c{(x - 1) % 5} ^ {rotl(f'c{(x + 1) % 5}', 1)}")
        for x in range(5):
            for y in range(5):
                lines.append(f"    a{x + 5 * y} ^= d{x}")
        # rho + pi: rotate each lane into its permuted slot.
        for x in range(5):
            for y in range(5):
                target = y + 5 * ((2 * x + 3 * y) % 5)
                lines.append(f"    b{target} = {rotl(f'a{x + 5 * y}', _ROTATION[x][y])}")
        # chi: complement via xor-with-mask keeps every intermediate a
        # non-negative 64-bit int (faster than ~ on CPython).
        for x in range(5):
            for y in range(5):
                index = x + 5 * y
                left = ((x + 1) % 5) + 5 * y
                right = ((x + 2) % 5) + 5 * y
                lines.append(f"    a{index} = b{index} ^ ((b{left} ^ M) & b{right})")
        lines.append(f"    a0 ^= {_RC[round_index]}")
    lines.append("    return [" + ", ".join(f"a{index}" for index in range(25)) + "]")

    namespace = {"_MASK": _MASK}
    exec(compile("\n".join(lines), "<keccak-f1600-unrolled>", "exec"), namespace)
    return namespace["_permute"]


_permute = _generate_permutation()


def keccak_f1600(state: List[int]) -> List[int]:
    """Apply the Keccak-f[1600] permutation to a 25-lane state.

    The state is a flat list of 25 64-bit integers in lane order
    ``state[x + 5 * y]``.  A new list is returned; the input is not
    modified.  Lanes are reduced to 64 bits before permuting.
    """
    if len(state) != 25:
        raise ValueError(f"Keccak-f[1600] state must have 25 lanes, got {len(state)}")
    return _permute([lane & _MASK for lane in state])


_RATE_LANES = struct.Struct("<17Q")


class Keccak256:
    """Incremental Keccak-256 hasher (rate 1088 bits / 136 bytes)."""

    RATE_BYTES = 136
    DIGEST_SIZE = 32

    def __init__(self, data: bytes = b"") -> None:
        self._state = [0] * 25
        self._buffer = bytearray()
        self._finalized = False
        if data:
            self.update(data)

    def update(self, data: bytes) -> "Keccak256":
        """Absorb ``data`` into the sponge (whole rate-blocks at a time)."""
        if self._finalized:
            raise RuntimeError("cannot update a finalized Keccak256 hasher")
        buffer = self._buffer
        buffer.extend(data)
        pending = len(buffer)
        if pending < self.RATE_BYTES:
            return self
        state = self._state
        unpack_from = _RATE_LANES.unpack_from
        offset = 0
        whole = pending - (pending % self.RATE_BYTES)
        while offset < whole:
            for lane_index, lane in enumerate(unpack_from(buffer, offset)):
                state[lane_index] ^= lane
            state = _permute(state)
            offset += self.RATE_BYTES
        self._state = state
        del buffer[:whole]
        return self

    def digest(self) -> bytes:
        """Return the 32-byte digest. The hasher may keep being updated only
        if ``digest`` has not been called (Keccak padding is terminal)."""
        padded = bytearray(self._buffer)
        pad_length = self.RATE_BYTES - (len(padded) % self.RATE_BYTES)
        padding = bytearray(pad_length)
        # Original Keccak (pre-SHA3) multi-rate padding: 0x01 ... 0x80.
        padding[0] = 0x01
        padding[-1] |= 0x80
        padded.extend(padding)

        state = list(self._state)
        unpack_from = _RATE_LANES.unpack_from
        for offset in range(0, len(padded), self.RATE_BYTES):
            for lane_index, lane in enumerate(unpack_from(padded, offset)):
                state[lane_index] ^= lane
            state = _permute(state)

        return struct.pack("<4Q", state[0], state[1], state[2], state[3])

    def hexdigest(self) -> str:
        """Return the digest as a lowercase hex string (no 0x prefix)."""
        return self.digest().hex()


def _load_native_backend():
    """The compiled Keccak-256 one-shot, verified digest-for-digest against
    the pure-Python sponge on padding-boundary vectors; ``None`` (pure
    Python everywhere) when no compiler is available, the build fails, or
    any vector disagrees — the backend may be faster, never different."""
    try:
        from .keccak_native import load_native_keccak256

        native = load_native_keccak256()
    except Exception:
        return None
    if native is None:
        return None
    vectors = (
        b"",
        b"abc",
        bytes(range(256)),
        b"\x00" * 32,
        b"x" * 135,
        b"y" * 136,
        b"z" * 137,
        b"w" * 272,
    )
    try:
        for vector in vectors:
            if native(vector) != Keccak256(vector).digest():
                return None
    except Exception:
        return None
    return native


_NATIVE_KECCAK256 = None
_NATIVE_BACKEND_PROBED = False
"""The backend loads lazily on the first digest computation, not at import:
importing the package must never shell out to a compiler or touch the
filesystem (CLI ``--help``, test collection, sandboxes)."""


def _native_backend():
    global _NATIVE_KECCAK256, _NATIVE_BACKEND_PROBED
    if not _NATIVE_BACKEND_PROBED:
        _NATIVE_KECCAK256 = _load_native_backend()
        _NATIVE_BACKEND_PROBED = True
    return _NATIVE_KECCAK256


@lru_cache(maxsize=200_000)
def _keccak256_cached(data: bytes) -> bytes:
    native = _native_backend()
    if native is not None:
        return native(data)
    return Keccak256(data).digest()


def clear_hash_cache() -> None:
    """Drop every memoised digest.

    The memo only ever caches pure ``input -> digest`` pairs, so clearing is
    always safe; it exists so long-lived processes (multiprocessing sweep
    workers, benchmark loops) can bound their memory between engine runs.
    """
    _keccak256_cached.cache_clear()


def hash_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the global digest memo."""
    info = _keccak256_cached.cache_info()
    return {
        "hits": info.hits,
        "max_size": info.maxsize,
        "misses": info.misses,
        "size": info.currsize,
    }


def keccak256(*chunks: bytes) -> bytes:
    """Hash the concatenation of ``chunks`` with Keccak-256.

    Accepting multiple chunks mirrors Solidity's ``keccak256(a, b)`` usage in
    the Sereth contract (Listing 1), where a transaction's mark is
    ``keccak256(previous_mark, value)``.

    Results are memoised: the simulated network re-hashes the same
    transactions on every validating peer (block replay), and HMS recomputes
    the same marks on every view call, so caching pure hash results removes a
    large constant factor without changing any observable behaviour.  See
    :func:`clear_hash_cache` for the memo's lifecycle.
    """
    for chunk in chunks:
        if not isinstance(chunk, (bytes, bytearray)):
            raise TypeError(f"keccak256 expects bytes, got {type(chunk).__name__}")
    if len(chunks) == 1 and type(chunks[0]) is bytes:
        return _keccak256_cached(chunks[0])
    return _keccak256_cached(b"".join(bytes(chunk) for chunk in chunks))
