"""Optional native Keccak-256 backend, compiled with the system C compiler.

PR 2 regenerated the pure-Python Keccak-f[1600] permutation as unrolled
straight-line code (~2.7x), but ~250 microseconds per permutation is still
the engine's hard floor: every *unique* transaction hash, trie node, and
state commitment in a sweep pays it.  This module removes that floor where
the hardware allows: at first use it compiles a small, dependency-free C
implementation of one-shot Keccak-256 with ``cc -O3 -shared``, caches the
shared object under the system temp directory keyed by the source digest,
and loads it through :mod:`ctypes`.

Strictly optional and strictly verified:

* no compiler, a failed compile, or a failed load simply returns ``None``
  and :mod:`repro.crypto.keccak` keeps using the pure-Python sponge;
* :mod:`repro.crypto.keccak` cross-checks the loaded function against the
  pure-Python implementation on a battery of padding-boundary vectors and
  discards it on any mismatch, so a bad toolchain can never change digests;
* ``REPRO_PURE_KECCAK=1`` in the environment disables the backend outright
  (useful for benchmarking the fallback and for debugging).

The C code implements original Keccak (pre-SHA3 0x01 multi-rate padding),
rate 1088, little-endian lane extraction — bit-identical to
:class:`repro.crypto.keccak.Keccak256`.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Callable, Optional

__all__ = ["load_native_keccak256"]

_C_SOURCE = r"""
#include <stdint.h>
#include <stddef.h>
#include <string.h>

static const uint64_t RC[24] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

static const int RHO[25] = {
     0,  1, 62, 28, 27,
    36, 44,  6, 55, 20,
     3, 10, 43, 25, 39,
    41, 45, 15, 21,  8,
    18,  2, 61, 56, 14,
};

#define ROTL64(x, s) (((x) << (s)) | ((x) >> (64 - (s))))

static void keccak_f1600(uint64_t *a) {
    uint64_t b[25], c[5], d[5];
    for (int round = 0; round < 24; round++) {
        /* theta */
        for (int x = 0; x < 5; x++)
            c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
        for (int x = 0; x < 5; x++)
            d[x] = c[(x + 4) % 5] ^ ROTL64(c[(x + 1) % 5], 1);
        for (int i = 0; i < 25; i++)
            a[i] ^= d[i % 5];
        /* rho + pi */
        for (int x = 0; x < 5; x++)
            for (int y = 0; y < 5; y++) {
                int s = RHO[x + 5 * y];
                uint64_t lane = s ? ROTL64(a[x + 5 * y], s) : a[x + 5 * y];
                b[y + 5 * ((2 * x + 3 * y) % 5)] = lane;
            }
        /* chi */
        for (int x = 0; x < 5; x++)
            for (int y = 0; y < 5; y++)
                a[x + 5 * y] =
                    b[x + 5 * y] ^ (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
        /* iota */
        a[0] ^= RC[round];
    }
}

static uint64_t load64(const uint8_t *p) {
    uint64_t v;
    memcpy(&v, p, 8);
    return v; /* little-endian hosts only; the loader self-test guards this */
}

int repro_keccak256(const uint8_t *data, size_t length, uint8_t *out) {
    uint64_t state[25];
    uint8_t block[136];
    memset(state, 0, sizeof(state));
    while (length >= 136) {
        for (int i = 0; i < 17; i++)
            state[i] ^= load64(data + 8 * i);
        keccak_f1600(state);
        data += 136;
        length -= 136;
    }
    memset(block, 0, sizeof(block));
    memcpy(block, data, length);
    block[length] = 0x01;       /* original Keccak multi-rate padding */
    block[135] |= 0x80;
    for (int i = 0; i < 17; i++)
        state[i] ^= load64(block + 8 * i);
    keccak_f1600(state);
    memcpy(out, state, 32);
    return 0;
}
"""


def _library_path() -> Path:
    digest = hashlib.sha256(_C_SOURCE.encode("utf-8")).hexdigest()[:16]
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return (
        Path(tempfile.gettempdir())
        / f"repro-keccak-{uid}"
        / f"keccak-{digest}.so"
    )


def _compile_library(lib_path: Path) -> bool:
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        return False
    cache_dir = lib_path.parent
    cache_dir.mkdir(mode=0o700, parents=True, exist_ok=True)
    if cache_dir.stat().st_uid != (os.getuid() if hasattr(os, "getuid") else 0):
        return False  # refuse a temp dir someone else planted
    with tempfile.TemporaryDirectory(dir=cache_dir) as scratch:
        source = Path(scratch) / "keccak.c"
        source.write_text(_C_SOURCE, encoding="utf-8")
        built = Path(scratch) / "keccak.so"
        result = subprocess.run(
            [compiler, "-O3", "-shared", "-fPIC", "-o", str(built), str(source)],
            capture_output=True,
            timeout=60,
        )
        if result.returncode != 0 or not built.exists():
            return False
        os.replace(built, lib_path)  # atomic: concurrent builders converge
    return True


def _owned_by_us(path: Path) -> bool:
    """True iff ``path`` exists, belongs to this uid, and is not writable by
    anyone else — the guard against loading a shared-object another user
    planted at the predictable cache path on a shared machine."""
    try:
        status = path.stat()
    except OSError:
        return False
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return status.st_uid == uid and not (status.st_mode & 0o022)


def load_native_keccak256() -> Optional[Callable[[bytes], bytes]]:
    """The compiled one-shot Keccak-256, or ``None`` when unavailable.

    Callers MUST verify the returned function against the pure-Python
    implementation before trusting it (``repro.crypto.keccak`` does).
    """
    if os.environ.get("REPRO_PURE_KECCAK"):
        return None
    lib_path = _library_path()
    try:
        if not _owned_by_us(lib_path):
            lib_path.unlink(missing_ok=True)  # stale or foreign: rebuild
            if not _compile_library(lib_path) or not _owned_by_us(lib_path):
                return None
        if not _owned_by_us(lib_path.parent):
            return None  # a foreign cache dir could swap the file under us
        library = ctypes.CDLL(str(lib_path))
    except (OSError, subprocess.SubprocessError):
        return None
    function = library.repro_keccak256
    function.argtypes = [ctypes.c_char_p, ctypes.c_size_t, ctypes.c_char_p]
    function.restype = ctypes.c_int

    def keccak256_native(data: bytes) -> bytes:
        out = ctypes.create_string_buffer(32)
        function(data, len(data), out)
        return out.raw

    return keccak256_native
