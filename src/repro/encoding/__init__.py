"""Encoding utilities: hex helpers, RLP, and a minimal Solidity ABI."""

from .hexutil import (
    WORD_SIZE,
    bytes32_from_int,
    bytes32_from_text,
    from_hex,
    int_from_bytes32,
    pad_left,
    pad_right,
    to_bytes32,
    to_hex,
)
from .rlp import RLPDecodingError, rlp_decode, rlp_encode
from .abi import (
    ABIError,
    FunctionABI,
    decode_arguments,
    decode_call,
    decode_word,
    encode_arguments,
    encode_call,
    encode_word,
    selector_of,
)

__all__ = [
    "WORD_SIZE",
    "bytes32_from_int",
    "bytes32_from_text",
    "from_hex",
    "int_from_bytes32",
    "pad_left",
    "pad_right",
    "to_bytes32",
    "to_hex",
    "RLPDecodingError",
    "rlp_decode",
    "rlp_encode",
    "ABIError",
    "FunctionABI",
    "decode_arguments",
    "decode_call",
    "decode_word",
    "encode_arguments",
    "encode_call",
    "encode_word",
    "selector_of",
]
