"""Recursive Length Prefix (RLP) encoding and decoding.

RLP is Ethereum's canonical serialization for transactions, block headers,
and account records.  We use it for transaction hashing, block hashing, and
contract-address derivation so that on-disk/object identities in the
simulated chain follow the same rules as the real protocol.

Supported item types: ``bytes`` (and ``bytearray``), non-negative ``int``
(encoded big-endian, minimal length, zero as empty string), ``str``
(UTF-8), and (nested) lists/tuples of items.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

__all__ = ["rlp_encode", "rlp_decode", "RLPDecodingError"]

RLPItem = Union[bytes, bytearray, int, str, Sequence["RLPItem"]]


class RLPDecodingError(ValueError):
    """Raised when an RLP byte string is malformed."""


def _encode_length(length: int, offset: int) -> bytes:
    if length < 56:
        return bytes([offset + length])
    length_bytes = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes([offset + 55 + len(length_bytes)]) + length_bytes


def _to_binary(item: RLPItem) -> bytes:
    if isinstance(item, (bytes, bytearray)):
        return bytes(item)
    if isinstance(item, bool):
        raise TypeError("booleans are not RLP-encodable; encode an int explicitly")
    if isinstance(item, int):
        if item < 0:
            raise ValueError("RLP integers must be non-negative")
        if item == 0:
            return b""
        return item.to_bytes((item.bit_length() + 7) // 8, "big")
    if isinstance(item, str):
        return item.encode("utf-8")
    raise TypeError(f"cannot RLP-encode object of type {type(item).__name__}")


def rlp_encode(item: RLPItem) -> bytes:
    """Encode an item (bytes, int, str, or nested sequence) as RLP."""
    # Exact-type fast path for the two overwhelmingly common cases (raw bytes
    # and small lists of encodables); subclasses and other types fall through
    # to the general conversion.
    if type(item) is bytes:
        length = len(item)
        if length == 1 and item[0] < 0x80:
            return item
        if length < 56:
            return bytes((0x80 + length,)) + item
        return _encode_length(length, 0x80) + item
    if isinstance(item, (list, tuple)):
        payload = b"".join(rlp_encode(element) for element in item)
        payload_length = len(payload)
        if payload_length < 56:
            return bytes((0xC0 + payload_length,)) + payload
        return _encode_length(payload_length, 0xC0) + payload
    raw = _to_binary(item)
    if len(raw) == 1 and raw[0] < 0x80:
        return raw
    return _encode_length(len(raw), 0x80) + raw


def _decode_item(data: bytes, offset: int) -> Tuple[Union[bytes, list], int]:
    if offset >= len(data):
        raise RLPDecodingError("unexpected end of input")
    prefix = data[offset]
    if prefix < 0x80:
        return bytes([prefix]), offset + 1
    if prefix < 0xB8:
        length = prefix - 0x80
        start = offset + 1
        end = start + length
        if end > len(data):
            raise RLPDecodingError("string extends past end of input")
        payload = data[start:end]
        if length == 1 and payload[0] < 0x80:
            raise RLPDecodingError("non-canonical single byte encoding")
        return payload, end
    if prefix < 0xC0:
        length_of_length = prefix - 0xB7
        start = offset + 1
        length = int.from_bytes(data[start : start + length_of_length], "big")
        if length < 56:
            raise RLPDecodingError("non-canonical long string length")
        payload_start = start + length_of_length
        end = payload_start + length
        if end > len(data):
            raise RLPDecodingError("string extends past end of input")
        return data[payload_start:end], end
    if prefix < 0xF8:
        length = prefix - 0xC0
        return _decode_list(data, offset + 1, length)
    length_of_length = prefix - 0xF7
    start = offset + 1
    length = int.from_bytes(data[start : start + length_of_length], "big")
    if length < 56:
        raise RLPDecodingError("non-canonical long list length")
    return _decode_list(data, start + length_of_length, length)


def _decode_list(data: bytes, start: int, length: int) -> Tuple[list, int]:
    end = start + length
    if end > len(data):
        raise RLPDecodingError("list extends past end of input")
    items: List[Union[bytes, list]] = []
    cursor = start
    while cursor < end:
        item, cursor = _decode_item(data, cursor)
        if cursor > end:
            raise RLPDecodingError("list item extends past list boundary")
        items.append(item)
    return items, end


def rlp_decode(data: bytes) -> Union[bytes, list]:
    """Decode an RLP byte string into nested bytes/lists.

    Integers are returned as their big-endian byte representation (the
    caller knows the schema); trailing bytes raise ``RLPDecodingError``.
    """
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError("rlp_decode expects bytes")
    if len(data) == 0:
        raise RLPDecodingError("cannot decode empty input")
    item, end = _decode_item(bytes(data), 0)
    if end != len(data):
        raise RLPDecodingError("trailing bytes after RLP item")
    return item
