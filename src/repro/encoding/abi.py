"""Minimal Solidity ABI encoding for the types used by the paper's contracts.

The Sereth contract (Listing 1) takes ``bytes32[3]`` arguments — the FPV
(flag, previous_mark, value) tuple — so each transaction's ``input`` field
is a 4-byte selector followed by three contiguous 32-byte words.  HMS
(Algorithm 2) parses exactly that layout.  The encoder supports the static
types needed by the example contracts: ``bytes32``, fixed-size ``bytes32[N]``
arrays, ``uint256``, ``address``, and ``bool``, plus dynamic ``bytes`` for
completeness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..crypto.addresses import ADDRESS_LENGTH, Address, function_selector, is_address
from .hexutil import WORD_SIZE, bytes32_from_int, int_from_bytes32, pad_left, to_bytes32

__all__ = [
    "ABIError",
    "encode_word",
    "decode_word",
    "encode_arguments",
    "decode_arguments",
    "encode_call",
    "decode_call",
    "selector_of",
    "FunctionABI",
]


class ABIError(ValueError):
    """Raised when ABI encoding or decoding fails."""


def selector_of(signature: str) -> bytes:
    """Return the 4-byte selector for ``signature`` (e.g. ``"set(bytes32[3])"``)."""
    return function_selector(signature)


def encode_word(abi_type: str, value: object) -> bytes:
    """Encode a single static value as one or more 32-byte words."""
    if abi_type == "bytes32":
        word = to_bytes32(value)
        if isinstance(value, (bytes, bytearray)) and len(value) != WORD_SIZE:
            # bytes32 literals shorter than 32 bytes are right-padded in Solidity.
            word = bytes(value).ljust(WORD_SIZE, b"\x00")
        return word
    if abi_type in ("uint256", "uint"):
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ABIError(f"uint256 requires a non-negative int, got {value!r}")
        return bytes32_from_int(value)
    if abi_type == "address":
        if not is_address(value):
            raise ABIError("address requires 20 bytes")
        return pad_left(bytes(value))
    if abi_type == "bool":
        return bytes32_from_int(1 if value else 0)
    raise ABIError(f"unsupported ABI type: {abi_type}")


def decode_word(abi_type: str, word: bytes) -> object:
    """Decode a single 32-byte word into a Python value."""
    if len(word) != WORD_SIZE:
        raise ABIError(f"expected a 32-byte word, got {len(word)} bytes")
    if abi_type == "bytes32":
        return word
    if abi_type in ("uint256", "uint"):
        return int_from_bytes32(word)
    if abi_type == "address":
        return word[-ADDRESS_LENGTH:]
    if abi_type == "bool":
        return int_from_bytes32(word) != 0
    raise ABIError(f"unsupported ABI type: {abi_type}")


def _parse_array_type(abi_type: str) -> Tuple[str, int]:
    """Split ``"bytes32[3]"`` into (element type, length)."""
    open_bracket = abi_type.index("[")
    element_type = abi_type[:open_bracket]
    length_text = abi_type[open_bracket + 1 : -1]
    if not length_text.isdigit():
        raise ABIError(f"only fixed-size arrays are supported: {abi_type}")
    return element_type, int(length_text)


def encode_arguments(abi_types: Sequence[str], values: Sequence[object]) -> bytes:
    """Encode a flat argument list according to ``abi_types``."""
    if len(abi_types) != len(values):
        raise ABIError(f"expected {len(abi_types)} values, got {len(values)}")
    words: List[bytes] = []
    for abi_type, value in zip(abi_types, values):
        if abi_type.endswith("]"):
            element_type, length = _parse_array_type(abi_type)
            if not isinstance(value, (list, tuple)) or len(value) != length:
                raise ABIError(f"{abi_type} requires a sequence of {length} elements")
            for element in value:
                words.append(encode_word(element_type, element))
        else:
            words.append(encode_word(abi_type, value))
    return b"".join(words)


def decode_arguments(abi_types: Sequence[str], data: bytes) -> List[object]:
    """Decode calldata (without selector) according to ``abi_types``."""
    values: List[object] = []
    cursor = 0
    for abi_type in abi_types:
        if abi_type.endswith("]"):
            element_type, length = _parse_array_type(abi_type)
            elements = []
            for _ in range(length):
                word = data[cursor : cursor + WORD_SIZE]
                if len(word) != WORD_SIZE:
                    raise ABIError("calldata truncated")
                elements.append(decode_word(element_type, word))
                cursor += WORD_SIZE
            values.append(elements)
        else:
            word = data[cursor : cursor + WORD_SIZE]
            if len(word) != WORD_SIZE:
                raise ABIError("calldata truncated")
            values.append(decode_word(abi_type, word))
            cursor += WORD_SIZE
    if cursor != len(data):
        raise ABIError(f"calldata has {len(data) - cursor} unexpected trailing bytes")
    return values


@dataclass(frozen=True)
class FunctionABI:
    """Describes one contract function for encoding/decoding calls."""

    name: str
    argument_types: Tuple[str, ...]
    return_types: Tuple[str, ...] = ()
    mutates_state: bool = True

    @property
    def signature(self) -> str:
        return f"{self.name}({','.join(self.argument_types)})"

    @property
    def selector(self) -> bytes:
        return selector_of(self.signature)

    def encode_call(self, *values: object) -> bytes:
        return self.selector + encode_arguments(self.argument_types, list(values))

    def decode_arguments(self, calldata: bytes) -> List[object]:
        if calldata[:4] != self.selector:
            raise ABIError(f"calldata selector does not match {self.signature}")
        return decode_arguments(self.argument_types, calldata[4:])

    def encode_result(self, *values: object) -> bytes:
        return encode_arguments(self.return_types, list(values))

    def decode_result(self, data: bytes) -> List[object]:
        return decode_arguments(self.return_types, data)


def encode_call(signature: str, abi_types: Sequence[str], values: Sequence[object]) -> bytes:
    """Encode a full calldata blob: selector + arguments."""
    return selector_of(signature) + encode_arguments(abi_types, values)


def decode_call(abi_types: Sequence[str], calldata: bytes) -> Tuple[bytes, List[object]]:
    """Split calldata into (selector, decoded arguments)."""
    if len(calldata) < 4:
        raise ABIError("calldata shorter than a selector")
    return calldata[:4], decode_arguments(abi_types, calldata[4:])
