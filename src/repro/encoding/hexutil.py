"""Hex string helpers used throughout the chain substrate and tooling."""

from __future__ import annotations

__all__ = [
    "to_hex",
    "from_hex",
    "to_bytes32",
    "bytes32_from_int",
    "int_from_bytes32",
    "bytes32_from_text",
    "pad_left",
    "pad_right",
]

WORD_SIZE = 32


def to_hex(data: bytes) -> str:
    """Render bytes as a 0x-prefixed lowercase hex string."""
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"to_hex expects bytes, got {type(data).__name__}")
    return "0x" + bytes(data).hex()


def from_hex(text: str) -> bytes:
    """Parse a hex string, with or without the 0x prefix."""
    if not isinstance(text, str):
        raise TypeError(f"from_hex expects str, got {type(text).__name__}")
    stripped = text[2:] if text.startswith(("0x", "0X")) else text
    if len(stripped) % 2 == 1:
        stripped = "0" + stripped
    return bytes.fromhex(stripped)


def pad_left(data: bytes, size: int = WORD_SIZE) -> bytes:
    """Left-pad bytes with zeros to ``size`` bytes (numeric ABI padding)."""
    if len(data) > size:
        raise ValueError(f"value of {len(data)} bytes does not fit in {size} bytes")
    return data.rjust(size, b"\x00")


def pad_right(data: bytes, size: int = WORD_SIZE) -> bytes:
    """Right-pad bytes with zeros to ``size`` bytes (bytesN ABI padding)."""
    if len(data) > size:
        raise ValueError(f"value of {len(data)} bytes does not fit in {size} bytes")
    return data.ljust(size, b"\x00")


def to_bytes32(value: object) -> bytes:
    """Coerce a value into a 32-byte word.

    Accepts bytes (left-padded), ints (big-endian), and short ASCII strings
    (right-padded, mirroring Solidity ``bytes32`` literals).
    """
    if isinstance(value, (bytes, bytearray)):
        return pad_left(bytes(value))
    if isinstance(value, bool):
        return bytes32_from_int(int(value))
    if isinstance(value, int):
        return bytes32_from_int(value)
    if isinstance(value, str):
        return bytes32_from_text(value)
    raise TypeError(f"cannot convert {type(value).__name__} to bytes32")


def bytes32_from_int(value: int) -> bytes:
    """Encode a non-negative integer as a 32-byte big-endian word."""
    if value < 0:
        raise ValueError("bytes32 integers must be non-negative")
    if value >= 1 << 256:
        raise ValueError("integer does not fit in 256 bits")
    return value.to_bytes(WORD_SIZE, "big")


def int_from_bytes32(word: bytes) -> int:
    """Decode a 32-byte word as a big-endian unsigned integer."""
    if len(word) != WORD_SIZE:
        raise ValueError(f"expected 32 bytes, got {len(word)}")
    return int.from_bytes(word, "big")


def bytes32_from_text(text: str) -> bytes:
    """Encode a short ASCII/UTF-8 string as a right-padded bytes32."""
    raw = text.encode("utf-8")
    if len(raw) > WORD_SIZE:
        raise ValueError("string does not fit in 32 bytes")
    return pad_right(raw)
