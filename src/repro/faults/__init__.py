"""``repro.faults`` — deterministic, spec-threaded fault injection.

The chaos-testing layer: message-level gossip faults (drop, duplicate,
delay/reorder, truncate-corrupt) plus whole-peer crash/restart with state
loss, all registered in :data:`FAULT_REGISTRY`, frozen into the spec like
adversaries, and driven by per-fault RNG streams derived from the trial's
:class:`~repro.api.seeding.SeedPlan` — so a faulty run is exactly as
reproducible as a clean one, serial == parallel == resumed, byte for byte.

    spec = (
        Simulation.builder()
        .scenario("semantic_mining")
        .workload("market", num_buys=12)
        .fault("drop", rate=0.2, target="block", until=60.0)
        .fault("crash", peer="client-1", at=20.0, downtime=15.0)
        .build()
    )

With no faults configured the network's hot paths take a single dead branch
per hop, and the committed golden checksums are unchanged.
"""

from .injector import FaultInjector
from .message import (
    CorruptFault,
    DelayFault,
    DropFault,
    DuplicateFault,
    FaultEffect,
    MessageFault,
)
from .crash import CrashFault
from .registry import FAULT_REGISTRY, build_fault, register_fault

__all__ = [
    "FAULT_REGISTRY",
    "register_fault",
    "build_fault",
    "FaultInjector",
    "FaultEffect",
    "MessageFault",
    "DropFault",
    "DuplicateFault",
    "DelayFault",
    "CorruptFault",
    "CrashFault",
]
