"""Peer crash/restart with state loss.

A ``crash`` fault kills one named peer at a scheduled simulated time: the
process dies, taking chain, pool, seen-sets, and orphan buffer with it
(:meth:`repro.net.peer.Peer.restart`), and the network forgets its dedup and
sync bookkeeping for that peer so nothing "remembers" state across the death.
After ``downtime`` seconds the peer rejoins from genesis (or, under
retention, from whatever anchor window its providers still serve) and must
reconverge through the ordinary PR 6/PR 7 path: the next live block orphans
on it, which triggers a range sync from the sender.

Miners cannot be crash targets: the block-production race owns their
schedule, and a genesis-reset miner would mint blocks that fork the
single-chain model.  The engine enforces this at wiring time.
"""

from __future__ import annotations

from .registry import register_fault

__all__ = ["CrashFault"]


@register_fault("crash")
class CrashFault:
    """Kill ``peer`` at ``at`` seconds; restart it ``downtime`` later."""

    category = "peer"
    action = "crash"

    def __init__(self, peer: str, at: float, downtime: float = 10.0) -> None:
        if not peer or not isinstance(peer, str):
            raise ValueError("crash fault needs a peer id")
        if at < 0.0:
            raise ValueError("crash time cannot be negative")
        if downtime <= 0.0:
            raise ValueError("crash downtime must be positive seconds")
        self.peer = peer
        self.at = at
        self.downtime = downtime

    @property
    def restart_at(self) -> float:
        return self.at + self.downtime
