"""Message-level faults: what a flaky wire does to one gossip hop.

Every fault here is evaluated at the *send* seam of
:class:`repro.net.network.Network` — once per scheduled delivery hop, for
both direct broadcast and topology flood — and draws exclusively from its
own injector-owned RNG stream, never from the network's loss/latency RNGs.
With no faults installed the network takes a single dead branch per hop, so
the default path (and the committed golden checksums) is untouched.

The effects compose per hop: ``drop`` dominates everything; otherwise extra
delays add up, ``duplicate`` schedules a second copy, and ``corrupt`` marks
the frame as truncated in flight — the receiver fails to decode it and
discards it before any protocol handling (no dedup mark, no relay), exactly
like a devp2p frame that fails its RLP decode.  A corrupted block is healed
later by the ordinary orphan → range-sync path when the next block arrives.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from .registry import register_fault

__all__ = [
    "FaultEffect",
    "MessageFault",
    "DropFault",
    "DuplicateFault",
    "DelayFault",
    "CorruptFault",
]

_TARGETS = ("tx", "block", "both")


@dataclass
class FaultEffect:
    """The composed outcome of every message fault that fired on one hop."""

    drop: bool = False
    corrupt: bool = False
    extra_delay: float = 0.0
    duplicate_gap: Optional[float] = None
    """Schedule a second copy this many seconds after the first, or never."""

    def merge(self, other: "FaultEffect") -> "FaultEffect":
        self.drop = self.drop or other.drop
        self.corrupt = self.corrupt or other.corrupt
        self.extra_delay += other.extra_delay
        if other.duplicate_gap is not None:
            self.duplicate_gap = (
                other.duplicate_gap
                if self.duplicate_gap is None
                else max(self.duplicate_gap, other.duplicate_gap)
            )
        return self


class MessageFault:
    """Base for per-hop faults: a firing rate, a message target, a window.

    ``start``/``until`` bound the fault in simulated time — the chaos
    experiment relies on ``until`` to let the network heal: once faults
    cease, ordinary gossip plus range sync must reconverge every peer.
    """

    category = "message"
    action = "?"  # the label this fault's injections are counted under

    def __init__(
        self,
        rate: float,
        target: str = "both",
        start: float = 0.0,
        until: Optional[float] = None,
    ) -> None:
        if not 0.0 < rate <= 1.0:
            raise ValueError("fault rate must be in (0, 1]")
        if target not in _TARGETS:
            raise ValueError(f"fault target must be one of {_TARGETS}, got {target!r}")
        if start < 0.0:
            raise ValueError("fault start cannot be negative")
        if until is not None and until <= start:
            raise ValueError("fault window must end after it starts")
        self.rate = rate
        self.target = target
        self.start = start
        self.until = until

    def applies_to(self, message_kind: str) -> bool:
        return self.target == "both" or self.target == message_kind

    def active_at(self, now: float) -> bool:
        return now >= self.start and (self.until is None or now < self.until)

    def decide(
        self, rng: random.Random, now: float, message_kind: str
    ) -> Optional[FaultEffect]:
        """One independent draw per matching hop; ``None`` means no injection.

        Every active fault draws from its *own* stream regardless of what
        other faults decided, so the per-fault decision sequences — and
        therefore the whole fault trace — depend only on the spec.
        """
        if not self.applies_to(message_kind) or not self.active_at(now):
            return None
        if rng.random() >= self.rate:
            return None
        return self.effect(rng)

    def effect(self, rng: random.Random) -> FaultEffect:  # pragma: no cover
        raise NotImplementedError


@register_fault("drop")
class DropFault(MessageFault):
    """Lose the message on this hop (the paper's "transactions sent may be
    lost due to network failures"), accounted separately from the legacy
    loss-rate model so fault traces stay attributable."""

    action = "drop"

    def effect(self, rng: random.Random) -> FaultEffect:
        return FaultEffect(drop=True)


@register_fault("duplicate")
class DuplicateFault(MessageFault):
    """Deliver the message twice: the second copy lands ``spread``-jittered
    later and must be shrugged off by pool/chain dedup."""

    action = "duplicate"

    def __init__(
        self,
        rate: float,
        target: str = "both",
        start: float = 0.0,
        until: Optional[float] = None,
        spread: float = 0.5,
    ) -> None:
        super().__init__(rate, target=target, start=start, until=until)
        if spread <= 0.0:
            raise ValueError("duplicate spread must be positive seconds")
        self.spread = spread

    def effect(self, rng: random.Random) -> FaultEffect:
        return FaultEffect(duplicate_gap=rng.uniform(0.0, self.spread))


@register_fault("delay")
class DelayFault(MessageFault):
    """Hold the message back ``extra`` (+ jitter) seconds — enough to reorder
    it behind messages sent later down faster links."""

    action = "delay"

    def __init__(
        self,
        rate: float,
        target: str = "both",
        start: float = 0.0,
        until: Optional[float] = None,
        extra: float = 0.5,
        jitter: float = 0.5,
    ) -> None:
        super().__init__(rate, target=target, start=start, until=until)
        if extra < 0.0 or jitter < 0.0:
            raise ValueError("delay extra/jitter cannot be negative")
        if extra == 0.0 and jitter == 0.0:
            raise ValueError("delay fault needs a positive extra or jitter")
        self.extra = extra
        self.jitter = jitter

    def effect(self, rng: random.Random) -> FaultEffect:
        jitter = rng.uniform(0.0, self.jitter) if self.jitter else 0.0
        return FaultEffect(extra_delay=self.extra + jitter)


@register_fault("corrupt")
class CorruptFault(MessageFault):
    """Truncate the frame in flight: it still crosses the wire (bytes are
    accounted) but the receiver rejects it at decode and processes nothing."""

    action = "corrupt"

    def effect(self, rng: random.Random) -> FaultEffect:
        return FaultEffect(corrupt=True)
