"""The fault injector: spec-frozen faults bound to deterministic RNG streams.

One injector serves one trial.  It is built from the spec's frozen
``(name, params)`` fault entries plus the trial's :class:`SeedPlan`; every
fault gets its own ``random.Random`` seeded from
``seeds.derived("faults", index, name)``, so fault decisions are a pure
function of the spec — byte-identical whether the trial runs serially, in a
sweep worker, or resumed from a checkpoint — and adding or removing one
fault entry reshuffles exactly that entry's stream and nothing else.

Every injection is counted by fault kind, appended to a bounded in-order
trace, and emitted as a ``fault.*`` event through :mod:`repro.obs` when a
tracer is active; the engine also registers the counters as a per-trial
``faults`` probe.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from ..obs import runtime as _obs
from .message import FaultEffect, MessageFault
from .registry import build_fault

__all__ = ["FaultInjector"]

MAX_TRACE_ENTRIES = 65_536
"""Bound the in-memory fault trace like the other long-horizon bookkeeping:
counters stay exact for the whole run; the replayable trace keeps the newest
entries."""


class FaultInjector:
    """Applies a spec's faults at the network seams, deterministically."""

    def __init__(self, faults: Sequence[Tuple[str, object, random.Random]]) -> None:
        # Entries are (registered name, constructed fault, its own RNG).
        self._message_faults: List[Tuple[str, MessageFault, random.Random]] = []
        self._peer_faults: List[Tuple[str, object]] = []
        for name, fault, rng in faults:
            if getattr(fault, "category", None) == "message":
                self._message_faults.append((name, fault, rng))
            else:
                self._peer_faults.append((name, fault))
        self.counts: Dict[str, int] = {}
        self.trace: Deque[Tuple[float, str, str, str, Optional[str], Optional[str]]] = (
            deque(maxlen=MAX_TRACE_ENTRIES)
        )
        """In-order injections: (time, fault name, action, message kind or
        peer id, sender, receiver)."""
        self.injections = 0
        self.protected_block_peers: frozenset = frozenset()
        # The union of the message faults' [start, until) windows.  The
        # network checks these two floats inline before calling the seam at
        # all, so a hop outside every window — dormant faults, or a healed
        # network after ``until`` — costs two comparisons, not a call chain.
        # Skipping the call is draw-free by construction: an inactive fault
        # never touches its RNG, so the decision streams are byte-identical.
        starts = [fault.start for _, fault, _ in self._message_faults]
        untils = [fault.until for _, fault, _ in self._message_faults]
        self.window_start = min(starts) if starts else float("inf")
        self.window_until = (
            float("inf")
            if any(until is None for until in untils)
            else max(untils)
        ) if untils else float("-inf")

    @classmethod
    def from_spec(cls, entries, seeds) -> "FaultInjector":
        """Build from frozen spec entries under ``seeds`` (a SeedPlan)."""
        faults = []
        for index, (name, params) in enumerate(entries):
            fault = build_fault(name, dict(params))
            rng = random.Random(seeds.derived("faults", index, name))
            faults.append((name, fault, rng))
        return cls(faults)

    @property
    def has_message_faults(self) -> bool:
        return bool(self._message_faults)

    def protect_block_peers(self, peer_ids) -> None:
        """Exempt ``peer_ids``, as receivers, from block-message faults.

        The chain model is append-only — there is no reorg — so a miner that
        misses (or late-imports) another miner's block mines a divergent
        lineage that can never heal.  Crash faults already refuse miner
        targets for exactly this reason; the engine routes the miner set
        here so drop/corrupt/delay never touch miner-bound block deliveries.
        Transaction faults still apply to miners: a pool cannot fork the
        chain.
        """
        self.protected_block_peers = frozenset(peer_ids)

    # -- message seam -------------------------------------------------------------

    def on_message(
        self, message_kind: str, sender_id: str, receiver_id: str, now: float
    ) -> Optional[FaultEffect]:
        """Decide what happens to one gossip hop; ``None`` = deliver clean.

        Every active fault draws from its own stream on every matching hop
        (independent of what the others decided), so per-fault decision
        sequences — and the whole trace — depend only on the spec.
        """
        if now < self.window_start or now >= self.window_until:
            return None
        if message_kind == "block" and receiver_id in self.protected_block_peers:
            return None
        effect: Optional[FaultEffect] = None
        for name, fault, rng in self._message_faults:
            decision = fault.decide(rng, now, message_kind)
            if decision is None:
                continue
            effect = decision if effect is None else effect.merge(decision)
            self._record(now, name, fault.action, message_kind, sender_id, receiver_id)
        return effect

    # -- peer faults --------------------------------------------------------------

    def schedule_peer_faults(self, simulator, network, miner_ids) -> None:
        """Schedule crash/restart events on the simulator.

        Validates targets eagerly: the peer must exist on the network and
        must not be a miner (a genesis-reset miner would fork the
        single-chain model — see :mod:`repro.faults.crash`).
        """
        for name, fault in self._peer_faults:
            peer_id = fault.peer
            if network._peers.get(peer_id) is None:
                raise ValueError(
                    f"fault {name!r} targets unknown peer {peer_id!r}; "
                    f"known: {sorted(network._peers)}"
                )
            if peer_id in miner_ids:
                raise ValueError(
                    f"fault {name!r} cannot crash miner {peer_id!r}: miners own "
                    "the block-production schedule"
                )
            simulator.schedule_at(
                fault.at,
                lambda name=name, fault=fault: self._crash(network, name, fault),
            )
            simulator.schedule_at(
                fault.restart_at,
                lambda name=name, fault=fault: self._restart(network, name, fault),
            )

    def _crash(self, network, name: str, fault) -> None:
        network.crash_peer(fault.peer)
        self._record(network.simulator.now, name, "crash", fault.peer, None, None)
        tracer = _obs.TRACER
        if tracer is not None:
            tracer.event("fault.crash", peer=fault.peer, fault=name)

    def _restart(self, network, name: str, fault) -> None:
        network.restart_peer(fault.peer)
        self._record(network.simulator.now, name, "restart", fault.peer, None, None)
        tracer = _obs.TRACER
        if tracer is not None:
            tracer.event("fault.restart", peer=fault.peer, fault=name)

    # -- accounting ---------------------------------------------------------------

    def _record(
        self,
        now: float,
        name: str,
        action: str,
        subject: str,
        sender_id: Optional[str],
        receiver_id: Optional[str],
    ) -> None:
        self.injections += 1
        self.counts[action] = self.counts.get(action, 0) + 1
        self.trace.append((now, name, action, subject, sender_id, receiver_id))
        if action in ("crash", "restart"):
            return  # crash/restart emit their own richer events
        tracer = _obs.TRACER
        if tracer is not None:
            tracer.event(
                "fault.inject",
                fault=name,
                action=action,
                message=subject,
                sender=sender_id,
                receiver=receiver_id,
            )

    def stats_dict(self) -> Dict[str, int]:
        """Injection counters by kind, flat and sorted — the ``faults`` probe."""
        stats = {f"injected_{action}": count for action, count in self.counts.items()}
        stats["injections"] = self.injections
        return dict(sorted(stats.items()))

    def trace_rows(self) -> List[Dict[str, Any]]:
        """The fault trace as JSON-ready rows (newest ``MAX_TRACE_ENTRIES``)."""
        return [
            {
                "time": now,
                "fault": name,
                "action": action,
                "subject": subject,
                "sender": sender_id,
                "receiver": receiver_id,
            }
            for now, name, action, subject, sender_id, receiver_id in self.trace
        ]

    def summary(self) -> Dict[str, Any]:
        """The JSON-ready digest the engine puts under ``extras["faults"]``."""
        return self.stats_dict()
