"""The fault registry: pluggable, decorator-registered fault kinds.

Faults follow the same pluggable-feature idiom as workloads, scenarios, and
adversaries: a fault class registers itself once under a short name and every
consumer — the builder (eager parameter validation), the engine (injector
construction), the CLI listing — resolves it by that name.  A spec carries
faults as frozen ``(name, params)`` entries exactly like its adversaries, so
fault grids sweep like any other spec dimension.

Two categories exist:

* ``"message"`` faults act per gossip hop at the network send seam (drop,
  duplicate, delay/reorder, truncate-corrupt); see :mod:`repro.faults.message`.
* ``"peer"`` faults act on whole nodes over simulated time (crash with state
  loss, then restart); see :mod:`repro.faults.crash`.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..registry import Registry

__all__ = ["FAULT_REGISTRY", "register_fault", "build_fault"]

FAULT_REGISTRY: Registry = Registry("fault")


def register_fault(name: str):
    """Class decorator registering a fault kind under ``name``."""
    return FAULT_REGISTRY.register(name)


def build_fault(name: str, params: Dict[str, Any] | Tuple[Tuple[str, Any], ...]):
    """Resolve ``name`` and construct the fault with ``params``.

    Raises ``RegistryError`` for unknown names and whatever the fault's own
    constructor raises for bad parameters — the builder turns both into a
    ``BuildError`` at build time, long before a sweep cell runs.
    """
    fault_class = FAULT_REGISTRY.get(name)
    if not isinstance(params, dict):
        params = dict(params)
    return fault_class(**params)
