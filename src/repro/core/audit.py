"""Chain auditing: check a committed history against the paper's correctness notions.

Section IV argues HMS under sequential consistency; the related-work section
points at Selective Strict Serialization (SSS) — "some transactions are
strictly serialized and others are not, but are marked to the serialized
history" — as the correctness condition that matches how HMS treats the
market workload: the ``set`` operations form a strictly serialized chain of
marks, while ``buy`` operations are only *bound* to a position in that chain
by the mark they carry.

The :class:`ChainAuditor` replays a committed chain and checks exactly that:

* per-sender nonce order is respected in every block (sequential consistency
  of each client's program order);
* every successful ``set`` extends the mark chain (its ``previous_mark`` is
  the mark in force at its position) and every failed one does not;
* every successful ``buy`` carries the mark and value in force at its
  position — i.e. it is correctly marked to the serialized history;
* the mark chain recorded on-chain is collision-free (no mark repeats).

The auditor is used by tests and examples as an independent oracle for the
experiment results: whatever the miner policy did, the committed history must
satisfy these invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..chain.block import Block
from ..chain.chain import Blockchain
from ..chain.transaction import Transaction
from ..crypto.addresses import Address
from ..encoding.hexutil import WORD_SIZE
from .hms.fpv import FPV, compute_mark, fpv_from_calldata

__all__ = ["AuditViolation", "AuditReport", "ChainAuditor"]


@dataclass(frozen=True)
class AuditViolation:
    """A single invariant violation found while auditing a chain."""

    kind: str
    block_number: int
    transaction_hash: bytes
    description: str


@dataclass
class AuditReport:
    """Outcome of one audit pass."""

    blocks_audited: int = 0
    sets_checked: int = 0
    buys_checked: int = 0
    successful_sets: int = 0
    successful_buys: int = 0
    violations: List[AuditViolation] = field(default_factory=list)
    mark_chain: List[bytes] = field(default_factory=list)
    """Every mark the contract's storage variable took on, in commit order."""

    @property
    def is_clean(self) -> bool:
        return not self.violations

    def violations_of_kind(self, kind: str) -> List[AuditViolation]:
        return [violation for violation in self.violations if violation.kind == kind]


class ChainAuditor:
    """Audits a committed chain for HMS / SSS invariants on one contract."""

    def __init__(
        self,
        contract_address: Address,
        set_selector: bytes,
        buy_selector: Optional[bytes] = None,
        initial_mark: Optional[bytes] = None,
        initial_value: bytes = b"\x00" * WORD_SIZE,
    ) -> None:
        self.contract_address = contract_address
        self.set_selector = set_selector
        self.buy_selector = buy_selector
        self.initial_mark = initial_mark
        self.initial_value = initial_value

    # -- entry points ----------------------------------------------------------------

    def audit_chain(self, chain: Blockchain) -> AuditReport:
        """Audit every block of ``chain`` from genesis to head."""
        report = AuditReport()
        current_mark = self.initial_mark
        current_value = self.initial_value
        if current_mark is not None:
            report.mark_chain.append(current_mark)
        expected_nonces: Dict[Address, int] = {}
        for number in range(1, chain.height + 1):
            block = chain.block_by_number(number)
            current_mark, current_value = self._audit_block(
                block, report, current_mark, current_value, expected_nonces
            )
        return report

    # -- internals --------------------------------------------------------------------

    def _audit_block(
        self,
        block: Block,
        report: AuditReport,
        current_mark: Optional[bytes],
        current_value: bytes,
        expected_nonces: Dict[Address, int],
    ) -> Tuple[Optional[bytes], bytes]:
        report.blocks_audited += 1
        for transaction, receipt in zip(block.transactions, block.receipts):
            # Sequential consistency: nonces from one sender never go backwards
            # or skip within the committed history.
            previous_nonce = expected_nonces.get(transaction.sender)
            if previous_nonce is not None and transaction.nonce < previous_nonce:
                report.violations.append(
                    AuditViolation(
                        kind="nonce_order",
                        block_number=block.number,
                        transaction_hash=transaction.hash,
                        description=(
                            f"nonce {transaction.nonce} after {previous_nonce} from the same sender"
                        ),
                    )
                )
            expected_nonces[transaction.sender] = max(
                transaction.nonce + 1, expected_nonces.get(transaction.sender, 0)
            )

            if transaction.to != self.contract_address:
                continue
            fpv = self._try_fpv(transaction)
            if fpv is None:
                continue
            if transaction.selector == self.set_selector:
                current_mark, current_value = self._audit_set(
                    block, transaction, receipt.success, fpv, report, current_mark, current_value
                )
            elif self.buy_selector is not None and transaction.selector == self.buy_selector:
                self._audit_buy(
                    block, transaction, receipt.success, fpv, report, current_mark, current_value
                )
        return current_mark, current_value

    @staticmethod
    def _try_fpv(transaction: Transaction) -> Optional[FPV]:
        try:
            return fpv_from_calldata(transaction.data)
        except ValueError:
            return None

    def _audit_set(
        self,
        block: Block,
        transaction: Transaction,
        success: bool,
        fpv: FPV,
        report: AuditReport,
        current_mark: Optional[bytes],
        current_value: bytes,
    ) -> Tuple[Optional[bytes], bytes]:
        report.sets_checked += 1
        matches_chain = current_mark is None or fpv.previous_mark == current_mark
        if success:
            report.successful_sets += 1
            if not matches_chain:
                report.violations.append(
                    AuditViolation(
                        kind="set_broke_chain",
                        block_number=block.number,
                        transaction_hash=transaction.hash,
                        description="a successful set did not reference the mark in force",
                    )
                )
            new_mark = compute_mark(fpv.previous_mark, fpv.value)
            if new_mark in report.mark_chain:
                report.violations.append(
                    AuditViolation(
                        kind="mark_collision",
                        block_number=block.number,
                        transaction_hash=transaction.hash,
                        description="the same mark appeared twice in the committed chain",
                    )
                )
            report.mark_chain.append(new_mark)
            return new_mark, fpv.value
        if matches_chain and current_mark is not None:
            report.violations.append(
                AuditViolation(
                    kind="set_wrongly_failed",
                    block_number=block.number,
                    transaction_hash=transaction.hash,
                    description="a set referencing the mark in force was recorded as failed",
                )
            )
        return current_mark, current_value

    def _audit_buy(
        self,
        block: Block,
        transaction: Transaction,
        success: bool,
        fpv: FPV,
        report: AuditReport,
        current_mark: Optional[bytes],
        current_value: bytes,
    ) -> None:
        report.buys_checked += 1
        correctly_marked = (
            current_mark is not None
            and fpv.previous_mark == current_mark
            and fpv.value == current_value
        )
        if success:
            report.successful_buys += 1
            if not correctly_marked:
                report.violations.append(
                    AuditViolation(
                        kind="buy_wrongly_succeeded",
                        block_number=block.number,
                        transaction_hash=transaction.hash,
                        description=(
                            "a successful buy did not carry the mark and value in force "
                            "at its position (lost-update protection breached)"
                        ),
                    )
                )
        elif correctly_marked:
            report.violations.append(
                AuditViolation(
                    kind="buy_wrongly_failed",
                    block_number=block.number,
                    transaction_hash=transaction.hash,
                    description="a correctly marked buy was recorded as failed",
                )
            )
