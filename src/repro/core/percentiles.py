"""The one percentile helper behind every p50/p95 surface in the repo.

Two call sites grew their own (different!) percentile formulas — the
metrics reservoir's nearest-rank and ``propagation_summary``'s
nearest-index — and both now feed frozen golden checksums, so neither can
be "fixed" to match the other.  This module hoists the arithmetic into one
place and makes the choice explicit via ``method``:

* ``"nearest_rank"`` — the classic nearest-rank definition: the smallest
  sample with at least ``fraction`` of the distribution at or below it,
  ``sorted[ceil(f·n) - 1]``.  Used by the metrics reservoir.
* ``"nearest_index"`` — the index-interpolation-free variant
  ``sorted[round(f·(n-1))]``.  Used by propagation summaries.

The two disagree whenever rounding lands them on different samples (e.g.
n=4, f=0.5 picks index 1 vs index 2); the unit tests pin both down.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

__all__ = ["percentile"]

_METHODS = ("nearest_rank", "nearest_index")


def percentile(
    samples: Sequence[float],
    fraction: float,
    *,
    method: str = "nearest_rank",
    presorted: bool = False,
) -> Optional[float]:
    """The ``fraction`` percentile of ``samples``, or ``None`` if empty.

    ``fraction`` is in [0, 1] (0.95 = p95).  Pass ``presorted=True`` when
    the caller already holds sorted samples to skip the defensive sort.
    """
    if method not in _METHODS:
        raise ValueError(f"unknown percentile method {method!r}; expected one of {_METHODS}")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")
    if not samples:
        return None
    ordered: Sequence[float] = samples if presorted else sorted(samples)
    n = len(ordered)
    if method == "nearest_rank":
        index = max(int(math.ceil(fraction * n)) - 1, 0)
    else:
        index = round(fraction * (n - 1))
    return ordered[min(index, n - 1)]
