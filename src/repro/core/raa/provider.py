"""Runtime Argument Augmentation providers (Section III-D, Figure 1).

An RAA provider is the ``sereth.go`` data service of Figure 1: when the
interpreter evaluates a pure/view function whose arguments are declared
augmentable, it asks the peer's provider for data and writes it into the
formal arguments before the function body runs.  The provider shipped here
answers with the Hash-Mark-Set view of the peer's own TxPool, which is what
turns Sereth's ``mark``/``get`` calls into a READ-UNCOMMITTED read of the
managed storage variable.

Providers are attached per peer (a property of the client software, not of
the contract); a peer running the unmodified client simply has none, and the
caller's arguments come back unchanged — the interoperability behaviour the
paper demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ...chain.state import WorldState
from ...chain.transaction import Transaction
from ...crypto.addresses import Address
from ...encoding.hexutil import bytes32_from_int
from ...evm.raa_interface import RAARequest
from ..hms.fpv import AMV
from ..hms.hash_mark_set import HashMarkSet, HMSView
from ..hms.process import HMSConfig

__all__ = ["SerethStorageLayout", "HMSRAAProvider", "StaticRAAProvider", "RAAProviderRegistry"]

PoolSupplier = Callable[[], Iterable[Tuple[Transaction, float]]]
StateSupplier = Callable[[], WorldState]


@dataclass(frozen=True)
class SerethStorageLayout:
    """Where the watched contract keeps its AMV tuple in storage."""

    address_slot: int = 0
    mark_slot: int = 1
    value_slot: int = 2


class HMSRAAProvider:
    """Answers RAA requests with the HMS view of the local pending pool."""

    def __init__(
        self,
        config: HMSConfig,
        pool_supplier: PoolSupplier,
        state_supplier: StateSupplier,
        layout: Optional[SerethStorageLayout] = None,
    ) -> None:
        self.config = config
        self.pool_supplier = pool_supplier
        self.state_supplier = state_supplier
        self.layout = layout or SerethStorageLayout()
        self.hms = HashMarkSet(config)
        self.requests_served = 0

    # -- view computation -----------------------------------------------------------

    def committed_amv(self) -> AMV:
        """Read the committed AMV straight from the contract's storage slots."""
        state = self.state_supplier()
        contract = self.config.contract_address
        return AMV(
            address=state.get_storage(contract, bytes32_from_int(self.layout.address_slot)),
            mark=state.get_storage(contract, bytes32_from_int(self.layout.mark_slot)),
            value=state.get_storage(contract, bytes32_from_int(self.layout.value_slot)),
        )

    def view(self) -> HMSView:
        """The current READ-UNCOMMITTED view (pool series, else committed state)."""
        return self.hms.read_uncommitted(self.pool_supplier(), committed=self.committed_amv())

    # -- RAAProviderProtocol -----------------------------------------------------------

    def provide(self, request: RAARequest) -> Optional[Sequence[object]]:
        """Fill each augmentable argument with the AMV words of the HMS view."""
        if request.contract_address != self.config.contract_address:
            return None
        self.requests_served += 1
        view = self.view()
        amv_words = view.amv.words()
        augmented = list(request.arguments)
        for index in request.augmentable_indices:
            if index < 0 or index >= len(augmented):
                continue
            augmented[index] = amv_words
        return augmented


class StaticRAAProvider:
    """A provider that always supplies a fixed argument payload.

    Useful for tests and as the minimal example of RAA's broader "lightweight
    oracle replacement" use case (e.g. injecting an exchange rate).
    """

    def __init__(self, payload: Sequence[object], contract_address: Optional[Address] = None) -> None:
        self.payload = list(payload)
        self.contract_address = contract_address
        self.requests_served = 0

    def provide(self, request: RAARequest) -> Optional[Sequence[object]]:
        if self.contract_address is not None and request.contract_address != self.contract_address:
            return None
        self.requests_served += 1
        augmented = list(request.arguments)
        for index in request.augmentable_indices:
            if index < len(augmented):
                augmented[index] = self.payload
        return augmented


class RAAProviderRegistry:
    """Routes RAA requests to per-contract providers.

    A peer can serve several RAA-equipped contracts at once (e.g. Sereth and
    the ticket sale); the registry dispatches on the contract address and
    declines anything unknown.
    """

    def __init__(self) -> None:
        self._providers: Dict[Address, object] = {}
        self._fallback: Optional[object] = None

    def register(self, contract_address: Address, provider: object) -> None:
        self._providers[contract_address] = provider

    def set_fallback(self, provider: Optional[object]) -> None:
        self._fallback = provider

    def provide(self, request: RAARequest) -> Optional[Sequence[object]]:
        provider = self._providers.get(request.contract_address, self._fallback)
        if provider is None:
            return None
        return provider.provide(request)
