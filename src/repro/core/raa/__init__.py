"""Runtime Argument Augmentation: providers and the provider registry."""

from .provider import (
    HMSRAAProvider,
    RAAProviderRegistry,
    SerethStorageLayout,
    StaticRAAProvider,
)

__all__ = [
    "HMSRAAProvider",
    "RAAProviderRegistry",
    "SerethStorageLayout",
    "StaticRAAProvider",
]
