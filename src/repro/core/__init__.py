"""The paper's contributions: Hash-Mark-Set, Runtime Argument Augmentation, metrics."""

from .audit import AuditReport, AuditViolation, ChainAuditor
from .hms import (
    AMV,
    FPV,
    HEAD_FLAG,
    SUCCESS_FLAG,
    HashMarkSet,
    HMSConfig,
    HMSView,
    SemanticMiningConfig,
    SemanticMiningPolicy,
    Series,
    build_series,
    compute_mark,
)
from .metrics import MetricsCollector, ThroughputReport, TransactionRecord, transaction_efficiency
from .percentiles import percentile
from .raa import HMSRAAProvider, RAAProviderRegistry, SerethStorageLayout, StaticRAAProvider

__all__ = [
    "AuditReport",
    "AuditViolation",
    "ChainAuditor",
    "AMV",
    "FPV",
    "HEAD_FLAG",
    "SUCCESS_FLAG",
    "HashMarkSet",
    "HMSConfig",
    "HMSView",
    "SemanticMiningConfig",
    "SemanticMiningPolicy",
    "Series",
    "build_series",
    "compute_mark",
    "MetricsCollector",
    "ThroughputReport",
    "TransactionRecord",
    "transaction_efficiency",
    "percentile",
    "HMSRAAProvider",
    "RAAProviderRegistry",
    "SerethStorageLayout",
    "StaticRAAProvider",
]
