"""Semantic mining (Section V-C): an HMS-aware block ordering policy.

A semantic miner knows the dependency structure HMS extracts from the pool
and uses its "miner privilege" to commit the whole series in order, placing
each dependent ``buy`` immediately after the ``set`` whose mark it
references.  Buys that reference the still-committed mark are placed before
the first pending set; transactions HMS knows nothing about are appended in
fee/arrival order.  Per-sender nonce order is preserved by construction
because the final order is produced by the same head-of-queue merge the
baseline policies use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...chain.state import WorldState
from ...chain.transaction import Transaction
from ...crypto.addresses import Address
from ...encoding.hexutil import bytes32_from_int
from ...txpool.pool import PoolEntry
from ...consensus.policies import merge_sender_queues
from .fpv import fpv_from_calldata
from .hash_mark_set import HashMarkSet
from .process import HMSConfig

__all__ = ["SemanticMiningConfig", "SemanticMiningPolicy"]

# Ordering groups (first element of the per-transaction sort key).
_GROUP_BUY_OF_COMMITTED = 0
_GROUP_SERIES = 1
_GROUP_UNMATCHED_SERETH = 2
_GROUP_OTHER = 3


@dataclass(frozen=True)
class SemanticMiningConfig:
    """What the semantic miner needs to know about the watched contract."""

    hms: HMSConfig
    buy_selectors: Tuple[bytes, ...] = ()
    mark_storage_slot: int = 1
    """Storage slot holding the contract's current mark (Sereth's ``p[1]``)."""


class SemanticMiningPolicy:
    """Order the block so that the HMS series and its dependents succeed."""

    name = "semantic_hms"

    def __init__(self, config: SemanticMiningConfig) -> None:
        self.config = config
        self._hms = HashMarkSet(config.hms)

    # -- OrderingPolicy interface --------------------------------------------------

    def order(
        self,
        executable: Dict[Address, List[PoolEntry]],
        state: WorldState,
        timestamp: float,
    ) -> List[Transaction]:
        entries = [entry for queue in executable.values() for entry in queue]
        keys = self._assign_keys(entries, state)

        def head_key(entry: PoolEntry) -> tuple:
            return keys[entry.hash]

        return merge_sender_queues(executable, head_key=head_key)

    # -- key assignment ---------------------------------------------------------------

    def _assign_keys(
        self, entries: Sequence[PoolEntry], state: WorldState
    ) -> Dict[bytes, tuple]:
        """Compute the (group, series position, arrival) sort key for each entry."""
        series = self._hms.serialize(
            (entry.transaction, entry.arrival_time) for entry in entries
        )
        series_position: Dict[bytes, int] = {
            node.transaction.hash: index for index, node in enumerate(series.nodes)
        }
        mark_position: Dict[bytes, int] = {
            node.mark: index for index, node in enumerate(series.nodes)
        }
        committed_mark = state.get_storage(
            self.config.hms.contract_address,
            bytes32_from_int(self.config.mark_storage_slot),
        )

        keys: Dict[bytes, tuple] = {}
        for entry in entries:
            transaction = entry.transaction
            if transaction.hash in series_position:
                position = series_position[transaction.hash]
                keys[transaction.hash] = (_GROUP_SERIES, position, 0, entry.arrival_time)
                continue
            if self._is_buy(transaction):
                referenced_mark = self._buy_mark(transaction)
                if referenced_mark == committed_mark:
                    keys[transaction.hash] = (_GROUP_BUY_OF_COMMITTED, 0, 0, entry.arrival_time)
                elif referenced_mark is not None and referenced_mark in mark_position:
                    position = mark_position[referenced_mark]
                    # Dependent buys sort just after their set (same position,
                    # higher minor index).
                    keys[transaction.hash] = (_GROUP_SERIES, position, 1, entry.arrival_time)
                else:
                    keys[transaction.hash] = (
                        _GROUP_UNMATCHED_SERETH, 0, 0, entry.arrival_time,
                    )
                continue
            if self.config.hms.matches(transaction):
                # A set that did not make the longest branch (orphaned fork).
                keys[transaction.hash] = (_GROUP_UNMATCHED_SERETH, 0, 0, entry.arrival_time)
                continue
            keys[transaction.hash] = (
                _GROUP_OTHER,
                -transaction.gas_price,
                0,
                entry.arrival_time,
            )
        return keys

    # -- helpers ---------------------------------------------------------------------

    def _is_buy(self, transaction: Transaction) -> bool:
        return (
            transaction.to == self.config.hms.contract_address
            and transaction.selector in self.config.buy_selectors
        )

    def _buy_mark(self, transaction: Transaction) -> Optional[bytes]:
        """The mark a buy's offer references (offer[1]), or None if malformed."""
        try:
            offer = fpv_from_calldata(transaction.data)
        except ValueError:
            return None
        return offer.previous_mark
