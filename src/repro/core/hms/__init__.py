"""Hash-Mark-Set: the paper's core algorithm (Algorithms 1-3) and semantic mining."""

from .fpv import (
    AMV,
    BUY_FLAG,
    EMPTY_POOL_SENTINEL,
    FPV,
    HEAD_FLAG,
    SUCCESS_FLAG,
    compute_mark,
    fpv_from_calldata,
    fpv_to_words,
)
from .hash_mark_set import HashMarkSet, HMSView
from .node import TxNode
from .process import HMSConfig, process_transactions
from .semantic import SemanticMiningConfig, SemanticMiningPolicy
from .series import (
    Series,
    build_series,
    deepest_branch_iterative,
    deepest_branch_recursive,
)

__all__ = [
    "AMV",
    "BUY_FLAG",
    "EMPTY_POOL_SENTINEL",
    "FPV",
    "HEAD_FLAG",
    "SUCCESS_FLAG",
    "compute_mark",
    "fpv_from_calldata",
    "fpv_to_words",
    "HashMarkSet",
    "HMSView",
    "TxNode",
    "HMSConfig",
    "process_transactions",
    "SemanticMiningConfig",
    "SemanticMiningPolicy",
    "Series",
    "build_series",
    "deepest_branch_iterative",
    "deepest_branch_recursive",
]
