"""FPV / AMV tuples and mark arithmetic (Section III-C of the paper).

Every Sereth transaction carries three 32-byte words in its calldata — the
**FPV**: ``flag``, ``previous_mark``, ``value``.  The HMS algorithm derives
from it the transaction's **AMV** — ``address``, ``mark``, ``value`` — where

    mark = Keccak256(previous_mark, value)

so that a chain of ``set`` transactions forms a hash-linked series: a
transaction whose ``previous_mark`` equals another transaction's ``mark`` is
its successor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ...chain.transaction import Transaction
from ...crypto.addresses import Address
from ...crypto.keccak import keccak256
from ...encoding.hexutil import WORD_SIZE, to_bytes32

__all__ = [
    "FPV",
    "AMV",
    "HEAD_FLAG",
    "SUCCESS_FLAG",
    "BUY_FLAG",
    "EMPTY_POOL_SENTINEL",
    "compute_mark",
    "fpv_from_calldata",
    "fpv_to_words",
]

# Flag words (FPV[0]).  The exact byte values are a protocol convention shared
# by the Sereth clients and the HMS filter (Algorithm 2's SUCCESS check); only
# equality matters.
HEAD_FLAG: bytes = keccak256(b"sereth/flag/head")
"""Marks a transaction as a *head candidate*: the sender saw no pending Sereth
transactions and chained its mark from the committed contract storage."""

SUCCESS_FLAG: bytes = keccak256(b"sereth/flag/successor")
"""Marks a transaction as a successor to the tail of the pending series at the
time it was submitted."""

BUY_FLAG: bytes = keccak256(b"sereth/flag/buy")
"""Used in buy offers; buys are not part of the series DAG (Algorithm 2 only
collects ``set`` transactions) but carrying a distinct flag keeps traces
readable."""

EMPTY_POOL_SENTINEL: bytes = keccak256(b"sereth/raa/empty-pool")
"""Algorithm 1 line 5's ``specialValue``: returned through RAA when no pending
Sereth transaction exists, telling the caller to rely on committed state."""


def compute_mark(previous_mark: bytes, value: bytes) -> bytes:
    """``mark = Keccak256(previous_mark, value)`` — the series link function."""
    return keccak256(to_bytes32(previous_mark), to_bytes32(value))


@dataclass(frozen=True)
class FPV:
    """The (flag, previous_mark, value) words found in Sereth calldata."""

    flag: bytes
    previous_mark: bytes
    value: bytes

    def __post_init__(self) -> None:
        for name in ("flag", "previous_mark", "value"):
            word = getattr(self, name)
            if not isinstance(word, (bytes, bytearray)) or len(word) != WORD_SIZE:
                raise ValueError(f"FPV field {name} must be exactly 32 bytes")

    @property
    def mark(self) -> bytes:
        """The mark this transaction will install if it succeeds."""
        return compute_mark(self.previous_mark, self.value)

    @property
    def is_head_candidate(self) -> bool:
        return self.flag == HEAD_FLAG

    @property
    def is_successor(self) -> bool:
        return self.flag == SUCCESS_FLAG

    @property
    def is_series_member(self) -> bool:
        """Algorithm 2's SUCCESS predicate: head candidate or marked successor."""
        return self.is_head_candidate or self.is_successor

    def words(self) -> List[bytes]:
        return [self.flag, self.previous_mark, self.value]


@dataclass(frozen=True)
class AMV:
    """The (address, mark, value) view of a transaction or of contract storage."""

    address: bytes
    mark: bytes
    value: bytes

    def words(self) -> List[bytes]:
        return [to_bytes32(self.address), self.mark, self.value]


def fpv_from_calldata(calldata: bytes, expected_selector: Optional[bytes] = None) -> FPV:
    """Extract the FPV from a Sereth transaction's calldata.

    The calldata layout is ``selector || flag || previous_mark || value``
    (Section III-C: "each element is stored in a contiguous 32 bytes within
    input").  Raises ``ValueError`` if the layout does not fit or the selector
    does not match.
    """
    if len(calldata) < 4 + 3 * WORD_SIZE:
        raise ValueError("calldata too short to contain an FPV")
    if expected_selector is not None and calldata[:4] != expected_selector:
        raise ValueError("calldata selector does not match the expected function")
    body = calldata[4:]
    return FPV(
        flag=body[0:WORD_SIZE],
        previous_mark=body[WORD_SIZE : 2 * WORD_SIZE],
        value=body[2 * WORD_SIZE : 3 * WORD_SIZE],
    )


def fpv_to_words(flag: bytes, previous_mark: bytes, value: object) -> List[bytes]:
    """Build the ``bytes32[3]`` argument for a Sereth call from loose values."""
    return [to_bytes32(flag), to_bytes32(previous_mark), to_bytes32(value)]
