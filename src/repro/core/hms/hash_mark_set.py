"""HASHMARKSET — Algorithm 1: the top-level HMS entry point.

``HashMarkSet`` ties the pieces together: filter the pool (Algorithm 2),
build the series DAG and take its deepest branch (Algorithm 3), and expose
the resulting READ-UNCOMMITTED view of the managed storage variable as an
AMV tuple.  It is consumed in two places:

* the RAA provider (:mod:`repro.core.raa`) answers ``mark``/``get`` view
  calls with it, which is how smart-contract clients obtain the view; and
* the semantic mining policy (:mod:`repro.core.hms.semantic`) uses the full
  series to order a block so that dependent transactions succeed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ...chain.transaction import Transaction
from ...crypto.addresses import ZERO_ADDRESS
from ...encoding.hexutil import to_bytes32
from .fpv import AMV, EMPTY_POOL_SENTINEL, HEAD_FLAG, SUCCESS_FLAG
from .node import TxNode
from .process import HMSConfig, process_transactions
from .series import Series, build_series

__all__ = ["HMSView", "HashMarkSet"]


@dataclass(frozen=True)
class HMSView:
    """The READ-UNCOMMITTED view HMS returns to a caller.

    ``amv`` is the predicted (address, mark, value) of the managed variable
    once every pending series transaction has committed.  ``flag_for_next``
    is the FPV flag a client should put on the *next* ``set`` it submits:
    the head flag when the view came from committed state (no pending
    series), the successor flag otherwise.
    """

    amv: AMV
    source: str
    """``"series"`` (derived from pending transactions), ``"committed"``
    (pool empty, fell back to contract storage) or ``"empty"`` (pool empty and
    no committed state supplied — Algorithm 1's specialValue)."""
    flag_for_next: bytes
    series: Series
    pool_size: int = 0
    filtered_size: int = 0

    @property
    def mark(self) -> bytes:
        return self.amv.mark

    @property
    def value(self) -> bytes:
        return self.amv.value

    @property
    def depth(self) -> int:
        return self.series.depth


class HashMarkSet:
    """Serialize a blockchain transaction pool (Algorithm 1)."""

    def __init__(self, config: HMSConfig, recursive: bool = False) -> None:
        self.config = config
        self.recursive = recursive

    # -- Algorithm 2 -------------------------------------------------------------

    def collect(self, pool_entries: Iterable[Tuple[Transaction, float]]) -> List[TxNode]:
        """Filter the pool into HMS nodes (PROCESS)."""
        return process_transactions(pool_entries, self.config)

    # -- Algorithm 3 -------------------------------------------------------------

    def serialize(self, pool_entries: Iterable[Tuple[Transaction, float]]) -> Series:
        """Filter and serialize the pool into the longest series."""
        return build_series(self.collect(pool_entries), recursive=self.recursive)

    # -- Algorithm 1 -------------------------------------------------------------

    def read_uncommitted(
        self,
        pool_entries: Iterable[Tuple[Transaction, float]],
        committed: Optional[AMV] = None,
    ) -> HMSView:
        """Return the READ-UNCOMMITTED view of the managed storage variable.

        ``committed`` is the AMV read from the contract's storage at the
        current head block; it is used when the pool holds no relevant
        transactions (Algorithm 1 lines 4-6) and to pick the flag for the
        caller's next transaction.
        """
        entries = list(pool_entries)
        nodes = self.collect(entries)
        series = build_series(nodes, recursive=self.recursive)
        if not series.is_empty:
            tail = series.tail
            assert tail is not None
            amv = AMV(address=to_bytes32(tail.sender), mark=tail.mark, value=tail.fpv.value)
            return HMSView(
                amv=amv,
                source="series",
                flag_for_next=SUCCESS_FLAG,
                series=series,
                pool_size=len(entries),
                filtered_size=len(nodes),
            )
        if committed is not None:
            return HMSView(
                amv=committed,
                source="committed",
                flag_for_next=HEAD_FLAG,
                series=series,
                pool_size=len(entries),
                filtered_size=len(nodes),
            )
        empty = AMV(
            address=to_bytes32(ZERO_ADDRESS),
            mark=EMPTY_POOL_SENTINEL,
            value=to_bytes32(0),
        )
        return HMSView(
            amv=empty,
            source="empty",
            flag_for_next=HEAD_FLAG,
            series=series,
            pool_size=len(entries),
            filtered_size=len(nodes),
        )
