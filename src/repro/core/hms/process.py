"""PROCESS — Algorithm 2: filter the TxPool for HMS transactions.

For each pending transaction we check (a) that the function signature is the
watched ``set`` selector and (b) that the first FPV word carries one of the
accepted flags (head candidate or successor).  Everything else — buys, other
contracts, malformed calldata — is skipped, which is why the paper notes the
overhead of HMS is small even for large pools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ...chain.transaction import Transaction
from ...crypto.addresses import Address
from .fpv import FPV, compute_mark, fpv_from_calldata
from .node import TxNode

__all__ = ["HMSConfig", "process_transactions"]


@dataclass(frozen=True)
class HMSConfig:
    """Identifies which transactions HMS watches.

    ``contract_address`` — the Sereth contract whose storage variable is
    managed; ``set_selector`` — the 4-byte selector of its write function
    (Algorithm 2's ``SIGNATURE(txn) == "set"`` check).
    """

    contract_address: Address
    set_selector: bytes

    def matches(self, transaction: Transaction) -> bool:
        """True if ``transaction`` targets the watched contract and function."""
        return (
            transaction.to == self.contract_address
            and transaction.selector == self.set_selector
        )


def process_transactions(
    pool_entries: Iterable[Tuple[Transaction, float]],
    config: HMSConfig,
) -> List[TxNode]:
    """Filter pool entries into HMS nodes (Algorithm 2).

    ``pool_entries`` yields ``(transaction, arrival_time)`` pairs — the
    arrival time is simulation metadata used only for tie-breaking and
    traces, never for correctness.  Transactions whose FPV flag is neither
    the head flag nor the successor flag are "considered rejected and ...
    not included in the list of relevant transactions".
    """
    nodes: List[TxNode] = []
    for transaction, arrival_time in pool_entries:
        if not config.matches(transaction):
            continue
        try:
            fpv = fpv_from_calldata(transaction.data, expected_selector=config.set_selector)
        except ValueError:
            continue
        if not fpv.is_series_member:
            continue
        nodes.append(
            TxNode(
                transaction=transaction,
                fpv=fpv,
                mark=compute_mark(fpv.previous_mark, fpv.value),
                arrival_time=arrival_time,
            )
        )
    return nodes
