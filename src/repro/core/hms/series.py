"""SERIES and DEEPESTBRANCH — Algorithm 3: build the DAG and take its longest branch.

``build_series`` links every node whose ``mark`` equals another node's
``previous_mark`` (predecessor → successor), then explores every head
candidate and returns the deepest path found.  The resolution rule —
"branches are resolved by taking the longest branch" — mirrors the
blockchain's own fork choice.

Two traversals are provided: a recursive one that is a line-for-line
transcription of DEEPESTBRANCH for fidelity (and for the termination lemma's
tests), and an iterative one used by default so adversarially deep pools
cannot blow the Python recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .node import TxNode

__all__ = ["Series", "build_series", "deepest_branch_recursive", "deepest_branch_iterative"]


@dataclass
class Series:
    """The serialized longest branch of the HMS DAG."""

    nodes: List[TxNode] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.nodes

    @property
    def head(self) -> Optional[TxNode]:
        return self.nodes[0] if self.nodes else None

    @property
    def tail(self) -> Optional[TxNode]:
        return self.nodes[-1] if self.nodes else None

    @property
    def depth(self) -> int:
        return len(self.nodes)

    def marks(self) -> List[bytes]:
        return [node.mark for node in self.nodes]

    def transactions(self) -> List:
        return [node.transaction for node in self.nodes]

    def __iter__(self):
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)


def _link_nodes(nodes: Sequence[TxNode]) -> None:
    """The nested loop at Algorithm 3 lines 2-6: build the adjacency relations."""
    for node in nodes:
        node.detach()
    by_mark: Dict[bytes, List[TxNode]] = {}
    for node in nodes:
        by_mark.setdefault(node.mark, []).append(node)
    for successor in nodes:
        predecessors = by_mark.get(successor.fpv.previous_mark, [])
        for predecessor in predecessors:
            if predecessor is successor:
                # A transaction cannot be its own predecessor (possible only if
                # previous_mark == keccak(previous_mark, value), i.e. a hash
                # fixed point; guarded for robustness).
                continue
            successor.previous = predecessor
            predecessor.successors.append(successor)
    # Keep successor exploration deterministic: order by arrival then hash.
    for node in nodes:
        node.successors.sort(key=lambda item: (item.arrival_time, item.transaction.hash))


def deepest_branch_recursive(head: TxNode) -> List[TxNode]:
    """DEEPESTBRANCH exactly as written in the paper (recursive DFS)."""
    best: Dict[str, object] = {"depth": 0, "path": []}

    def explore(node: TxNode, depth: int, path: List[TxNode]) -> None:
        if not node.successors:
            if depth > best["depth"]:
                best["depth"] = depth
                best["path"] = list(path)
            return
        for successor in node.successors:
            path.append(successor)
            explore(successor, depth + 1, path)
            path.pop()

    explore(head, 1, [head])
    if not best["path"]:
        return [head]
    return list(best["path"])  # type: ignore[arg-type]


def deepest_branch_iterative(head: TxNode) -> List[TxNode]:
    """Iterative deepest-branch search (explicit stack, no recursion limit)."""
    best_path: List[TxNode] = [head]
    # Stack holds (node, path-so-far); paths share list prefixes via copying at
    # push time, which is fine for the pool sizes HMS ever sees per block.
    stack: List[Tuple[TxNode, List[TxNode]]] = [(head, [head])]
    visited_guard = 0
    limit = 10_000_000
    while stack:
        visited_guard += 1
        if visited_guard > limit:  # pragma: no cover - defensive bound
            break
        node, path = stack.pop()
        if not node.successors:
            if len(path) > len(best_path):
                best_path = path
            continue
        for successor in node.successors:
            stack.append((successor, path + [successor]))
    return best_path


def build_series(nodes: Sequence[TxNode], recursive: bool = False) -> Series:
    """SERIES (Algorithm 3): link the DAG, then take the deepest branch over
    all head candidates.

    When no node carries the head flag (e.g. the true head was just mined and
    removed from the pool) the paper's algorithm would return an empty series;
    like the reference implementation we fall back to treating nodes with no
    in-pool predecessor as provisional heads so that the view degrades
    gracefully instead of vanishing for a whole block interval.
    """
    node_list = list(nodes)
    if not node_list:
        return Series([])
    _link_nodes(node_list)

    head_candidates = [node for node in node_list if node.is_head_candidate]
    if not head_candidates:
        head_candidates = [node for node in node_list if node.previous is None]

    search = deepest_branch_recursive if recursive else deepest_branch_iterative
    best: List[TxNode] = []
    for candidate in sorted(
        head_candidates, key=lambda item: (item.arrival_time, item.transaction.hash)
    ):
        path = search(candidate)
        if len(path) > len(best):
            best = path
    return Series(best)
