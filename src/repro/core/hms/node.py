"""DAG nodes wrapping Sereth transactions (the ``Node`` of Algorithm 2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ...chain.transaction import Transaction
from .fpv import FPV

__all__ = ["TxNode"]


@dataclass
class TxNode:
    """One pending Sereth ``set`` transaction inside the HMS graph.

    ``previous`` / ``successors`` are filled in by the SERIES step
    (Algorithm 3): a transaction has at most one predecessor (the one whose
    mark equals this transaction's ``previous_mark``) but — because clients
    race — possibly several successors.
    """

    transaction: Transaction
    fpv: FPV
    mark: bytes
    arrival_time: float = 0.0
    previous: Optional["TxNode"] = None
    successors: List["TxNode"] = field(default_factory=list)

    @property
    def sender(self) -> bytes:
        return self.transaction.sender

    @property
    def is_head_candidate(self) -> bool:
        return self.fpv.is_head_candidate

    @property
    def value(self) -> bytes:
        return self.fpv.value

    def detach(self) -> None:
        """Clear graph links (used when rebuilding the series from scratch)."""
        self.previous = None
        self.successors.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "head" if self.is_head_candidate else "succ"
        return (
            f"TxNode({kind}, tx={self.transaction.short_hash()}, "
            f"mark={self.mark.hex()[:8]}, value={self.fpv.value.hex()[-8:]})"
        )
