"""State throughput, transaction efficiency, and latency metrics (Section III-A).

Blockchains include failed transactions in the ledger, so raw throughput
(transactions committed per second) overstates useful work.  The paper's
**state throughput** ``T_state`` counts only transactions that made a state
change, and **transaction efficiency** is their ratio:

    eta = T_state / T_raw

The :class:`MetricsCollector` tracks a designated set of watched
transactions (the experiments watch the ``buy`` transactions, matching
Figure 2, where "each data point represents the result of 100 buy
transactions") and computes the metrics from the chain's receipts once the
run is over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..chain.block import Block
from ..chain.chain import Blockchain
from ..chain.transaction import Transaction

__all__ = [
    "TransactionRecord",
    "ThroughputReport",
    "MetricsCollector",
    "transaction_efficiency",
]


def transaction_efficiency(successful: int, committed: int) -> float:
    """eta = successful / committed; defined as 0.0 for an empty block set."""
    if committed <= 0:
        return 0.0
    return successful / committed


@dataclass
class TransactionRecord:
    """Lifecycle of one watched transaction."""

    transaction: Transaction
    label: str
    submitted_at: float
    committed_at: Optional[float] = None
    block_number: Optional[int] = None
    success: Optional[bool] = None
    error: Optional[str] = None

    @property
    def committed(self) -> bool:
        return self.committed_at is not None

    @property
    def commit_latency(self) -> Optional[float]:
        """Seconds from client submission to block publication."""
        if self.committed_at is None:
            return None
        return self.committed_at - self.submitted_at


@dataclass
class ThroughputReport:
    """Aggregate metrics over a set of watched transactions."""

    label: str
    submitted: int
    committed: int
    successful: int
    failed: int
    uncommitted: int
    duration: float
    raw_throughput: float
    state_throughput: float
    efficiency: float
    mean_commit_latency: Optional[float]
    latencies: List[float] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        """Successful / submitted — what Figure 2 plots ("the result of 100 buy
        transactions"); equals ``efficiency`` when every submission commits."""
        if self.submitted <= 0:
            return 0.0
        return self.successful / self.submitted

    def as_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "submitted": self.submitted,
            "committed": self.committed,
            "successful": self.successful,
            "failed": self.failed,
            "uncommitted": self.uncommitted,
            "duration": self.duration,
            "raw_throughput": self.raw_throughput,
            "state_throughput": self.state_throughput,
            "efficiency": self.efficiency,
            "success_rate": self.success_rate,
            "mean_commit_latency": self.mean_commit_latency,
        }


class MetricsCollector:
    """Records watched transactions and derives the paper's metrics."""

    def __init__(self) -> None:
        self._records: Dict[bytes, TransactionRecord] = {}

    # -- recording ----------------------------------------------------------------

    def watch(self, transaction: Transaction, label: str, submitted_at: float) -> None:
        """Register a transaction whose outcome should be measured."""
        self._records[transaction.hash] = TransactionRecord(
            transaction=transaction, label=label, submitted_at=submitted_at
        )

    def watched_count(self, label: Optional[str] = None) -> int:
        return sum(1 for record in self._records.values() if label is None or record.label == label)

    def records(self, label: Optional[str] = None) -> List[TransactionRecord]:
        return [
            record
            for record in self._records.values()
            if label is None or record.label == label
        ]

    # -- resolution ------------------------------------------------------------------

    def resolve_from_chain(self, chain: Blockchain) -> None:
        """Fill in commit status for every watched transaction found on chain."""
        for block in chain.blocks():
            self.resolve_from_block(block)

    def resolve_from_block(self, block: Block) -> None:
        for receipt in block.receipts:
            record = self._records.get(receipt.transaction_hash)
            if record is None:
                continue
            record.committed_at = block.timestamp
            record.block_number = block.number
            record.success = receipt.success
            record.error = receipt.error

    # -- reporting --------------------------------------------------------------------

    def report(
        self,
        label: Optional[str] = None,
        duration: Optional[float] = None,
    ) -> ThroughputReport:
        """Compute the throughput/efficiency report for one label (or all).

        ``duration`` defaults to the span between the first submission and the
        last commit observed, which matches how the paper normalises a run.
        """
        records = self.records(label)
        submitted = len(records)
        committed_records = [record for record in records if record.committed]
        committed = len(committed_records)
        successful = sum(1 for record in committed_records if record.success)
        failed = committed - successful
        latencies = [
            record.commit_latency for record in committed_records if record.commit_latency is not None
        ]
        if duration is None:
            if committed_records:
                start = min(record.submitted_at for record in records)
                end = max(record.committed_at for record in committed_records)
                duration = max(end - start, 1e-9)
            else:
                duration = 0.0
        raw_throughput = committed / duration if duration else 0.0
        state_throughput = successful / duration if duration else 0.0
        return ThroughputReport(
            label=label or "all",
            submitted=submitted,
            committed=committed,
            successful=successful,
            failed=failed,
            uncommitted=submitted - committed,
            duration=duration,
            raw_throughput=raw_throughput,
            state_throughput=state_throughput,
            efficiency=transaction_efficiency(successful, committed),
            mean_commit_latency=(sum(latencies) / len(latencies)) if latencies else None,
            latencies=latencies,
        )
