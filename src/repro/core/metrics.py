"""State throughput, transaction efficiency, and latency metrics (Section III-A).

Blockchains include failed transactions in the ledger, so raw throughput
(transactions committed per second) overstates useful work.  The paper's
**state throughput** ``T_state`` counts only transactions that made a state
change, and **transaction efficiency** is their ratio:

    eta = T_state / T_raw

The :class:`MetricsCollector` tracks a designated set of watched
transactions (the experiments watch the ``buy`` transactions, matching
Figure 2, where "each data point represents the result of 100 buy
transactions") and computes the metrics from the chain's receipts once the
run is over.

Two retention modes
-------------------

*Unbounded* (the default): every watched transaction keeps its full
:class:`TransactionRecord` for the life of the collector, and reports are
computed from the record list exactly as they always were — this path is
golden-checksum-gated and must stay byte-identical.

*Streaming* (``metrics_window=<seconds>``): a resolved record is folded
into bounded per-label aggregates (counts, latency sum/min/max, and a
seeded reservoir for p50/p95) plus per-time-window aggregates, then
dropped.  Memory is O(labels + windows + reservoir), not O(transactions).
An optional ``spill_path`` appends one JSONL line per resolved record so
full-fidelity rows can still be recovered offline.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..chain.block import Block
from ..chain.chain import Blockchain
from ..chain.transaction import Transaction
from ..obs import runtime as _obs
from .percentiles import percentile

__all__ = [
    "TransactionRecord",
    "ThroughputReport",
    "MetricsCollector",
    "transaction_efficiency",
]

DEFAULT_RESERVOIR_SIZE = 512
"""Latency samples kept per label in streaming mode (for p50/p95)."""


def transaction_efficiency(successful: int, committed: int) -> float:
    """eta = successful / committed; defined as 0.0 for an empty block set."""
    if committed <= 0:
        return 0.0
    return successful / committed


@dataclass
class TransactionRecord:
    """Lifecycle of one watched transaction."""

    transaction: Transaction
    label: str
    submitted_at: float
    committed_at: Optional[float] = None
    block_number: Optional[int] = None
    success: Optional[bool] = None
    error: Optional[str] = None

    @property
    def committed(self) -> bool:
        return self.committed_at is not None

    @property
    def commit_latency(self) -> Optional[float]:
        """Seconds from client submission to block publication."""
        if self.committed_at is None:
            return None
        return self.committed_at - self.submitted_at


@dataclass
class ThroughputReport:
    """Aggregate metrics over a set of watched transactions."""

    label: str
    submitted: int
    committed: int
    successful: int
    failed: int
    uncommitted: int
    duration: float
    raw_throughput: float
    state_throughput: float
    efficiency: float
    mean_commit_latency: Optional[float]
    latencies: List[float] = field(default_factory=list)
    windowed: bool = False
    latency_p50: Optional[float] = None
    latency_p95: Optional[float] = None
    latency_min: Optional[float] = None
    latency_max: Optional[float] = None

    @property
    def success_rate(self) -> float:
        """Successful / submitted — what Figure 2 plots ("the result of 100 buy
        transactions"); equals ``efficiency`` when every submission commits."""
        if self.submitted <= 0:
            return 0.0
        return self.successful / self.submitted

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "label": self.label,
            "submitted": self.submitted,
            "committed": self.committed,
            "successful": self.successful,
            "failed": self.failed,
            "uncommitted": self.uncommitted,
            "duration": self.duration,
            "raw_throughput": self.raw_throughput,
            "state_throughput": self.state_throughput,
            "efficiency": self.efficiency,
            "success_rate": self.success_rate,
            "mean_commit_latency": self.mean_commit_latency,
        }
        if self.windowed:
            # Streaming-only keys: emitted only for windowed reports so the
            # default (unbounded) summary bytes never change.
            data["latency_p50"] = self.latency_p50
            data["latency_p95"] = self.latency_p95
            data["latency_min"] = self.latency_min
            data["latency_max"] = self.latency_max
        return data


class _LabelAggregate:
    """Bounded streaming summary of one label's watched transactions."""

    __slots__ = (
        "submitted",
        "committed",
        "successful",
        "latency_sum",
        "latency_min",
        "latency_max",
        "first_submitted_at",
        "last_committed_at",
        "reservoir",
        "seen",
    )

    def __init__(self) -> None:
        self.submitted = 0
        self.committed = 0
        self.successful = 0
        self.latency_sum = 0.0
        self.latency_min: Optional[float] = None
        self.latency_max: Optional[float] = None
        self.first_submitted_at: Optional[float] = None
        self.last_committed_at: Optional[float] = None
        self.reservoir: List[float] = []
        self.seen = 0


def _percentile(sorted_samples: Sequence[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile over an already-sorted sample list.

    Back-compat shim over :func:`repro.core.percentiles.percentile`.
    """
    return percentile(sorted_samples, fraction, method="nearest_rank", presorted=True)


class MetricsCollector:
    """Records watched transactions and derives the paper's metrics."""

    def __init__(
        self,
        metrics_window: Optional[float] = None,
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
        spill_path: Optional[str] = None,
        seed: int = 0,
    ) -> None:
        if metrics_window is not None and metrics_window <= 0:
            raise ValueError("metrics_window must be positive")
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be positive")
        self._records: Dict[bytes, TransactionRecord] = {}
        self._window_seconds = metrics_window
        self._streaming = metrics_window is not None
        self._reservoir_size = reservoir_size
        self._spill_path = spill_path
        self._spill_handle = None
        self._rng = random.Random(seed)
        self._aggregates: Dict[str, _LabelAggregate] = {}
        self._windows: Dict[Tuple[str, int], List[float]] = {}
        self._next_scan = 0

    @property
    def streaming(self) -> bool:
        """True when resolved rows fold into aggregates instead of piling up."""
        return self._streaming

    # -- recording ----------------------------------------------------------------

    def watch(self, transaction: Transaction, label: str, submitted_at: float) -> None:
        """Register a transaction whose outcome should be measured."""
        self._records[transaction.hash] = TransactionRecord(
            transaction=transaction, label=label, submitted_at=submitted_at
        )
        if self._streaming:
            aggregate = self._aggregate_for(label)
            aggregate.submitted += 1
            if (
                aggregate.first_submitted_at is None
                or submitted_at < aggregate.first_submitted_at
            ):
                aggregate.first_submitted_at = submitted_at

    def _aggregate_for(self, label: str) -> _LabelAggregate:
        aggregate = self._aggregates.get(label)
        if aggregate is None:
            aggregate = self._aggregates[label] = _LabelAggregate()
        return aggregate

    def watched_count(self, label: Optional[str] = None) -> int:
        if self._streaming:
            return sum(
                aggregate.submitted
                for key, aggregate in self._aggregates.items()
                if label is None or key == label
            )
        return sum(1 for record in self._records.values() if label is None or record.label == label)

    def pending_count(self, label: Optional[str] = None) -> int:
        """Watched transactions not yet seen in a block (both modes)."""
        return sum(
            1
            for record in self._records.values()
            if (label is None or record.label == label) and not record.committed
        )

    def committed_count(self, label: Optional[str] = None) -> int:
        if self._streaming:
            return sum(
                aggregate.committed
                for key, aggregate in self._aggregates.items()
                if label is None or key == label
            )
        return sum(
            1
            for record in self._records.values()
            if (label is None or record.label == label) and record.committed
        )

    def successful_count(self, label: Optional[str] = None) -> int:
        if self._streaming:
            return sum(
                aggregate.successful
                for key, aggregate in self._aggregates.items()
                if label is None or key == label
            )
        return sum(
            1
            for record in self._records.values()
            if (label is None or record.label == label)
            and record.committed
            and record.success
        )

    def labels(self) -> List[str]:
        """Every label ever watched, sorted."""
        if self._streaming:
            return sorted(self._aggregates)
        return sorted({record.label for record in self._records.values()})

    def records(self, label: Optional[str] = None) -> List[TransactionRecord]:
        """Retained records.  In streaming mode resolved records have been
        folded away, so only still-pending ones remain."""
        return [
            record
            for record in self._records.values()
            if label is None or record.label == label
        ]

    # -- resolution ------------------------------------------------------------------

    def resolve_from_chain(self, chain: Blockchain) -> None:
        """Fill in commit status for every watched transaction found on chain.

        Unbounded mode rescans the chain's retained blocks (idempotent, the
        historical behaviour).  Streaming mode scans incrementally from the
        last resolved height so each block folds exactly once even as the
        chain's own retention window slides.
        """
        tracer = _obs.TRACER
        start_wall = perf_counter() if tracer is not None else 0.0
        if not self._streaming:
            for block in chain.blocks():
                self.resolve_from_block(block)
        else:
            start = max(self._next_scan, chain.earliest_block_number)
            for number in range(start, chain.height + 1):
                self.resolve_from_block(chain.block_by_number(number))
            self._next_scan = chain.height + 1
        if tracer is not None:
            tracer.phase("metrics_fold", start_wall)

    def resolve_from_block(self, block: Block) -> None:
        records = self._records
        for receipt in block.receipts:
            record = records.get(receipt.transaction_hash)
            if record is None:
                continue
            first_resolution = record.committed_at is None
            record.committed_at = block.timestamp
            record.block_number = block.number
            record.success = receipt.success
            record.error = receipt.error
            if first_resolution:
                tracer = _obs.TRACER
                if tracer is not None:
                    tracer.event(
                        "tx.receipt",
                        tx=receipt.transaction_hash,
                        label=record.label,
                        block_number=block.number,
                        success=receipt.success,
                        latency=round(block.timestamp - record.submitted_at, 9),
                    )
                if self._spill_path is not None:
                    self._spill(record)
            if self._streaming:
                del records[receipt.transaction_hash]
                self._fold(record)

    def _fold(self, record: TransactionRecord) -> None:
        """Fold one resolved record into the bounded aggregates and drop it."""
        aggregate = self._aggregate_for(record.label)
        aggregate.committed += 1
        if record.success:
            aggregate.successful += 1
        committed_at = record.committed_at
        assert committed_at is not None
        if (
            aggregate.last_committed_at is None
            or committed_at > aggregate.last_committed_at
        ):
            aggregate.last_committed_at = committed_at
        latency = committed_at - record.submitted_at
        aggregate.latency_sum += latency
        if aggregate.latency_min is None or latency < aggregate.latency_min:
            aggregate.latency_min = latency
        if aggregate.latency_max is None or latency > aggregate.latency_max:
            aggregate.latency_max = latency
        # Algorithm R: a uniform sample of latencies in bounded memory.
        aggregate.seen += 1
        if len(aggregate.reservoir) < self._reservoir_size:
            aggregate.reservoir.append(latency)
        else:
            slot = self._rng.randrange(aggregate.seen)
            if slot < self._reservoir_size:
                aggregate.reservoir[slot] = latency
        window_index = int(committed_at // self._window_seconds)
        window = self._windows.get((record.label, window_index))
        if window is None:
            # [committed, successful, latency_sum, latency_min, latency_max]
            self._windows[(record.label, window_index)] = [
                1.0,
                1.0 if record.success else 0.0,
                latency,
                latency,
                latency,
            ]
        else:
            window[0] += 1.0
            window[1] += 1.0 if record.success else 0.0
            window[2] += latency
            window[3] = min(window[3], latency)
            window[4] = max(window[4], latency)

    def _spill(self, record: TransactionRecord) -> None:
        if self._spill_handle is None:
            self._spill_handle = open(self._spill_path, "a", encoding="utf-8")
        row = {
            "transaction": "0x" + record.transaction.hash.hex(),
            "label": record.label,
            "submitted_at": record.submitted_at,
            "committed_at": record.committed_at,
            "block_number": record.block_number,
            "success": record.success,
            "error": record.error,
        }
        self._spill_handle.write(json.dumps(row, separators=(",", ":")) + "\n")

    def close(self) -> None:
        """Flush and close the spill tap, if one was opened."""
        if self._spill_handle is not None:
            self._spill_handle.close()
            self._spill_handle = None

    # -- windowed aggregates -----------------------------------------------------------

    def windows(self) -> List[Dict[str, object]]:
        """Per-(label, time-window) aggregate rows, ready for a ResultFrame.

        Empty in unbounded mode (no ``metrics_window`` configured).
        """
        if self._window_seconds is None:
            return []
        rows: List[Dict[str, object]] = []
        for label, index in sorted(self._windows):
            committed, successful, latency_sum, latency_min, latency_max = self._windows[
                (label, index)
            ]
            committed_count = int(committed)
            successful_count = int(successful)
            rows.append(
                {
                    "label": label,
                    "window": index,
                    "window_start": index * self._window_seconds,
                    "window_end": (index + 1) * self._window_seconds,
                    "committed": committed_count,
                    "successful": successful_count,
                    "failed": committed_count - successful_count,
                    "latency_mean": latency_sum / committed_count,
                    "latency_min": latency_min,
                    "latency_max": latency_max,
                }
            )
        return rows

    # -- reporting --------------------------------------------------------------------

    def report(
        self,
        label: Optional[str] = None,
        duration: Optional[float] = None,
    ) -> ThroughputReport:
        """Compute the throughput/efficiency report for one label (or all).

        ``duration`` defaults to the span between the first submission and the
        last commit observed, which matches how the paper normalises a run.
        """
        if self._streaming:
            return self._streaming_report(label, duration)
        records = self.records(label)
        submitted = len(records)
        committed_records = [record for record in records if record.committed]
        committed = len(committed_records)
        successful = sum(1 for record in committed_records if record.success)
        failed = committed - successful
        latencies = [
            record.commit_latency for record in committed_records if record.commit_latency is not None
        ]
        if duration is None:
            if committed_records:
                start = min(record.submitted_at for record in records)
                end = max(record.committed_at for record in committed_records)
                duration = max(end - start, 1e-9)
            else:
                duration = 0.0
        raw_throughput = committed / duration if duration else 0.0
        state_throughput = successful / duration if duration else 0.0
        return ThroughputReport(
            label=label or "all",
            submitted=submitted,
            committed=committed,
            successful=successful,
            failed=failed,
            uncommitted=submitted - committed,
            duration=duration,
            raw_throughput=raw_throughput,
            state_throughput=state_throughput,
            efficiency=transaction_efficiency(successful, committed),
            mean_commit_latency=(sum(latencies) / len(latencies)) if latencies else None,
            latencies=latencies,
        )

    def _streaming_report(
        self, label: Optional[str], duration: Optional[float]
    ) -> ThroughputReport:
        aggregates = [
            aggregate
            for key, aggregate in self._aggregates.items()
            if label is None or key == label
        ]
        submitted = sum(aggregate.submitted for aggregate in aggregates)
        committed = sum(aggregate.committed for aggregate in aggregates)
        successful = sum(aggregate.successful for aggregate in aggregates)
        failed = committed - successful
        latency_sum = sum(aggregate.latency_sum for aggregate in aggregates)
        latency_mins = [
            aggregate.latency_min
            for aggregate in aggregates
            if aggregate.latency_min is not None
        ]
        latency_maxs = [
            aggregate.latency_max
            for aggregate in aggregates
            if aggregate.latency_max is not None
        ]
        if duration is None:
            starts = [
                aggregate.first_submitted_at
                for aggregate in aggregates
                if aggregate.first_submitted_at is not None
            ]
            ends = [
                aggregate.last_committed_at
                for aggregate in aggregates
                if aggregate.last_committed_at is not None
            ]
            if committed and starts and ends:
                duration = max(max(ends) - min(starts), 1e-9)
            else:
                duration = 0.0
        raw_throughput = committed / duration if duration else 0.0
        state_throughput = successful / duration if duration else 0.0
        samples = sorted(
            latency for aggregate in aggregates for latency in aggregate.reservoir
        )
        return ThroughputReport(
            label=label or "all",
            submitted=submitted,
            committed=committed,
            successful=successful,
            failed=failed,
            uncommitted=submitted - committed,
            duration=duration,
            raw_throughput=raw_throughput,
            state_throughput=state_throughput,
            efficiency=transaction_efficiency(successful, committed),
            mean_commit_latency=(latency_sum / committed) if committed else None,
            latencies=[],
            windowed=True,
            latency_p50=_percentile(samples, 0.50),
            latency_p95=_percentile(samples, 0.95),
            latency_min=min(latency_mins) if latency_mins else None,
            latency_max=max(latency_maxs) if latency_maxs else None,
        )
