"""The three experimental scenarios of Figure 2 (plus ablation variants).

* ``geth_unmodified`` — unmodified clients, READ-COMMITTED buyer reads,
  fee/arrival miner ordering (Section V-A).
* ``sereth_client`` — Sereth clients provide the READ-UNCOMMITTED view via
  HMS/RAA; miners are unmodified (Section V-B).
* ``semantic_mining`` — same client inputs as ``sereth_client`` but the
  miners also run HMS and order blocks semantically (Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from ..clients.market import READ_COMMITTED, READ_UNCOMMITTED
from ..net.peer import GETH_CLIENT, SERETH_CLIENT

__all__ = [
    "Scenario",
    "GETH_UNMODIFIED",
    "SERETH_CLIENT_SCENARIO",
    "SEMANTIC_MINING",
    "SCENARIOS",
    "scenario_by_name",
]


@dataclass(frozen=True)
class Scenario:
    """How clients read state and how miners order blocks."""

    name: str
    client_kind: str
    """Which client software the peers run (``geth`` or ``sereth``)."""
    buyer_read_mode: str
    """Where buyers read (mark, price) from: committed storage or the HMS view."""
    semantic_mining: bool
    """Whether miners use the HMS-aware ordering policy."""
    semantic_miner_fraction: float = 1.0
    """Fraction of mining power running the semantic policy (ablation A1)."""

    def with_semantic_fraction(self, fraction: float) -> "Scenario":
        """A variant of this scenario with partial semantic-miner participation."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        return replace(
            self,
            name=f"{self.name}_frac_{fraction:.2f}",
            semantic_mining=fraction > 0.0,
            semantic_miner_fraction=fraction,
        )


GETH_UNMODIFIED = Scenario(
    name="geth_unmodified",
    client_kind=GETH_CLIENT,
    buyer_read_mode=READ_COMMITTED,
    semantic_mining=False,
)

SERETH_CLIENT_SCENARIO = Scenario(
    name="sereth_client",
    client_kind=SERETH_CLIENT,
    buyer_read_mode=READ_UNCOMMITTED,
    semantic_mining=False,
)

SEMANTIC_MINING = Scenario(
    name="semantic_mining",
    client_kind=SERETH_CLIENT,
    buyer_read_mode=READ_UNCOMMITTED,
    semantic_mining=True,
)

SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (GETH_UNMODIFIED, SERETH_CLIENT_SCENARIO, SEMANTIC_MINING)
}


def scenario_by_name(name: str) -> Scenario:
    """Look up one of the paper's scenarios by its Figure 2 label."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; expected one of {sorted(SCENARIOS)}"
        ) from None
