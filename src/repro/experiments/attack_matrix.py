"""The attack matrix: every adversary against every defense configuration.

Section V-B's claim — mark-bound offers structurally prevent frontrunning —
is only as strong as the set of attacks it is tested against.  This
experiment turns the security evaluation from one anecdote into a grid:
each registered adversary runs against each defense configuration (the
scenario axis: committed-read baseline, HMS view, HMS + semantic mining) on
the attacker-free ``victim_market`` workload, and every cell reports the
attack's attempts, successes, profit, and the victim-harm it caused.

Two notions of harm are tracked per cell:

* ``victim_harm`` — victim buys that did not fill at the observed terms
  (rejected or never committed).  Read latency alone causes some of this in
  the committed-read baseline, which is why the matrix includes a
  ``(control)`` row with no adversary at all: the attack's *marginal* harm
  is the cell minus the control.
* ``overpaid`` — victim buys filled at terms the victim did not observe.
  The paper's structural claim says this is zero in every cell; the
  chain auditor independently verifies it.

The headline acceptance check is :meth:`AttackMatrixResult.hms_protected`:
under the full HMS defense (semantic mining), the displacement attack —
the paper's Section II-F frontrunner — causes zero victim harm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

# api submodule imports (not the package root): this module is pulled in by
# repro.experiments, which repro.api's own init loads for the scenario axis.
from ..adversary import ADVERSARY_REGISTRY
from ..api.builder import Simulation
from ..api.experiment import Experiment, ExperimentOptions, register_experiment
from ..api.frame import ResultFrame
from ..api.registry import SCENARIO_REGISTRY
from ..api.seeding import derive_seed
from ..api.spec import SimulationSpec
from ..api.sweep import Sweep
from ..api.workloads import VICTIM_BUY_LABEL
from .claims import attack_matrix_claims

__all__ = [
    "DEFAULT_ADVERSARIES",
    "DEFAULT_DEFENSES",
    "HMS_DEFENSE",
    "CONTROL_ROW",
    "AttackMatrixConfig",
    "AttackMatrixCell",
    "AttackMatrixExperiment",
    "AttackMatrixResult",
    "attack_matrix_jobs",
    "run_attack_matrix",
]

DEFAULT_ADVERSARIES: Tuple[str, ...] = (
    "displacement",
    "insertion",
    "suppression",
    "censoring_miner",
    "stale_oracle",
)
DEFAULT_DEFENSES: Tuple[str, ...] = (
    "geth_unmodified",
    "sereth_client",
    "semantic_mining",
)
HMS_DEFENSE = "semantic_mining"
"""The full HMS deployment (view + semantic mining) — the paper's defense."""

CONTROL_ROW = "(control)"
"""Row label for the adversary-free control cells."""


@dataclass(frozen=True)
class AttackMatrixConfig:
    """Shape of the attack-matrix sweep."""

    adversaries: Tuple[str, ...] = DEFAULT_ADVERSARIES
    defenses: Tuple[str, ...] = DEFAULT_DEFENSES
    num_victim_buys: int = 20
    buy_interval: float = 2.0
    reprice_interval: Optional[float] = None
    """``None`` (default) reproduces the paper's V-B market: one opening set,
    then only attackers move the price — the regime in which semantic mining
    drives frontrunning harm to zero.  Setting an interval makes the owner
    keep repricing, which gives delay-based attacks (suppression, censorship,
    stale oracle) stale terms to exploit — but concurrent owner writes also
    fork the HMS series under attack, so harm is no longer expected to be
    zero anywhere; delay attacks additionally show up in the latency column
    either way."""
    block_interval: float = 13.0
    num_miners: int = 2
    """Two miners so a censoring miner controls half the hash power, not all."""
    max_transactions_per_block: Optional[int] = 12
    """Finite block capacity so fee-bump suppression has something to exhaust."""
    trials: int = 1
    include_control: bool = True
    seed: int = 11

    def __post_init__(self) -> None:
        if not self.adversaries:
            raise ValueError("the matrix needs at least one adversary")
        if not self.defenses:
            raise ValueError("the matrix needs at least one defense")
        for name in self.adversaries:
            ADVERSARY_REGISTRY.get(name)  # fail fast on unknown strategies
        for name in self.defenses:
            SCENARIO_REGISTRY.get(name)  # and on unknown defense scenarios
        if self.trials <= 0:
            raise ValueError("trials must be positive")


@dataclass
class AttackMatrixCell:
    """One (adversary, defense) cell, aggregated over its trials."""

    adversary: str
    defense: str
    trials: int
    attempts: int
    successes: int
    profit: float
    victim_submitted: int
    victim_filled: int
    victim_harm: int
    victim_latency: Optional[float]
    """Mean commit latency of the victim's buys (seconds) — how delay-based
    attacks show up even when a static market keeps fills succeeding."""
    overpaid: int
    audit_clean: bool

    @property
    def harm_rate(self) -> float:
        if self.victim_submitted == 0:
            return 0.0
        return self.victim_harm / self.victim_submitted

    def as_dict(self) -> Dict[str, Any]:
        return {
            "adversary": self.adversary,
            "defense": self.defense,
            "trials": self.trials,
            "attempts": self.attempts,
            "successes": self.successes,
            "profit": self.profit,
            "victim_submitted": self.victim_submitted,
            "victim_filled": self.victim_filled,
            "victim_harm": self.victim_harm,
            "harm_rate": self.harm_rate,
            "victim_latency": self.victim_latency,
            "overpaid": self.overpaid,
            "audit_clean": self.audit_clean,
        }


@dataclass
class AttackMatrixResult:
    """Every cell of the matrix, with the paper's acceptance checks."""

    config: AttackMatrixConfig
    cells: List[AttackMatrixCell] = field(default_factory=list)

    def cell(self, adversary: str, defense: str) -> AttackMatrixCell:
        for candidate in self.cells:
            if candidate.adversary == adversary and candidate.defense == defense:
                return candidate
        raise KeyError(f"no matrix cell for ({adversary!r}, {defense!r})")

    # -- acceptance checks -------------------------------------------------------------

    @property
    def hms_protected(self) -> bool:
        """Section V-B reproduced: displacement causes zero victim harm under
        the full HMS defense (when both are part of the grid)."""
        if HMS_DEFENSE not in self.config.defenses:
            return True
        if "displacement" not in self.config.adversaries:
            return True
        return self.cell("displacement", HMS_DEFENSE).victim_harm == 0

    @property
    def structurally_sound(self) -> bool:
        """No victim overpaid in any cell — the mark-bound-offer invariant."""
        return all(cell.overpaid == 0 and cell.audit_clean for cell in self.cells)

    # -- rendering ---------------------------------------------------------------------

    def as_rows(self) -> List[List[str]]:
        """Table rows: adversary x defense with the headline numbers."""
        rows = []
        for cell in self.cells:
            rows.append(
                [
                    cell.adversary,
                    cell.defense,
                    str(cell.attempts),
                    str(cell.successes),
                    f"{cell.profit:g}",
                    f"{cell.victim_harm}/{cell.victim_submitted}",
                    f"{cell.harm_rate:.0%}",
                    "-" if cell.victim_latency is None else f"{cell.victim_latency:.1f}s",
                    str(cell.overpaid),
                ]
            )
        return rows

    def to_dict(self) -> List[Dict[str, Any]]:
        return [cell.as_dict() for cell in self.cells]


@register_experiment
class AttackMatrixExperiment(Experiment):
    """The registry form of the attack matrix: every adversary against every
    defense (plus a control row), claim-gated on the paper's Section V-B cell
    and the no-overpayment invariant across the whole grid.

    Overrides: ``adversaries`` / ``defenses`` (lists of registered names),
    ``buys`` (victim buys per cell), ``reprice_interval``, ``control``
    (set falsy to drop the adversary-free row).
    """

    name = "attack_matrix"
    description = (
        "Every registered adversary against every defense scenario on the "
        "attacker-free victim market"
    )
    default_trials = 1
    default_seed = 11
    claims = attack_matrix_claims()
    export_columns = (
        "adversary",
        "defense",
        "trial",
        "seed",
        "victim_submitted",
        "victim_filled",
        "victim_harm",
        "attempts",
        "successes",
        "profit",
        "victim_latency",
        "overpaid",
        "audit_clean",
    )

    @staticmethod
    def _name_list(value) -> tuple:
        """A bare name (``--set adversaries=displacement``) means a
        one-element list, not an iterable of characters."""
        return (value,) if isinstance(value, str) else tuple(value)

    def matrix_config(self, options: ExperimentOptions) -> AttackMatrixConfig:
        smoke = options.smoke
        adversaries = options.override(
            "adversaries",
            ("displacement", "insertion") if smoke else DEFAULT_ADVERSARIES,
        )
        defenses = options.override(
            "defenses",
            ("geth_unmodified", HMS_DEFENSE) if smoke else DEFAULT_DEFENSES,
        )
        return AttackMatrixConfig(
            adversaries=self._name_list(adversaries),
            defenses=self._name_list(defenses),
            num_victim_buys=options.override("buys", 8 if smoke else 20),
            reprice_interval=options.override("reprice_interval"),
            trials=self.trials(options),
            include_control=bool(options.override("control", True)),
            seed=self.seed(options),
        )

    def plan(self, options: ExperimentOptions) -> Sweep:
        return Sweep.from_specs(attack_matrix_jobs(self.matrix_config(options)))

    def analyze(self, frame: ResultFrame, options: ExperimentOptions) -> ResultFrame:
        def victim(row, key):
            return row["summary"]["reports"][VICTIM_BUY_LABEL][key]

        def attack_total(row, key):
            return sum(
                report[key] for report in row["summary"].get("adversaries", {}).values()
            )

        return frame.derive(
            victim_submitted=lambda row: victim(row, "submitted"),
            victim_filled=lambda row: victim(row, "successful"),
            victim_harm=lambda row: victim(row, "submitted") - victim(row, "successful"),
            victim_latency=lambda row: victim(row, "mean_commit_latency"),
            attempts=lambda row: attack_total(row, "attempts"),
            successes=lambda row: attack_total(row, "successes"),
            profit=lambda row: attack_total(row, "profit"),
            overpaid=lambda row: row["summary"]["extras"].get("overpaid", 0),
            audit_clean=lambda row: row["summary"]["extras"].get("audit_clean", True),
        )


def _cell_spec(config: AttackMatrixConfig, adversary: Optional[str], defense: str) -> SimulationSpec:
    """The facade spec for one matrix cell (``adversary=None`` is the control)."""
    builder = (
        Simulation.builder()
        .scenario(defense)
        .workload(
            "victim_market",
            num_victim_buys=config.num_victim_buys,
            buy_interval=config.buy_interval,
            reprice_interval=config.reprice_interval,
        )
        .miners(config.num_miners)
        .clients(2)
        .block_interval(config.block_interval)
        .gossip(0.07, 0.05)
        .gas(max_transactions_per_block=config.max_transactions_per_block)
        .seed(config.seed)
    )
    if adversary is not None:
        builder = builder.adversary(adversary)
    return builder.build()


def attack_matrix_jobs(
    config: AttackMatrixConfig,
) -> List[Tuple[SimulationSpec, Dict[str, Any]]]:
    """The deterministically seeded (spec, tags) grid the sweep engine runs.

    Per-trial seeds derive from the config seed and the cell coordinates, so
    the same matrix produces the same numbers serially or on a worker pool.
    """
    rows: List[Optional[str]] = list(config.adversaries)
    if config.include_control:
        rows.insert(0, None)
    jobs: List[Tuple[SimulationSpec, Dict[str, Any]]] = []
    for adversary in rows:
        row_label = adversary if adversary is not None else CONTROL_ROW
        for defense in config.defenses:
            base = _cell_spec(config, adversary, defense)
            for trial in range(config.trials):
                seed = derive_seed(config.seed, "attack-matrix", row_label, defense, trial)
                tags = {
                    "adversary": row_label,
                    "defense": defense,
                    "trial": trial,
                    "seed": seed,
                }
                jobs.append((base.with_seed(seed), tags))
    return jobs


def run_attack_matrix(
    config: Optional[AttackMatrixConfig] = None, workers: int = 1
) -> AttackMatrixResult:
    """Run the full grid and aggregate each cell over its trials."""
    config = config or AttackMatrixConfig()
    jobs = attack_matrix_jobs(config)
    sweep_result = Sweep.from_specs(jobs).run(workers=workers)

    aggregated: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for row in sweep_result.rows:
        key = (row.tags["adversary"], row.tags["defense"])
        bucket = aggregated.setdefault(
            key,
            {
                "trials": 0,
                "attempts": 0,
                "successes": 0,
                "profit": 0.0,
                "victim_submitted": 0,
                "victim_filled": 0,
                "victim_harm": 0,
                "latencies": [],
                "overpaid": 0,
                "audit_clean": True,
            },
        )
        bucket["trials"] += 1
        extras = row.summary["extras"]
        bucket["overpaid"] += extras.get("overpaid", 0)
        bucket["audit_clean"] = bucket["audit_clean"] and extras.get("audit_clean", True)
        # Victim metrics come straight off the watched label so control cells
        # (no adversary report) aggregate identically to attacked ones.
        victim_report = row.summary["reports"][VICTIM_BUY_LABEL]
        bucket["victim_submitted"] += victim_report["submitted"]
        bucket["victim_filled"] += victim_report["successful"]
        bucket["victim_harm"] += victim_report["submitted"] - victim_report["successful"]
        if victim_report.get("mean_commit_latency") is not None:
            bucket["latencies"].append(victim_report["mean_commit_latency"])
        for report in row.summary.get("adversaries", {}).values():
            bucket["attempts"] += report["attempts"]
            bucket["successes"] += report["successes"]
            bucket["profit"] += report["profit"]

    result = AttackMatrixResult(config=config)
    rows: List[Optional[str]] = list(config.adversaries)
    if config.include_control:
        rows.insert(0, None)
    for adversary in rows:
        row_label = adversary if adversary is not None else CONTROL_ROW
        for defense in config.defenses:
            bucket = aggregated[(row_label, defense)]
            latencies = bucket["latencies"]
            result.cells.append(
                AttackMatrixCell(
                    adversary=row_label,
                    defense=defense,
                    trials=bucket["trials"],
                    attempts=bucket["attempts"],
                    successes=bucket["successes"],
                    profit=bucket["profit"],
                    victim_submitted=bucket["victim_submitted"],
                    victim_filled=bucket["victim_filled"],
                    victim_harm=bucket["victim_harm"],
                    victim_latency=(sum(latencies) / len(latencies)) if latencies else None,
                    overpaid=bucket["overpaid"],
                    audit_clean=bucket["audit_clean"],
                )
            )
    return result
