"""The propagation experiment: the paper's claims under realistic gossip.

Every other experiment in this repository runs on a small full mesh, where
block propagation is one sampled hop — the regime the paper's private
testbed sat in.  This experiment stresses the propagation-dependent claims
on structured topologies at scale: each registered gossip graph
(``full_mesh``, ``random_k``, ``region_hub``, ``kademlia``) is swept across
network sizes, with per-link FIFO bandwidth enabled so wire bytes cost
simulated time, and each cell runs the attack-matrix headline pair — an
adversary-free control plus the displacement frontrunner — under the full
HMS defense (semantic mining).

Per cell the analysis records the block-propagation p50/p95 and the orphan
rate from the network's propagation digest, alongside victim harm; the
claim gates re-check Section V-B's ``harm == 0`` on every displacement cell
— now across multi-hop floods instead of a single broadcast — and require
that propagation was actually measured everywhere.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..api.builder import Simulation
from ..api.experiment import Claim, Experiment, ExperimentOptions, register_experiment
from ..api.frame import ResultFrame
from ..api.seeding import derive_seed
from ..api.spec import SimulationSpec
from ..api.sweep import Sweep
from ..api.workloads import VICTIM_BUY_LABEL

__all__ = [
    "DEFAULT_TOPOLOGIES",
    "DEFAULT_PEERS",
    "CONTROL_ROW",
    "PropagationExperiment",
    "propagation_jobs",
    "propagation_claims",
]

DEFAULT_TOPOLOGIES: Tuple[str, ...] = ("full_mesh", "random_k", "region_hub", "kademlia")
DEFAULT_PEERS: Tuple[int, ...] = (10, 100, 1000)
SMOKE_PEERS: Tuple[int, ...] = (10, 100)
CONTROL_ROW = "(control)"
HMS_DEFENSE = "semantic_mining"
DEFAULT_BANDWIDTH = 1_250_000.0  # 10 Mbit/s per directed link


def _cell_spec(
    topology: str, peers: int, adversary: Optional[str], buys: int, seed: int
) -> SimulationSpec:
    builder = (
        Simulation.builder()
        .scenario(HMS_DEFENSE)
        .workload("victim_market", num_victim_buys=buys, buy_interval=2.0)
        .miners(2)
        .clients(peers)
        .block_interval(13.0)
        .gossip(0.07, 0.05)
        .gas(max_transactions_per_block=12)
        .topology(topology)
        .bandwidth(DEFAULT_BANDWIDTH)
        .seed(seed)
    )
    if adversary is not None:
        builder = builder.adversary(adversary)
    return builder.build()


def propagation_jobs(
    topologies: Tuple[str, ...],
    peers: Tuple[int, ...],
    buys: int,
    trials: int,
    seed: int,
    include_control: bool = True,
) -> List[Tuple[SimulationSpec, Dict[str, Any]]]:
    """The deterministically seeded (spec, tags) grid, attack-matrix style:
    per-cell seeds derive from the root seed and the cell coordinates, so
    serial and parallel executions produce identical rows."""
    rows: List[Optional[str]] = [None] if include_control else []
    rows.append("displacement")
    jobs: List[Tuple[SimulationSpec, Dict[str, Any]]] = []
    for topology in topologies:
        for peer_count in peers:
            for adversary in rows:
                row_label = adversary if adversary is not None else CONTROL_ROW
                for trial in range(trials):
                    cell_seed = derive_seed(
                        seed, "propagation", topology, peer_count, row_label, trial
                    )
                    spec = _cell_spec(topology, peer_count, adversary, buys, cell_seed)
                    tags = {
                        "topology": topology,
                        "peers": peer_count,
                        "adversary": row_label,
                        "trial": trial,
                        "seed": cell_seed,
                    }
                    jobs.append((spec, tags))
    return jobs


def propagation_claims() -> Tuple[Claim, ...]:
    def hms_protects_at_scale(frame: ResultFrame):
        cells = frame.filter(adversary="displacement")
        if len(cells) == 0:
            return True, "n/a", "no displacement cells in the grid"
        harm = sum(cells.column("victim_harm"))
        submitted = sum(cells.column("victim_submitted"))
        return harm == 0, f"{harm}/{submitted} victim buys harmed across topologies"

    def structurally_sound(frame: ResultFrame):
        overpaid = sum(frame.column("overpaid"))
        return overpaid == 0, f"{overpaid} overpaid fills across {len(frame)} cells"

    def propagation_measured(frame: ResultFrame):
        missing = [
            row
            for row in frame.rows()
            if not row["propagation_samples"]
            or row["block_p95"] is None
            or row["block_p50"] is None
            or row["block_p95"] < row["block_p50"]
        ]
        p95s = [row["block_p95"] for row in frame.rows() if row["block_p95"] is not None]
        worst = max(p95s) if p95s else float("nan")
        return not missing, f"worst-case p95 {worst:.3f}s over {len(frame)} cells"

    return (
        Claim(
            name="Displacement causes zero victim harm under full HMS at "
            "every topology and network size",
            paper_value="Section V-B: frontrunning prevented (harm == 0)",
            check=hms_protects_at_scale,
        ),
        Claim(
            name="No cell shows an overpayment at scale",
            paper_value="mark-bound offers hold everywhere",
            check=structurally_sound,
        ),
        Claim(
            name="Block propagation is measured (p50 <= p95) in every cell",
            paper_value="propagation fast relative to the block interval",
            check=propagation_measured,
        ),
    )


@register_experiment
class PropagationExperiment(Experiment):
    """Topology x network-size sweep re-checking harm==0 under realistic
    gossip, with per-cell block-propagation p50/p95 and orphan rate.

    Overrides: ``topologies`` (list of registered names), ``peers`` (list of
    client-peer counts), ``buys`` (victim buys per cell), ``control`` (set
    falsy to drop the adversary-free row).
    """

    name = "propagation"
    description = (
        "Gossip-topology sweep at 10/100/1000 peers: harm==0 re-check plus "
        "block-propagation p50/p95 and orphan rate per cell"
    )
    default_trials = 1
    default_seed = 17
    claims = propagation_claims()
    export_columns = (
        "topology",
        "peers",
        "adversary",
        "trial",
        "seed",
        "victim_submitted",
        "victim_filled",
        "victim_harm",
        "overpaid",
        "block_p50",
        "block_p95",
        "orphan_rate",
        "propagation_samples",
        "mean_degree",
        "blocks_produced",
    )

    @staticmethod
    def _name_list(value) -> tuple:
        return (value,) if isinstance(value, str) else tuple(value)

    @staticmethod
    def _int_list(value) -> Tuple[int, ...]:
        if isinstance(value, (int, float)):
            return (int(value),)
        return tuple(int(item) for item in value)

    def plan(self, options: ExperimentOptions) -> Sweep:
        smoke = options.smoke
        topologies = self._name_list(options.override("topologies", DEFAULT_TOPOLOGIES))
        peers = self._int_list(
            options.override("peers", SMOKE_PEERS if smoke else DEFAULT_PEERS)
        )
        buys = options.override("buys", 6 if smoke else 12)
        include_control = bool(options.override("control", True))
        return Sweep.from_specs(
            propagation_jobs(
                topologies=topologies,
                peers=peers,
                buys=buys,
                trials=self.trials(options),
                seed=self.seed(options),
                include_control=include_control,
            )
        )

    def analyze(self, frame: ResultFrame, options: ExperimentOptions) -> ResultFrame:
        def victim(row, key):
            return row["summary"]["reports"][VICTIM_BUY_LABEL][key]

        def network(row, key):
            return row["summary"]["extras"].get("network", {}).get(key)

        return frame.derive(
            victim_submitted=lambda row: victim(row, "submitted"),
            victim_filled=lambda row: victim(row, "successful"),
            victim_harm=lambda row: victim(row, "submitted") - victim(row, "successful"),
            overpaid=lambda row: row["summary"]["extras"].get("overpaid", 0),
            block_p50=lambda row: network(row, "block_propagation_p50"),
            block_p95=lambda row: network(row, "block_propagation_p95"),
            orphan_rate=lambda row: network(row, "orphan_rate"),
            propagation_samples=lambda row: network(row, "propagation_samples"),
            mean_degree=lambda row: network(row, "mean_degree"),
            blocks_produced=lambda row: row["summary"]["blocks_produced"],
        )
