"""Console reporting helpers shared by the benchmark harness and examples."""

from __future__ import annotations

__all__ = ["emit_block"]


def emit_block(title: str, body: str) -> None:
    """Print a clearly delimited result block.

    Used by the benchmark harness so that
    ``pytest benchmarks/ --benchmark-only -s`` prints the same rows/series the
    paper reports, and by the examples for their own output.
    """
    bar = "=" * 78
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
