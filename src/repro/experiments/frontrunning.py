"""Frontrunning experiment: how often can an attacker exploit pending buys?

Section II-F notes that "the arbitrary transaction priority combined with
read latency also creates a vulnerability known as blockchain frontrunning";
Section V-B claims that "linking each buy transaction to a particular set
price prevents the frontrunning attack".  This experiment quantifies both
sides on the simulated network:

* an **attacker** watches the pending pool from its own peer; whenever it
  sees a victim buy, it immediately submits a price-raising ``set`` hoping
  the miner orders the rise ahead of the victim's buy;
* the victim either reads committed state (baseline) or the HMS view.

Measured outcomes per victim buy: ``filled_at_observed_terms`` (the buy
succeeded, necessarily at the terms the victim saw — the contract enforces
this), or ``rejected`` (the attack, or simple staleness, made it fail).
The frontrunning *harm* metric of interest is whether a victim ever pays a
price other than the one it observed — with mark-bound offers this is
structurally impossible, and the experiment's auditor double-checks it.

The attacker/victim wiring lives in :mod:`repro.api.workloads` as the
registered ``frontrunning`` workload; this module keeps the historical
config/result types and runs the spec through the facade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..api.engine import run_simulation
from ..api.experiment import ExperimentOptions, GridExperiment, register_experiment
from ..api.frame import ResultFrame
from ..api.spec import SimulationSpec, freeze_params
from ..api.workloads import FrontrunningAttacker, VICTIM_BUY_LABEL
from ..clients.market import READ_UNCOMMITTED
from .claims import frontrunning_claims
from .scenario import SERETH_CLIENT_SCENARIO

__all__ = [
    "FrontrunningConfig",
    "FrontrunningExperiment",
    "FrontrunningResult",
    "run_frontrunning_experiment",
    "FrontrunningAttacker",
]


@dataclass
class FrontrunningConfig:
    """Shape of the frontrunning experiment."""

    num_victim_buys: int = 40
    buy_interval: float = 2.0
    block_interval: float = 13.0
    attack_markup: int = 25
    """How much the attacker raises the price by, per attack."""
    victim_read_mode: str = READ_UNCOMMITTED
    seed: int = 0


@dataclass
class FrontrunningResult:
    """Outcome counts plus the audit verdict."""

    config: FrontrunningConfig
    victim_buys: int
    filled_at_observed_terms: int
    rejected: int
    attacks_launched: int
    overpaid: int
    """Buys that executed at terms other than the victim observed (must be 0)."""
    audit_clean: bool

    @property
    def fill_rate(self) -> float:
        return self.filled_at_observed_terms / self.victim_buys if self.victim_buys else 0.0


def frontrunning_spec(config: FrontrunningConfig) -> SimulationSpec:
    """The facade spec for a frontrunning run (victim on client-0, attacker
    on client-1, everyone on Sereth clients so the pool is observable)."""
    return SimulationSpec(
        scenario=SERETH_CLIENT_SCENARIO,
        workload="frontrunning",
        workload_params=freeze_params(
            {
                "num_victim_buys": config.num_victim_buys,
                "buy_interval": config.buy_interval,
                "attack_markup": config.attack_markup,
                "victim_read_mode": config.victim_read_mode,
            }
        ),
        num_miners=1,
        num_client_peers=2,
        block_interval=config.block_interval,
        gossip_latency=0.07,
        gossip_jitter=0.05,
        seed=config.seed,
    )


@register_experiment
class FrontrunningExperiment(GridExperiment):
    """The registry form of the frontrunning experiment: the victim runs
    under *both* read modes as a sweep dimension, and the claim gates assert
    the structural no-overpayment invariant plus the HMS-view fill advantage."""

    name = "frontrunning"
    description = (
        "Frontrunning attacker vs victim under both read modes; mark-bound "
        "offers must never fill at unobserved terms"
    )
    workload = "frontrunning"
    scenario = "sereth_client"
    base_params = {"num_victim_buys": 40, "buy_interval": 2.0, "attack_markup": 25}
    smoke_params = {"num_victim_buys": 10}
    dimensions = {"victim_read_mode": ["read_committed", "read_uncommitted"]}
    spec_fields = {
        "num_miners": 1,
        "num_client_peers": 2,
        "gossip_latency": 0.07,
        "gossip_jitter": 0.05,
    }
    default_seed = 0
    claims = frontrunning_claims()
    export_columns = (
        "victim_read_mode",
        "trial",
        "seed",
        "eta",
        "attacks_launched",
        "overpaid",
        "audit_clean",
        "blocks_produced",
        "simulated_seconds",
    )

    def analyze(self, frame: ResultFrame, options: ExperimentOptions) -> ResultFrame:
        return frame.derive(
            eta=lambda row: row["summary"]["reports"][VICTIM_BUY_LABEL]["success_rate"],
            attacks_launched=lambda row: row["summary"]["extras"]["attacks_launched"],
            overpaid=lambda row: row["summary"]["extras"]["overpaid"],
            audit_clean=lambda row: row["summary"]["extras"]["audit_clean"],
        )


def run_frontrunning_experiment(config: Optional[FrontrunningConfig] = None) -> FrontrunningResult:
    """Run the attacker-vs-victim workload and audit the committed history."""
    config = config or FrontrunningConfig()
    result = run_simulation(frontrunning_spec(config))
    report = result.reports[VICTIM_BUY_LABEL]
    return FrontrunningResult(
        config=config,
        victim_buys=report.submitted,
        filled_at_observed_terms=report.successful,
        rejected=report.committed - report.successful,
        attacks_launched=result.extras["attacks_launched"],
        overpaid=result.extras["overpaid"],
        audit_clean=result.extras["audit_clean"],
    )
