"""Frontrunning experiment: how often can an attacker exploit pending buys?

Section II-F notes that "the arbitrary transaction priority combined with
read latency also creates a vulnerability known as blockchain frontrunning";
Section V-B claims that "linking each buy transaction to a particular set
price prevents the frontrunning attack".  This experiment quantifies both
sides on the simulated network:

* an **attacker** watches the pending pool from its own peer; whenever it
  sees a victim buy, it immediately submits a price-raising ``set`` hoping
  the miner orders the rise ahead of the victim's buy;
* the victim either reads committed state (baseline) or the HMS view.

Measured outcomes per victim buy: ``filled_at_observed_terms`` (the buy
succeeded, necessarily at the terms the victim saw — the contract enforces
this), or ``rejected`` (the attack, or simple staleness, made it fail).
The frontrunning *harm* metric of interest is whether a victim ever pays a
price other than the one it observed — with mark-bound offers this is
structurally impossible, and the experiment's auditor double-checks it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..chain.genesis import DEFAULT_INITIAL_BALANCE, GenesisConfig
from ..clients.base import ContractClient
from ..clients.market import Buyer, PriceSetter, READ_COMMITTED, READ_UNCOMMITTED
from ..consensus.interval import PoissonInterval
from ..consensus.policies import ArrivalJitterPolicy
from ..contracts.sereth import BUY_SELECTOR, SET_SELECTOR, SerethContract, genesis_storage, initial_mark
from ..core.audit import ChainAuditor
from ..core.hms.fpv import SUCCESS_FLAG, compute_mark, fpv_from_calldata, fpv_to_words
from ..core.metrics import MetricsCollector
from ..crypto.addresses import address_from_label
from ..encoding.hexutil import int_from_bytes32, to_bytes32
from ..net.latency import UniformLatency
from ..net.mining import BlockProductionProcess
from ..net.network import Network
from ..net.peer import Peer, SERETH_CLIENT
from ..net.sim import Simulator

__all__ = ["FrontrunningConfig", "FrontrunningResult", "run_frontrunning_experiment"]

_SET_ABI = SerethContract.function_by_name("set").abi


@dataclass
class FrontrunningConfig:
    """Shape of the frontrunning experiment."""

    num_victim_buys: int = 40
    buy_interval: float = 2.0
    block_interval: float = 13.0
    attack_markup: int = 25
    """How much the attacker raises the price by, per attack."""
    victim_read_mode: str = READ_UNCOMMITTED
    seed: int = 0


@dataclass
class FrontrunningResult:
    """Outcome counts plus the audit verdict."""

    config: FrontrunningConfig
    victim_buys: int
    filled_at_observed_terms: int
    rejected: int
    attacks_launched: int
    overpaid: int
    """Buys that executed at terms other than the victim observed (must be 0)."""
    audit_clean: bool

    @property
    def fill_rate(self) -> float:
        return self.filled_at_observed_terms / self.victim_buys if self.victim_buys else 0.0


class FrontrunningAttacker(ContractClient):
    """Watches its peer's pool for victim buys and races them with price rises."""

    def __init__(self, label, peer, simulator, contract_address, markup, poll_interval=0.25):
        super().__init__(label, peer, simulator)
        self.contract_address = contract_address
        self.markup = markup
        self.poll_interval = poll_interval
        self.attacks_launched = 0
        self._seen_buys: set = set()
        self._running = False

    def start(self) -> None:
        self._running = True
        self.simulator.schedule_in(self.poll_interval, self._poll)

    def stop(self) -> None:
        self._running = False

    def _poll(self) -> None:
        if not self._running:
            return
        for transaction, _arrival in self.peer.pool.transactions_with_arrival():
            if transaction.to != self.contract_address or transaction.selector != BUY_SELECTOR:
                continue
            if transaction.hash in self._seen_buys or transaction.sender == self.address:
                continue
            self._seen_buys.add(transaction.hash)
            self._attack(transaction)
        self.simulator.schedule_in(self.poll_interval, self._poll)

    def _attack(self, victim_buy) -> None:
        """Submit a price rise intended to land ahead of the victim's buy.

        The attacker is not the contract owner in spirit, but the contract
        accepts sets from anyone who knows the current mark — which the
        attacker, running a Sereth peer, can read from its own HMS view.
        """
        provider = self.peer.hms_provider(self.contract_address)
        if provider is None:
            return
        view = provider.view()
        observed_price = int_from_bytes32(victim_buy.data[4 + 64 : 4 + 96])
        new_price = observed_price + self.markup
        fpv = fpv_to_words(SUCCESS_FLAG, view.mark, new_price)
        self.send_transaction(to=self.contract_address, data=_SET_ABI.encode_call(fpv))
        self.attacks_launched += 1


def run_frontrunning_experiment(config: Optional[FrontrunningConfig] = None) -> FrontrunningResult:
    """Run the attacker-vs-victim workload and audit the committed history."""
    config = config or FrontrunningConfig()
    simulator = Simulator()
    network = Network(simulator, latency=UniformLatency(0.02, 0.12, seed=config.seed), seed=config.seed)

    owner_label, victim_label, attacker_label = "market-owner", "victim", "frontrunner"
    contract = address_from_label("sereth-exchange")
    genesis = GenesisConfig.for_labels([owner_label, victim_label, attacker_label], DEFAULT_INITIAL_BALANCE)
    genesis.fund(address_from_label("miner/miner-0"))
    genesis.deploy_contract(
        contract, "Sereth", storage=genesis_storage(address_from_label(owner_label), contract)
    )

    miner_peer = network.add_peer(Peer("miner-0", genesis, client_kind=SERETH_CLIENT))
    victim_peer = network.add_peer(Peer("victim-peer", genesis, client_kind=SERETH_CLIENT))
    attacker_peer = network.add_peer(Peer("attacker-peer", genesis, client_kind=SERETH_CLIENT))
    for peer in (miner_peer, victim_peer, attacker_peer):
        peer.install_hms(contract, SET_SELECTOR)

    production = BlockProductionProcess(
        simulator, network,
        interval_model=PoissonInterval(mean=config.block_interval, seed=config.seed + 1),
        seed=config.seed + 2,
    )
    production.register_miner(
        miner_peer, policy=ArrivalJitterPolicy(jitter_seconds=4.0, seed=config.seed + 3)
    )

    owner = PriceSetter(owner_label, victim_peer, simulator, contract)
    owner.prime_mark(initial_mark(contract))
    victim = Buyer(victim_label, victim_peer, simulator, contract, read_mode=config.victim_read_mode)
    attacker = FrontrunningAttacker(
        attacker_label, attacker_peer, simulator, contract, markup=config.attack_markup
    )
    metrics = MetricsCollector()

    simulator.schedule_at(0.5, lambda: owner.set_price(100))
    for buy_index in range(config.num_victim_buys):
        at = 5.0 + buy_index * config.buy_interval
        simulator.schedule_at(
            at, lambda: metrics.watch(victim.buy(), "victim-buy", simulator.now)
        )
    attacker.start()
    production.start()

    deadline = 5.0 + config.num_victim_buys * config.buy_interval + 6 * config.block_interval
    simulator.run_until(deadline)
    attacker.stop()
    production.stop()
    metrics.resolve_from_chain(miner_peer.chain)

    # What did the victim actually pay?  A successful buy's offer equals the
    # price in force at execution by contract construction; the auditor
    # verifies that from the committed history alone.
    auditor = ChainAuditor(
        contract_address=contract,
        set_selector=SET_SELECTOR,
        buy_selector=BUY_SELECTOR,
        initial_mark=initial_mark(contract),
    )
    audit = auditor.audit_chain(miner_peer.chain)

    report = metrics.report("victim-buy")
    overpaid = len(audit.violations_of_kind("buy_wrongly_succeeded"))
    return FrontrunningResult(
        config=config,
        victim_buys=report.submitted,
        filled_at_observed_terms=report.successful,
        rejected=report.committed - report.successful,
        attacks_launched=attacker.attacks_launched,
        overpaid=overpaid,
        audit_clean=audit.is_clean,
    )
