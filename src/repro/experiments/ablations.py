"""Ablation sweeps for the factors the paper discusses qualitatively (Section V-C).

Each sweep varies one knob of the market experiment and reports the buy
transaction efficiency, giving quantitative backing to the paper's prose:

* ``sweep_semantic_miner_fraction`` — "if only a fraction of the miners were
  assisting ... there would still be benefits proportional to the
  participation" (A1 in DESIGN.md).
* ``sweep_gossip_impairment`` — "or if communication of the TxPool were
  impeded among the Sereth enabled peers" (A2).
* ``sweep_submission_interval`` — "transaction efficiency becomes more
  sensitive to the transaction interval" at high buy ratios (A3).
* ``sweep_block_interval`` — the reparameterization discussion: HMS reduces
  the significance of the block interval (A4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..analysis.stats import SummaryStats, summarize
from ..api.sweep import Sweep
from .runner import ExperimentConfig, experiment_spec
from .scenario import GETH_UNMODIFIED, SEMANTIC_MINING, SERETH_CLIENT_SCENARIO, Scenario

__all__ = [
    "AblationPoint",
    "AblationResult",
    "sweep_semantic_miner_fraction",
    "sweep_gossip_impairment",
    "sweep_submission_interval",
    "sweep_block_interval",
]


@dataclass
class AblationPoint:
    """One setting of the swept parameter, aggregated over trials."""

    parameter: float
    scenario: str
    efficiencies: List[float]
    stats: SummaryStats

    @property
    def mean_efficiency(self) -> float:
        return self.stats.mean


@dataclass
class AblationResult:
    """A full one-dimensional sweep."""

    name: str
    parameter_name: str
    points: List[AblationPoint]

    def series(self, scenario: str) -> List[AblationPoint]:
        return [point for point in self.points if point.scenario == scenario]

    def values(self, scenario: str) -> List[float]:
        return [point.mean_efficiency for point in self.series(scenario)]


def _run_point(
    base: ExperimentConfig, scenario: Scenario, trials: int, workers: int = 1, **overrides
) -> List[float]:
    jobs = []
    for trial in range(trials):
        config = replace(base, scenario=scenario, seed=base.seed + 101 * trial, **overrides)
        jobs.append((experiment_spec(config), {"trial": trial}))
    rows = Sweep.from_specs(jobs).run(workers=workers).rows
    return [row.report("buy")["success_rate"] for row in rows]


def sweep_semantic_miner_fraction(
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    trials: int = 2,
    base: Optional[ExperimentConfig] = None,
    num_miners: int = 4,
    workers: int = 1,
) -> AblationResult:
    """A1: efficiency versus the fraction of hash power running semantic mining."""
    base = base or ExperimentConfig(scenario=SEMANTIC_MINING, buys_per_set=2.0)
    points: List[AblationPoint] = []
    for fraction in fractions:
        scenario = SEMANTIC_MINING.with_semantic_fraction(fraction)
        efficiencies = _run_point(base, scenario, trials, workers=workers, num_miners=num_miners)
        points.append(
            AblationPoint(
                parameter=fraction,
                scenario="semantic_mining",
                efficiencies=efficiencies,
                stats=summarize(efficiencies),
            )
        )
    return AblationResult(
        name="semantic_miner_fraction",
        parameter_name="fraction of semantic mining power",
        points=points,
    )


def sweep_gossip_impairment(
    latencies: Sequence[float] = (0.05, 0.5, 2.0, 5.0),
    trials: int = 2,
    base: Optional[ExperimentConfig] = None,
    workers: int = 1,
) -> AblationResult:
    """A2: efficiency versus TxPool gossip latency for the Sereth-client scenario."""
    base = base or ExperimentConfig(scenario=SERETH_CLIENT_SCENARIO, buys_per_set=2.0)
    points: List[AblationPoint] = []
    for scenario in (SERETH_CLIENT_SCENARIO, SEMANTIC_MINING):
        for latency in latencies:
            efficiencies = _run_point(
                base, scenario, trials, workers=workers,
                gossip_latency=latency, gossip_jitter=latency / 2,
            )
            points.append(
                AblationPoint(
                    parameter=latency,
                    scenario=scenario.name,
                    efficiencies=efficiencies,
                    stats=summarize(efficiencies),
                )
            )
    return AblationResult(
        name="gossip_impairment",
        parameter_name="mean gossip latency (seconds)",
        points=points,
    )


def sweep_submission_interval(
    intervals: Sequence[float] = (0.25, 0.5, 1.0, 2.0),
    trials: int = 2,
    base: Optional[ExperimentConfig] = None,
    buys_per_set: float = 10.0,
    workers: int = 1,
) -> AblationResult:
    """A3: sensitivity to the buy submission interval at a high read ratio."""
    base = base or ExperimentConfig(scenario=GETH_UNMODIFIED, buys_per_set=buys_per_set)
    points: List[AblationPoint] = []
    for scenario in (GETH_UNMODIFIED, SERETH_CLIENT_SCENARIO):
        for interval in intervals:
            efficiencies = _run_point(
                base, scenario, trials, workers=workers,
                submission_interval=interval, buys_per_set=buys_per_set,
            )
            points.append(
                AblationPoint(
                    parameter=interval,
                    scenario=scenario.name,
                    efficiencies=efficiencies,
                    stats=summarize(efficiencies),
                )
            )
    return AblationResult(
        name="submission_interval",
        parameter_name="buy submission interval (seconds)",
        points=points,
    )


def sweep_block_interval(
    block_intervals: Sequence[float] = (5.0, 13.0, 30.0, 60.0),
    trials: int = 2,
    base: Optional[ExperimentConfig] = None,
    workers: int = 1,
) -> AblationResult:
    """A4: efficiency versus the block interval for baseline and HMS clients."""
    base = base or ExperimentConfig(scenario=GETH_UNMODIFIED, buys_per_set=4.0)
    points: List[AblationPoint] = []
    for scenario in (GETH_UNMODIFIED, SERETH_CLIENT_SCENARIO, SEMANTIC_MINING):
        for block_interval in block_intervals:
            efficiencies = _run_point(base, scenario, trials, workers=workers, block_interval=block_interval)
            points.append(
                AblationPoint(
                    parameter=block_interval,
                    scenario=scenario.name,
                    efficiencies=efficiencies,
                    stats=summarize(efficiencies),
                )
            )
    return AblationResult(
        name="block_interval",
        parameter_name="mean block interval (seconds)",
        points=points,
    )
