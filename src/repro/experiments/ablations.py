"""Ablation sweeps for the factors the paper discusses qualitatively (Section V-C).

Each sweep varies one knob of the market experiment and reports the buy
transaction efficiency, giving quantitative backing to the paper's prose:

* ``sweep_semantic_miner_fraction`` — "if only a fraction of the miners were
  assisting ... there would still be benefits proportional to the
  participation" (A1 in DESIGN.md).
* ``sweep_gossip_impairment`` — "or if communication of the TxPool were
  impeded among the Sereth enabled peers" (A2).
* ``sweep_submission_interval`` — "transaction efficiency becomes more
  sensitive to the transaction interval" at high buy ratios (A3).
* ``sweep_block_interval`` — the reparameterization discussion: HMS reduces
  the significance of the block interval (A4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..analysis.stats import SummaryStats, summarize
from ..api.experiment import Experiment, ExperimentOptions, register_experiment
from ..api.frame import ResultFrame
from ..api.seeding import derive_seed
from ..api.sweep import Sweep
from .claims import ablation_claims
from .runner import ExperimentConfig, experiment_spec
from .scenario import GETH_UNMODIFIED, SEMANTIC_MINING, SERETH_CLIENT_SCENARIO, Scenario

__all__ = [
    "AblationExperiment",
    "AblationPoint",
    "AblationResult",
    "ABLATION_NAMES",
    "sweep_semantic_miner_fraction",
    "sweep_gossip_impairment",
    "sweep_submission_interval",
    "sweep_block_interval",
]


@dataclass
class AblationPoint:
    """One setting of the swept parameter, aggregated over trials."""

    parameter: float
    scenario: str
    efficiencies: List[float]
    stats: SummaryStats

    @property
    def mean_efficiency(self) -> float:
        return self.stats.mean


@dataclass
class AblationResult:
    """A full one-dimensional sweep."""

    name: str
    parameter_name: str
    points: List[AblationPoint]

    def series(self, scenario: str) -> List[AblationPoint]:
        return [point for point in self.points if point.scenario == scenario]

    def values(self, scenario: str) -> List[float]:
        return [point.mean_efficiency for point in self.series(scenario)]


def _run_point(
    base: ExperimentConfig, scenario: Scenario, trials: int, workers: int = 1, **overrides
) -> List[float]:
    jobs = []
    for trial in range(trials):
        config = replace(base, scenario=scenario, seed=base.seed + 101 * trial, **overrides)
        jobs.append((experiment_spec(config), {"trial": trial}))
    rows = Sweep.from_specs(jobs).run(workers=workers).rows
    return [row.report("buy")["success_rate"] for row in rows]


ABLATION_NAMES = ("miner_fraction", "gossip", "submission_interval", "block_interval")


@register_experiment
class AblationExperiment(Experiment):
    """All four ablation sweeps behind one registered experiment.

    ``repro run ablation --set name=<which>`` picks the sweep
    (:data:`ABLATION_NAMES`; default ``miner_fraction``).  Each cell runs the
    market workload with one knob varied, tagged ``(ablation, scenario,
    parameter, trial)``, with per-cell seeds derived from the root seed and
    the cell coordinates.
    """

    name = "ablation"
    description = (
        "One-dimensional ablations of the market experiment (A1-A4): "
        "miner_fraction | gossip | submission_interval | block_interval"
    )
    default_trials = 2
    smoke_trials = 1
    default_seed = 0
    claims = ablation_claims()
    export_columns = (
        "ablation",
        "scenario",
        "parameter",
        "trial",
        "seed",
        "eta",
        "blocks_produced",
        "simulated_seconds",
    )

    def _cells(self, which: str, smoke: bool):
        """(scenario label, parameter value, scenario object, config overrides)
        for every grid cell of the chosen ablation."""
        if which == "miner_fraction":
            values = (0.0, 1.0) if smoke else (0.0, 0.25, 0.5, 0.75, 1.0)
            return [
                (
                    "semantic_mining",
                    value,
                    SEMANTIC_MINING.with_semantic_fraction(value),
                    {"num_miners": 4, "buys_per_set": 2.0},
                )
                for value in values
            ]
        if which == "gossip":
            values = (0.05, 2.0) if smoke else (0.05, 0.5, 2.0, 5.0)
            return [
                (
                    scenario.name,
                    value,
                    scenario,
                    {
                        "gossip_latency": value,
                        "gossip_jitter": value / 2,
                        "buys_per_set": 2.0,
                    },
                )
                for scenario in (SERETH_CLIENT_SCENARIO, SEMANTIC_MINING)
                for value in values
            ]
        if which == "submission_interval":
            values = (0.25, 2.0) if smoke else (0.25, 0.5, 1.0, 2.0)
            return [
                (
                    scenario.name,
                    value,
                    scenario,
                    {"submission_interval": value, "buys_per_set": 10.0},
                )
                for scenario in (GETH_UNMODIFIED, SERETH_CLIENT_SCENARIO)
                for value in values
            ]
        if which == "block_interval":
            values = (5.0, 30.0) if smoke else (5.0, 13.0, 30.0, 60.0)
            return [
                (
                    scenario.name,
                    value,
                    scenario,
                    {"block_interval": value, "buys_per_set": 4.0},
                )
                for scenario in (GETH_UNMODIFIED, SERETH_CLIENT_SCENARIO, SEMANTIC_MINING)
                for value in values
            ]
        raise KeyError(f"unknown ablation {which!r}; expected one of {ABLATION_NAMES}")

    def plan(self, options: ExperimentOptions) -> Sweep:
        which = options.override("name", "miner_fraction")
        root = self.seed(options)
        num_buys = 30 if options.smoke else 100
        jobs = []
        for label, value, scenario, overrides in self._cells(which, options.smoke):
            for trial in range(self.trials(options)):
                seed = derive_seed(root, "ablation", which, label, value, trial)
                config = replace(
                    ExperimentConfig(scenario=scenario, seed=seed, num_buys=num_buys),
                    **overrides,
                )
                tags = {
                    "ablation": which,
                    "scenario": label,
                    "parameter": value,
                    "trial": trial,
                    "seed": seed,
                }
                jobs.append((experiment_spec(config), tags))
        return Sweep.from_specs(jobs)

    def analyze(self, frame: ResultFrame, options: ExperimentOptions) -> ResultFrame:
        return frame.derive(
            eta=lambda row: row["summary"]["reports"]["buy"]["success_rate"],
        )


def sweep_semantic_miner_fraction(
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    trials: int = 2,
    base: Optional[ExperimentConfig] = None,
    num_miners: int = 4,
    workers: int = 1,
) -> AblationResult:
    """A1: efficiency versus the fraction of hash power running semantic mining."""
    base = base or ExperimentConfig(scenario=SEMANTIC_MINING, buys_per_set=2.0)
    points: List[AblationPoint] = []
    for fraction in fractions:
        scenario = SEMANTIC_MINING.with_semantic_fraction(fraction)
        efficiencies = _run_point(base, scenario, trials, workers=workers, num_miners=num_miners)
        points.append(
            AblationPoint(
                parameter=fraction,
                scenario="semantic_mining",
                efficiencies=efficiencies,
                stats=summarize(efficiencies),
            )
        )
    return AblationResult(
        name="semantic_miner_fraction",
        parameter_name="fraction of semantic mining power",
        points=points,
    )


def sweep_gossip_impairment(
    latencies: Sequence[float] = (0.05, 0.5, 2.0, 5.0),
    trials: int = 2,
    base: Optional[ExperimentConfig] = None,
    workers: int = 1,
) -> AblationResult:
    """A2: efficiency versus TxPool gossip latency for the Sereth-client scenario."""
    base = base or ExperimentConfig(scenario=SERETH_CLIENT_SCENARIO, buys_per_set=2.0)
    points: List[AblationPoint] = []
    for scenario in (SERETH_CLIENT_SCENARIO, SEMANTIC_MINING):
        for latency in latencies:
            efficiencies = _run_point(
                base, scenario, trials, workers=workers,
                gossip_latency=latency, gossip_jitter=latency / 2,
            )
            points.append(
                AblationPoint(
                    parameter=latency,
                    scenario=scenario.name,
                    efficiencies=efficiencies,
                    stats=summarize(efficiencies),
                )
            )
    return AblationResult(
        name="gossip_impairment",
        parameter_name="mean gossip latency (seconds)",
        points=points,
    )


def sweep_submission_interval(
    intervals: Sequence[float] = (0.25, 0.5, 1.0, 2.0),
    trials: int = 2,
    base: Optional[ExperimentConfig] = None,
    buys_per_set: float = 10.0,
    workers: int = 1,
) -> AblationResult:
    """A3: sensitivity to the buy submission interval at a high read ratio."""
    base = base or ExperimentConfig(scenario=GETH_UNMODIFIED, buys_per_set=buys_per_set)
    points: List[AblationPoint] = []
    for scenario in (GETH_UNMODIFIED, SERETH_CLIENT_SCENARIO):
        for interval in intervals:
            efficiencies = _run_point(
                base, scenario, trials, workers=workers,
                submission_interval=interval, buys_per_set=buys_per_set,
            )
            points.append(
                AblationPoint(
                    parameter=interval,
                    scenario=scenario.name,
                    efficiencies=efficiencies,
                    stats=summarize(efficiencies),
                )
            )
    return AblationResult(
        name="submission_interval",
        parameter_name="buy submission interval (seconds)",
        points=points,
    )


def sweep_block_interval(
    block_intervals: Sequence[float] = (5.0, 13.0, 30.0, 60.0),
    trials: int = 2,
    base: Optional[ExperimentConfig] = None,
    workers: int = 1,
) -> AblationResult:
    """A4: efficiency versus the block interval for baseline and HMS clients."""
    base = base or ExperimentConfig(scenario=GETH_UNMODIFIED, buys_per_set=4.0)
    points: List[AblationPoint] = []
    for scenario in (GETH_UNMODIFIED, SERETH_CLIENT_SCENARIO, SEMANTIC_MINING):
        for block_interval in block_intervals:
            efficiencies = _run_point(base, scenario, trials, workers=workers, block_interval=block_interval)
            points.append(
                AblationPoint(
                    parameter=block_interval,
                    scenario=scenario.name,
                    efficiencies=efficiencies,
                    stats=summarize(efficiencies),
                )
            )
    return AblationResult(
        name="block_interval",
        parameter_name="mean block interval (seconds)",
        points=points,
    )
