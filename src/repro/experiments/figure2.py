"""Figure 2: transaction efficiency η versus the READ-UNCOMMITTED / WRITE ratio.

Sweeps the buy:set ratio for the three scenarios of the paper's evaluation
(``geth_unmodified``, ``sereth_client``, ``semantic_mining``), running
several seeded trials per point and reporting the mean with a 90% confidence
interval, exactly the statistics the figure shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..analysis.plotting import ascii_chart, format_percentage, format_table
from ..analysis.stats import SummaryStats, summarize
from ..api.experiment import ExperimentOptions, GridExperiment, register_experiment
from ..api.frame import ResultFrame
from ..api.sweep import Sweep
from .claims import figure2_claims
from .runner import (
    ExperimentConfig,
    ExperimentResult,
    experiment_spec,
    result_from_simulation,
)
from .scenario import GETH_UNMODIFIED, SEMANTIC_MINING, SERETH_CLIENT_SCENARIO, Scenario

__all__ = [
    "Figure2Config",
    "Figure2Experiment",
    "Figure2Point",
    "Figure2Result",
    "run_figure2",
    "DEFAULT_RATIOS",
]

DEFAULT_RATIOS = (1.0, 2.0, 4.0, 10.0, 20.0)
"""Buy:set ratios swept; the paper varies sets from 100 down to 5 per 100 buys."""

DEFAULT_SCENARIOS = (GETH_UNMODIFIED, SERETH_CLIENT_SCENARIO, SEMANTIC_MINING)


@dataclass
class Figure2Config:
    """Sweep configuration for regenerating Figure 2."""

    ratios: Sequence[float] = DEFAULT_RATIOS
    scenarios: Sequence[Scenario] = DEFAULT_SCENARIOS
    trials: int = 3
    num_buys: int = 100
    base: ExperimentConfig = field(
        default_factory=lambda: ExperimentConfig(scenario=GETH_UNMODIFIED)
    )

    def experiment_config(self, scenario: Scenario, ratio: float, trial: int) -> ExperimentConfig:
        return replace(
            self.base,
            scenario=scenario,
            buys_per_set=ratio,
            num_buys=self.num_buys,
            seed=self.base.seed + 1000 * trial + int(ratio * 7),
        )


@dataclass
class Figure2Point:
    """One (scenario, ratio) data point aggregated over trials."""

    scenario: str
    ratio: float
    efficiencies: List[float]
    stats: SummaryStats
    results: List[ExperimentResult] = field(default_factory=list)
    set_efficiencies: List[float] = field(default_factory=list)
    """Per-trial efficiency of the ``set`` transactions (claim 4 evidence);
    populated from the sweep summaries, so it survives parallel runs where
    live results cannot."""

    @property
    def mean_efficiency(self) -> float:
        return self.stats.mean


@dataclass
class Figure2Result:
    """All points of the sweep, with table/chart rendering."""

    config: Figure2Config
    points: List[Figure2Point]

    def point(self, scenario_name: str, ratio: float) -> Figure2Point:
        for point in self.points:
            if point.scenario == scenario_name and point.ratio == ratio:
                return point
        raise KeyError(f"no point for scenario={scenario_name!r} ratio={ratio}")

    def series(self, scenario_name: str) -> List[float]:
        """Mean efficiencies for one scenario across the ratio sweep."""
        return [
            self.point(scenario_name, ratio).mean_efficiency for ratio in self.config.ratios
        ]

    def improvement_factor(self, ratio: float, over: str = "geth_unmodified",
                           scenario: str = "sereth_client") -> float:
        """How many times better ``scenario`` is than ``over`` at ``ratio``."""
        baseline = self.point(over, ratio).mean_efficiency
        improved = self.point(scenario, ratio).mean_efficiency
        if baseline <= 0:
            return float("inf") if improved > 0 else 1.0
        return improved / baseline

    # -- rendering ------------------------------------------------------------------

    def as_table(self) -> str:
        headers = ["ratio (buys:set)"] + [scenario.name for scenario in self.config.scenarios]
        rows = []
        for ratio in self.config.ratios:
            row = [f"{ratio:g}:1"]
            for scenario in self.config.scenarios:
                point = self.point(scenario.name, ratio)
                row.append(
                    f"{format_percentage(point.stats.mean)} ±{100 * point.stats.confidence_halfwidth:.1f}"
                )
            rows.append(row)
        return format_table(
            headers,
            rows,
            title="Figure 2 — transaction efficiency eta vs READ-UNCOMMITTED/WRITE ratio "
            f"({self.config.trials} trials, 90% CI)",
        )

    def as_chart(self) -> str:
        series = {
            scenario.name: self.series(scenario.name) for scenario in self.config.scenarios
        }
        labels = [f"{ratio:g}" for ratio in self.config.ratios]
        return ascii_chart(series, labels, title="eta vs buy:set ratio")


@register_experiment
class Figure2Experiment(GridExperiment):
    """Figure 2 as a declarative grid: scenario x ratio, headline-claim gated.

    The registry path (``repro run figure2``) sweeps the same grid as
    :func:`run_figure2` but through the generic experiment engine — resumable,
    frame-analyzed, and claim-checked by :func:`figure2_claims`.  Per-cell
    seeds come from the sweep engine's coordinate derivation, so the numbers
    are deterministic (serial == parallel == resumed) though not identical to
    the historical runner's hand-rolled seed offsets.
    """

    name = "figure2"
    description = (
        "Figure 2: transaction efficiency eta vs the READ-UNCOMMITTED/WRITE "
        "ratio across the three scenarios"
    )
    workload = "market"
    base_params = {"num_buys": 100, "buys_per_set": 1.0}
    smoke_params = {"num_buys": 30}
    dimensions = {
        "scenario": ["geth_unmodified", "sereth_client", "semantic_mining"],
        "buys_per_set": list(DEFAULT_RATIOS),
    }
    smoke_dimensions = {
        "scenario": ["geth_unmodified", "sereth_client", "semantic_mining"],
        "buys_per_set": [1.0, 10.0],
    }
    default_trials = 2
    smoke_trials = 2
    """Even the smoke grid keeps two trials: the headline claims are means
    over seeded repetitions, and a single 30-buy trial is too noisy to gate on."""
    default_seed = 7
    claims = figure2_claims()
    export_columns = (
        "scenario",
        "buys_per_set",
        "trial",
        "seed",
        "eta",
        "set_eta",
        "blocks_produced",
        "simulated_seconds",
    )

    def analyze(self, frame: ResultFrame, options: ExperimentOptions) -> ResultFrame:
        return frame.derive(
            eta=lambda row: row["summary"]["reports"]["buy"]["success_rate"],
            set_eta=lambda row: row["summary"]["reports"]["set"]["efficiency"],
        )


def run_figure2(
    config: Optional[Figure2Config] = None,
    keep_results: bool = False,
    workers: int = 1,
) -> Figure2Result:
    """Run the full Figure 2 sweep through the :mod:`repro.api` sweep engine.

    ``workers > 1`` executes the grid on a multiprocessing pool; the metrics
    are identical to the serial run (every cell's spec fully seeds its run),
    but live results cannot cross process boundaries, so ``keep_results``
    requires the serial path.
    """
    config = config or Figure2Config()
    jobs = []
    experiment_configs: List[ExperimentConfig] = []
    for scenario in config.scenarios:
        for ratio in config.ratios:
            for trial in range(config.trials):
                experiment = config.experiment_config(scenario, ratio, trial)
                experiment_configs.append(experiment)
                jobs.append(
                    (
                        experiment_spec(experiment),
                        {"scenario": scenario.name, "ratio": ratio, "trial": trial},
                    )
                )
    sweep_result = Sweep.from_specs(jobs).run(workers=workers, keep_results=keep_results)

    # Regroup rows (still in expansion order) into per-(scenario, ratio) points.
    rows_by_cell: Dict[tuple, List] = {}
    for row, experiment in zip(sweep_result.rows, experiment_configs):
        key = (row.tags["scenario"], row.tags["ratio"])
        rows_by_cell.setdefault(key, []).append((row, experiment))
    points: List[Figure2Point] = []
    for scenario in config.scenarios:
        for ratio in config.ratios:
            cell = rows_by_cell[(scenario.name, ratio)]
            efficiencies = [row.report("buy")["success_rate"] for row, _ in cell]
            results = [
                result_from_simulation(experiment, row.result)
                for row, experiment in cell
                if row.result is not None
            ]
            points.append(
                Figure2Point(
                    scenario=scenario.name,
                    ratio=ratio,
                    efficiencies=efficiencies,
                    stats=summarize(efficiencies),
                    results=results,
                    set_efficiencies=[row.report("set")["efficiency"] for row, _ in cell],
                )
            )
    return Figure2Result(config=config, points=points)
