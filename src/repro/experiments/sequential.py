"""The sequential-history sanity experiment (Section V, first quantitative test).

"a sequential history was properly handled by sending a series of test
transactions from the address of a single peer so that there is only one
possible history, where real time order equals nonce order equals block
order.  As expected, the transaction failure rate was zero and the
transaction efficiency η was 1.0."

Here a single account both sets the price and buys, alternating; because all
transactions share one sender, nonce order pins the block order and every
transaction must succeed regardless of scenario or miner policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..chain.genesis import GenesisConfig
from ..clients.market import PriceSetter
from ..consensus.interval import PoissonInterval
from ..consensus.policies import ArrivalJitterPolicy, RandomPolicy
from ..contracts.sereth import SerethContract, genesis_storage, initial_mark
from ..core.hms.fpv import BUY_FLAG
from ..core.metrics import MetricsCollector, ThroughputReport
from ..crypto.addresses import address_from_label
from ..encoding.hexutil import to_bytes32
from ..net.latency import UniformLatency
from ..net.mining import BlockProductionProcess
from ..net.network import Network
from ..net.peer import GETH_CLIENT, Peer
from ..net.sim import Simulator
from .runner import sereth_contract_address

__all__ = ["SequentialHistoryConfig", "SequentialHistoryResult", "run_sequential_history"]


@dataclass
class SequentialHistoryConfig:
    """A single-sender alternating set/buy workload."""

    num_pairs: int = 25
    """Number of (set, buy) pairs submitted."""
    submission_interval: float = 1.0
    block_interval: float = 13.0
    seed: int = 0
    random_miner_order: bool = True
    """Use the fully arbitrary miner ordering to show nonce order still protects
    the single-sender history."""


@dataclass
class SequentialHistoryResult:
    config: SequentialHistoryConfig
    report: ThroughputReport

    @property
    def efficiency(self) -> float:
        return self.report.efficiency


def run_sequential_history(config: Optional[SequentialHistoryConfig] = None) -> SequentialHistoryResult:
    """Run the single-sender experiment and report its efficiency."""
    config = config or SequentialHistoryConfig()
    simulator = Simulator()
    network = Network(simulator, latency=UniformLatency(0.02, 0.1, seed=config.seed), seed=config.seed)

    trader_label = "solo-trader"
    trader_address = address_from_label(trader_label)
    contract = sereth_contract_address()
    genesis = GenesisConfig.for_labels([trader_label])
    genesis.fund(address_from_label("miner/miner-0"))
    genesis.deploy_contract(contract, "Sereth", storage=genesis_storage(trader_address, contract))

    miner_peer = network.add_peer(Peer("miner-0", genesis, client_kind=GETH_CLIENT))
    client_peer = network.add_peer(Peer("client-0", genesis, client_kind=GETH_CLIENT))

    production = BlockProductionProcess(
        simulator,
        network,
        interval_model=PoissonInterval(mean=config.block_interval, seed=config.seed + 1),
        seed=config.seed + 2,
    )
    policy = (
        RandomPolicy(seed=config.seed + 3)
        if config.random_miner_order
        else ArrivalJitterPolicy(seed=config.seed + 3)
    )
    production.register_miner(miner_peer, policy=policy)

    metrics = MetricsCollector()
    # One account plays both roles: it tracks its own mark chain in program
    # order, so every set references the correct previous mark and every buy
    # references the mark/price its immediately preceding set installed.
    setter = PriceSetter(trader_label, client_peer, simulator, contract)
    setter.prime_mark(initial_mark(contract))

    def make_pair(pair_index: int):
        price = 100 + pair_index

        def fire() -> None:
            set_transaction = setter.set_price(price)
            metrics.watch(set_transaction, "set", submitted_at=set_transaction.submitted_at)
            # The buy is issued by the same account immediately after its set,
            # referencing the mark that set will install.
            offer = [BUY_FLAG, setter._last_mark, to_bytes32(price)]
            calldata = SerethContract.function_by_name("buy").abi.encode_call(offer)
            buy_transaction = setter.send_transaction(to=contract, data=calldata)
            metrics.watch(buy_transaction, "buy", submitted_at=buy_transaction.submitted_at)

        return fire

    for pair_index in range(config.num_pairs):
        simulator.schedule_at(1.0 + pair_index * config.submission_interval, make_pair(pair_index))

    production.start()
    deadline = 1.0 + config.num_pairs * config.submission_interval + 8 * config.block_interval

    def all_committed() -> bool:
        records = metrics.records()
        return len(records) == 2 * config.num_pairs and all(r.committed for r in records)

    while simulator.now < deadline and not all_committed():
        simulator.run_until(simulator.now + config.block_interval)
        metrics.resolve_from_chain(miner_peer.chain)
    production.stop()
    metrics.resolve_from_chain(miner_peer.chain)

    return SequentialHistoryResult(config=config, report=metrics.report())
