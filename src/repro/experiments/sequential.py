"""The sequential-history sanity experiment (Section V, first quantitative test).

"a sequential history was properly handled by sending a series of test
transactions from the address of a single peer so that there is only one
possible history, where real time order equals nonce order equals block
order.  As expected, the transaction failure rate was zero and the
transaction efficiency η was 1.0."

The workload itself (one account alternating set/buy) lives in
:mod:`repro.api.workloads` as the registered ``sequential`` workload; this
module keeps the historical config/result types and runs the spec through
the facade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..api.engine import run_simulation
from ..api.experiment import ExperimentOptions, GridExperiment, register_experiment
from ..api.frame import ResultFrame
from ..api.spec import SimulationSpec, freeze_params
from ..core.metrics import ThroughputReport
from .claims import sequential_claims
from .scenario import GETH_UNMODIFIED

__all__ = [
    "SequentialHistoryConfig",
    "SequentialHistoryExperiment",
    "SequentialHistoryResult",
    "run_sequential_history",
]


@dataclass
class SequentialHistoryConfig:
    """A single-sender alternating set/buy workload."""

    num_pairs: int = 25
    """Number of (set, buy) pairs submitted."""
    submission_interval: float = 1.0
    block_interval: float = 13.0
    seed: int = 0
    random_miner_order: bool = True
    """Use the fully arbitrary miner ordering to show nonce order still protects
    the single-sender history."""


@dataclass
class SequentialHistoryResult:
    config: SequentialHistoryConfig
    report: ThroughputReport

    @property
    def efficiency(self) -> float:
        return self.report.efficiency


def sequential_spec(config: SequentialHistoryConfig) -> SimulationSpec:
    """The facade spec for a sequential-history run."""
    return SimulationSpec(
        scenario=GETH_UNMODIFIED,
        workload="sequential",
        workload_params=freeze_params(
            {
                "num_pairs": config.num_pairs,
                "submission_interval": config.submission_interval,
            }
        ),
        num_miners=1,
        num_client_peers=1,
        block_interval=config.block_interval,
        gossip_latency=0.06,
        gossip_jitter=0.04,
        miner_policy="random" if config.random_miner_order else "arrival_jitter",
        seed=config.seed,
    )


@register_experiment
class SequentialHistoryExperiment(GridExperiment):
    """The registry form of the sequential-history sanity test: a single
    sender under the fully arbitrary miner ordering must still commit a
    perfect history (claim gate: η = 1.0 for both transaction labels)."""

    name = "sequential"
    description = (
        "Sequential-history sanity test: one sender, nonce order pins the "
        "history, eta must be 1.0"
    )
    workload = "sequential"
    scenario = "geth_unmodified"
    base_params = {"num_pairs": 25, "submission_interval": 1.0}
    smoke_params = {"num_pairs": 8}
    spec_fields = {
        "num_miners": 1,
        "num_client_peers": 1,
        "gossip_latency": 0.06,
        "gossip_jitter": 0.04,
        "miner_policy": "random",
    }
    default_seed = 0
    claims = sequential_claims()
    export_columns = (
        "trial",
        "seed",
        "buy_eta",
        "set_eta",
        "blocks_produced",
        "simulated_seconds",
    )

    def analyze(self, frame: ResultFrame, options: ExperimentOptions) -> ResultFrame:
        return frame.derive(
            buy_eta=lambda row: row["summary"]["reports"]["buy"]["efficiency"],
            set_eta=lambda row: row["summary"]["reports"]["set"]["efficiency"],
        )


def run_sequential_history(config: Optional[SequentialHistoryConfig] = None) -> SequentialHistoryResult:
    """Run the single-sender experiment and report its efficiency."""
    config = config or SequentialHistoryConfig()
    result = run_simulation(sequential_spec(config))
    return SequentialHistoryResult(config=config, report=result.metrics.report())
