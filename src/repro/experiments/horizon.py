"""Horizon: bounded-memory long runs — peak RSS versus the retention window.

The paper's claims are about *steady-state* behaviour of an HMS-enabled
chain, so the reproduction must be able to run long horizons without memory
growing with history.  This experiment drives the ``steady_state`` workload
for tens of thousands of blocks at several ``retention`` settings — plus one
unretained leg as the control — and measures each leg's **peak RSS** with
``resource.getrusage``.

Measurement protocol: ``ru_maxrss`` is a process-lifetime high-water mark,
so legs cannot share a process (the first leg's peak would mask every later
leg).  :meth:`HorizonExperiment.execute` therefore overrides the generic
sweep engine and runs every leg in a **fresh spawned child process**, each
reporting its own summary, peak RSS, and wall time over a pipe.  The rows
then flow through the ordinary analyze/claims/export lifecycle.

The claim gates encode the memory model's contract:

* every retained leg holds peak RSS under the committed ceiling
  (:data:`RSS_CEILING_MB`);
* the unretained control measurably exceeds the retained footprint
  (history growth is real, not noise);
* pruning changes no outcome — every leg commits every transaction.

``repro run horizon --smoke`` runs two 50k-block legs in well under 30
seconds; the full grid adds a deeper window at a 100k-block horizon.
``benchmarks/horizon_perf.py`` records the same legs (blocks/s and peak RSS)
into ``BENCH_horizon.json``, and CI's ``horizon-smoke`` job fails the build
if the ceiling is breached.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from dataclasses import replace
from typing import Any, Dict, List, Tuple

from ..api.experiment import (
    Claim,
    ExperimentOptions,
    GridExperiment,
    register_experiment,
)
from ..api.frame import ResultFrame
from ..api.sweep import Sweep, SweepResult, SweepRow

__all__ = [
    "HorizonExperiment",
    "RSS_CEILING_MB",
    "UNRETAINED_EXCESS_FACTOR",
    "horizon_claims",
]

RSS_CEILING_MB = 128.0
"""The committed peak-RSS ceiling for every retained leg (50k–100k blocks).

Calibrated headroom: a retained 50k-block leg peaks around 80 MB (interpreter
+ bounded caches at their plateau), while the unretained control exceeds
180 MB and keeps growing with the horizon.  The ceiling sits between the two
with ~50% margin each way so runner-to-runner variance cannot flip the gate.
"""

UNRETAINED_EXCESS_FACTOR = 1.15
"""How much larger the unretained control's peak must be than the *largest*
retained peak for history growth to count as measured rather than noise."""

_LEG_TIMEOUT_SECONDS = 1800.0
"""Hard cap on one child leg; generous — the 100k-block leg takes ~20s."""


def _run_leg(spec, connection) -> None:
    """Child-process entry point: run one leg, report over ``connection``.

    Runs in a freshly *spawned* interpreter so ``ru_maxrss`` reflects this
    leg alone (the high-water mark of a forked child starts at the parent's,
    which would make every retained leg inherit the planner's footprint).
    """
    try:
        import resource

        # run_simulation is imported through the facade so workload
        # registration has happened in this fresh interpreter.
        from ..api import run_simulation

        started = time.perf_counter()
        result = run_simulation(spec)
        wall = time.perf_counter() - started
        summary = result.summary()
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is kilobytes on Linux, bytes on macOS.
        peak_mb = peak / (1024.0 * 1024.0) if sys.platform == "darwin" else peak / 1024.0
        summary["horizon"] = {
            "peak_rss_mb": round(peak_mb, 1),
            "wall_seconds": round(wall, 3),
            "blocks_per_second": round(summary["blocks_produced"] / max(wall, 1e-9), 1),
        }
        connection.send({"summary": summary})
    except BaseException as error:  # noqa: BLE001 - must cross the pipe
        connection.send({"error": f"{type(error).__name__}: {error}"})
    finally:
        connection.close()


def _column(frame: ResultFrame, retained: bool) -> List[Dict[str, Any]]:
    """The frame's rows split by whether their leg ran with retention."""
    return [
        row
        for row in frame.rows()
        if (row["retention"] is not None) == retained
    ]


def horizon_claims() -> Tuple[Claim, ...]:
    """The memory-model contract as claim gates (see the module docstring)."""

    def bounded(frame: ResultFrame):
        peaks = [row["peak_rss_mb"] for row in _column(frame, retained=True)]
        worst = max(peaks)
        return (
            worst <= RSS_CEILING_MB,
            f"max retained peak {worst:.1f} MB",
            f"ceiling {RSS_CEILING_MB:.0f} MB over {len(peaks)} retained leg(s)",
        )

    def unretained_exceeds(frame: ResultFrame):
        retained = max(row["peak_rss_mb"] for row in _column(frame, retained=True))
        control = min(row["peak_rss_mb"] for row in _column(frame, retained=False))
        return (
            control >= UNRETAINED_EXCESS_FACTOR * retained,
            f"unretained {control:.1f} MB vs retained {retained:.1f} MB "
            f"({control / retained:.2f}x)",
            f"required factor {UNRETAINED_EXCESS_FACTOR}",
        )

    def outcomes_unchanged(frame: ResultFrame):
        shortfalls = []
        for row in frame.rows():
            target = row["summary"]["extras"]["num_blocks"]
            if row["blocks_produced"] < target or row["efficiency"] != 1.0:
                shortfalls.append(
                    f"retention={row['retention']}: {row['blocks_produced']} blocks, "
                    f"eta={row['efficiency']}"
                )
        detail = "pruned and unpruned legs commit every transaction"
        if shortfalls:
            return (False, "; ".join(shortfalls), detail)
        fewest = min(row["blocks_produced"] for row in frame.rows())
        return (True, f"every leg produced >= {fewest} blocks at eta=1.0", detail)

    return (
        Claim(
            name="retention holds the RSS ceiling",
            paper_value=f"steady-state memory is a budget (<= {RSS_CEILING_MB:.0f} MB)",
            check=bounded,
        ),
        Claim(
            name="unretained history measurably exceeds it",
            paper_value="unbounded history grows with the horizon",
            check=unretained_exceeds,
        ),
        Claim(
            name="pruning changes no outcome",
            paper_value="retention is an observer knob, not a consensus change",
            check=outcomes_unchanged,
        ),
    )


@register_experiment
class HorizonExperiment(GridExperiment):
    """Long-horizon memory profile: peak RSS across retention settings.

    A grid over ``retention`` (``None`` = the unbounded control) on the
    ``steady_state`` workload, with execution overridden to one fresh child
    process per leg (see :func:`_run_leg` for why).  Legs that retain also
    turn on streaming metrics — the two halves of the bounded-memory story
    are exercised together, the way a real long run would configure them.
    """

    name = "horizon"
    description = (
        "Bounded-memory long horizons: peak RSS vs the retention window "
        "over a 50k+-block steady-state run"
    )
    workload = "steady_state"
    base_params = {"num_blocks": 100_000, "blocks_per_set": 8}
    smoke_params = {"num_blocks": 50_000}
    spec_fields = {
        "num_miners": 1,
        "num_client_peers": 1,
        "block_interval": 2.0,
        "fixed_block_interval": True,
    }
    dimensions = {"retention": [64, 512, None]}
    smoke_dimensions = {"retention": [64, None]}
    default_trials = 1
    smoke_trials = 1
    default_seed = 11
    claims = horizon_claims()
    export_columns = (
        "retention",
        "trial",
        "seed",
        "blocks_produced",
        "peak_rss_mb",
        "blocks_per_second",
        "wall_seconds",
        "efficiency",
    )

    def plan(self, options: ExperimentOptions) -> Sweep:
        sweep = super().plan(options)
        jobs = []
        for spec, tags in sweep.jobs():
            if spec.retention is not None:
                # Retained legs stream their metrics too: a window of
                # ~256 blocks of simulated time folds whole-run row lists
                # into a few hundred bounded aggregates.
                spec = replace(spec, metrics_window=256.0 * spec.block_interval)
            jobs.append((spec, tags))
        return Sweep.from_specs(jobs)

    def execute(self, options: ExperimentOptions, sweep: Sweep) -> SweepResult:
        if options.checkpoint is not None:
            raise ValueError(
                "the horizon experiment measures per-leg peak RSS in fresh "
                "child processes and does not support checkpoints"
            )
        context = multiprocessing.get_context("spawn")
        rows: List[SweepRow] = []
        for spec, tags in sweep.jobs():
            receiver, sender = context.Pipe(duplex=False)
            process = context.Process(target=_run_leg, args=(spec, sender))
            process.start()
            sender.close()
            try:
                if not receiver.poll(_LEG_TIMEOUT_SECONDS):
                    process.terminate()
                    raise RuntimeError(
                        f"horizon leg {tags} reported nothing within "
                        f"{_LEG_TIMEOUT_SECONDS:.0f}s"
                    )
                payload = receiver.recv()
            except EOFError:
                raise RuntimeError(
                    f"horizon leg {tags} died without reporting "
                    f"(exit code {process.exitcode})"
                ) from None
            finally:
                process.join()
                receiver.close()
            if "error" in payload:
                raise RuntimeError(f"horizon leg {tags} failed: {payload['error']}")
            rows.append(SweepRow(tags=tags, summary=payload["summary"]))
        return SweepResult(rows=rows)

    def analyze(self, frame: ResultFrame, options: ExperimentOptions) -> ResultFrame:
        return frame.derive(
            peak_rss_mb=lambda row: row["summary"]["horizon"]["peak_rss_mb"],
            blocks_per_second=lambda row: row["summary"]["horizon"]["blocks_per_second"],
            wall_seconds=lambda row: row["summary"]["horizon"]["wall_seconds"],
        )
