"""Experiment harness: the paper's experiments as registered plugins.

Importing this package registers every shipped experiment in
:data:`repro.api.experiment.EXPERIMENT_REGISTRY` (``figure2``,
``sequential``, ``frontrunning``, ``oracle``, ``ablation``,
``attack_matrix``, ``propagation``, ``horizon``, ``chaos``), alongside the historical
per-experiment entry points,
which remain as thin wrappers."""

from .ablations import (
    AblationExperiment,
    AblationPoint,
    AblationResult,
    sweep_block_interval,
    sweep_gossip_impairment,
    sweep_semantic_miner_fraction,
    sweep_submission_interval,
)
from .attack_matrix import (
    AttackMatrixCell,
    AttackMatrixConfig,
    AttackMatrixExperiment,
    AttackMatrixResult,
    run_attack_matrix,
)
from .chaos import (
    ChaosExperiment,
    chaos_claims,
    chaos_jobs,
)
from .claims import ClaimCheck, check_headline_claims
from .figure2 import (
    DEFAULT_RATIOS,
    Figure2Config,
    Figure2Experiment,
    Figure2Point,
    Figure2Result,
    run_figure2,
)
from .frontrunning import (
    FrontrunningConfig,
    FrontrunningExperiment,
    FrontrunningResult,
    run_frontrunning_experiment,
)
from .horizon import (
    HorizonExperiment,
    RSS_CEILING_MB,
    UNRETAINED_EXCESS_FACTOR,
    horizon_claims,
)
# Imported for its registration side effect (the "oracle" experiment).  Bound
# as a module, not an attribute: when the import chain *starts* at
# repro.oracle, that module is still mid-execution here and its class names
# do not exist yet — registration completes when its own import finishes.
from ..oracle import comparison as _oracle_comparison  # noqa: F401
from .propagation import (
    DEFAULT_TOPOLOGIES,
    PropagationExperiment,
    propagation_claims,
    propagation_jobs,
)
from .runner import (
    ExperimentConfig,
    ExperimentResult,
    run_market_experiment,
    sereth_contract_address,
)
from .scenario import (
    GETH_UNMODIFIED,
    SCENARIOS,
    SEMANTIC_MINING,
    SERETH_CLIENT_SCENARIO,
    Scenario,
    scenario_by_name,
)
from .sequential import (
    SequentialHistoryConfig,
    SequentialHistoryExperiment,
    SequentialHistoryResult,
    run_sequential_history,
)

__all__ = [
    "AblationExperiment",
    "AblationPoint",
    "AblationResult",
    "sweep_block_interval",
    "sweep_gossip_impairment",
    "sweep_semantic_miner_fraction",
    "sweep_submission_interval",
    "AttackMatrixCell",
    "AttackMatrixConfig",
    "AttackMatrixExperiment",
    "AttackMatrixResult",
    "run_attack_matrix",
    "ChaosExperiment",
    "chaos_claims",
    "chaos_jobs",
    "ClaimCheck",
    "check_headline_claims",
    "FrontrunningConfig",
    "FrontrunningExperiment",
    "FrontrunningResult",
    "run_frontrunning_experiment",
    "HorizonExperiment",
    "RSS_CEILING_MB",
    "UNRETAINED_EXCESS_FACTOR",
    "horizon_claims",
    "DEFAULT_RATIOS",
    "Figure2Config",
    "Figure2Experiment",
    "Figure2Point",
    "Figure2Result",
    "run_figure2",
    "DEFAULT_TOPOLOGIES",
    "PropagationExperiment",
    "propagation_claims",
    "propagation_jobs",
    "ExperimentConfig",
    "ExperimentResult",
    "run_market_experiment",
    "sereth_contract_address",
    "GETH_UNMODIFIED",
    "SCENARIOS",
    "SEMANTIC_MINING",
    "SERETH_CLIENT_SCENARIO",
    "Scenario",
    "scenario_by_name",
    "SequentialHistoryConfig",
    "SequentialHistoryExperiment",
    "SequentialHistoryResult",
    "run_sequential_history",
]
