"""Experiment harness: scenarios, the market experiment runner, and the paper's sweeps."""

from .ablations import (
    AblationPoint,
    AblationResult,
    sweep_block_interval,
    sweep_gossip_impairment,
    sweep_semantic_miner_fraction,
    sweep_submission_interval,
)
from .attack_matrix import (
    AttackMatrixCell,
    AttackMatrixConfig,
    AttackMatrixResult,
    run_attack_matrix,
)
from .claims import ClaimCheck, check_headline_claims
from .figure2 import DEFAULT_RATIOS, Figure2Config, Figure2Point, Figure2Result, run_figure2
from .frontrunning import (
    FrontrunningConfig,
    FrontrunningResult,
    run_frontrunning_experiment,
)
from .runner import (
    ExperimentConfig,
    ExperimentResult,
    run_market_experiment,
    sereth_contract_address,
)
from .scenario import (
    GETH_UNMODIFIED,
    SCENARIOS,
    SEMANTIC_MINING,
    SERETH_CLIENT_SCENARIO,
    Scenario,
    scenario_by_name,
)
from .sequential import (
    SequentialHistoryConfig,
    SequentialHistoryResult,
    run_sequential_history,
)

__all__ = [
    "AblationPoint",
    "AblationResult",
    "sweep_block_interval",
    "sweep_gossip_impairment",
    "sweep_semantic_miner_fraction",
    "sweep_submission_interval",
    "AttackMatrixCell",
    "AttackMatrixConfig",
    "AttackMatrixResult",
    "run_attack_matrix",
    "ClaimCheck",
    "check_headline_claims",
    "FrontrunningConfig",
    "FrontrunningResult",
    "run_frontrunning_experiment",
    "DEFAULT_RATIOS",
    "Figure2Config",
    "Figure2Point",
    "Figure2Result",
    "run_figure2",
    "ExperimentConfig",
    "ExperimentResult",
    "run_market_experiment",
    "sereth_contract_address",
    "GETH_UNMODIFIED",
    "SCENARIOS",
    "SEMANTIC_MINING",
    "SERETH_CLIENT_SCENARIO",
    "Scenario",
    "scenario_by_name",
    "SequentialHistoryConfig",
    "SequentialHistoryResult",
    "run_sequential_history",
]
