"""The experiment runner: build a network, run the market workload, measure.

One call to :func:`run_market_experiment` produces one data point of
Figure 2: it stands up a private network (miners + client peers), deploys
the Sereth contract, schedules the buy/set workload for the requested
buy:set ratio, runs the discrete-event simulation until every watched
transaction has been committed (or the time cap is hit), and returns the
state-throughput metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..chain.genesis import DEFAULT_INITIAL_BALANCE, GenesisConfig
from ..clients.market import Buyer, PriceSetter
from ..consensus.interval import FixedInterval, PoissonInterval
from ..consensus.miner import MinerConfig
from ..consensus.policies import ArrivalJitterPolicy
from ..contracts.sereth import BUY_SELECTOR, SET_SELECTOR, genesis_storage, initial_mark
from ..core.hms.process import HMSConfig
from ..core.hms.semantic import SemanticMiningConfig, SemanticMiningPolicy
from ..core.metrics import MetricsCollector, ThroughputReport
from ..crypto.addresses import Address, address_from_label
from ..net.latency import UniformLatency
from ..net.mining import BlockProductionProcess
from ..net.network import Network
from ..net.peer import Peer, SERETH_CLIENT
from ..net.sim import Simulator
from ..workloads.market import BUY_LABEL, MarketWorkload, MarketWorkloadConfig, SET_LABEL
from ..workloads.prices import PriceProcess, RandomWalkPrices
from .scenario import Scenario

__all__ = ["ExperimentConfig", "ExperimentResult", "run_market_experiment"]

OWNER_LABEL = "owner"


@dataclass
class ExperimentConfig:
    """Everything needed to produce one data point."""

    scenario: Scenario
    buys_per_set: float = 1.0
    num_buys: int = 100
    submission_interval: float = 1.0
    block_interval: float = 13.0
    fixed_block_interval: bool = False
    num_buyers: int = 4
    num_client_peers: int = 2
    num_miners: int = 1
    gossip_latency: float = 0.08
    gossip_jitter: float = 0.06
    transaction_loss_rate: float = 0.0
    miner_order_jitter: float = 4.0
    """How much the baseline miner reorders equal-priced transactions from
    different senders (seconds); models the geth-1.8 price heap whose tie
    breaking is unrelated to arrival order.  Semantic miners ignore it."""
    block_gas_limit: int = 30_000_000
    max_transactions_per_block: Optional[int] = None
    transaction_gas_limit: int = 200_000
    initial_price: int = 100
    price_max_step: int = 5
    seed: int = 0
    start_time: float = 30.0
    settle_blocks: int = 6
    """Extra block intervals to run after the last submission so stragglers commit."""
    max_duration: Optional[float] = None

    @property
    def duration_cap(self) -> float:
        if self.max_duration is not None:
            return self.max_duration
        window = self.num_buys * self.submission_interval
        return self.start_time + window + self.settle_blocks * self.block_interval + 60.0


@dataclass
class ExperimentResult:
    """Metrics and artefacts of one experiment run."""

    config: ExperimentConfig
    buy_report: ThroughputReport
    set_report: ThroughputReport
    blocks_produced: int
    simulated_seconds: float
    contract: Address
    metrics: MetricsCollector
    peers: List[Peer] = field(default_factory=list)

    @property
    def efficiency(self) -> float:
        """Transaction efficiency eta of the buys — the Figure 2 y-axis."""
        return self.buy_report.efficiency

    def summary(self) -> Dict[str, object]:
        return {
            "scenario": self.config.scenario.name,
            "buys_per_set": self.config.buys_per_set,
            "seed": self.config.seed,
            "efficiency": self.efficiency,
            "buys_successful": self.buy_report.successful,
            "buys_committed": self.buy_report.committed,
            "sets_successful": self.set_report.successful,
            "sets_committed": self.set_report.committed,
            "blocks": self.blocks_produced,
            "simulated_seconds": self.simulated_seconds,
        }


SERETH_CONTRACT_LABEL = "sereth-exchange"


def sereth_contract_address() -> Address:
    """The fixed address the experiments pre-deploy the Sereth exchange at."""
    return address_from_label(SERETH_CONTRACT_LABEL)


def _build_genesis(config: ExperimentConfig) -> GenesisConfig:
    labels = [OWNER_LABEL] + [f"buyer-{index}" for index in range(config.num_buyers)]
    genesis = GenesisConfig.for_labels(labels, balance=DEFAULT_INITIAL_BALANCE)
    for miner_index in range(config.num_miners):
        genesis.fund(address_from_label(f"miner/miner-{miner_index}"))
    owner_address = address_from_label(OWNER_LABEL)
    contract = sereth_contract_address()
    genesis.deploy_contract(contract, "Sereth", storage=genesis_storage(owner_address, contract))
    return genesis


def _build_peers(config: ExperimentConfig, genesis: GenesisConfig, network: Network) -> Dict[str, Peer]:
    peers: Dict[str, Peer] = {}
    for miner_index in range(config.num_miners):
        peer_id = f"miner-{miner_index}"
        peers[peer_id] = network.add_peer(
            Peer(peer_id, genesis, client_kind=config.scenario.client_kind)
        )
    for client_index in range(config.num_client_peers):
        peer_id = f"client-{client_index}"
        peers[peer_id] = network.add_peer(
            Peer(peer_id, genesis, client_kind=config.scenario.client_kind)
        )
    return peers


def run_market_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one data point of the dynamic-pricing market experiment."""
    scenario = config.scenario
    simulator = Simulator()
    latency = UniformLatency(
        low=max(config.gossip_latency - config.gossip_jitter, 0.001),
        high=config.gossip_latency + config.gossip_jitter,
        seed=config.seed,
    )
    network = Network(
        simulator,
        latency=latency,
        transaction_loss_rate=config.transaction_loss_rate,
        seed=config.seed,
    )
    genesis = _build_genesis(config)
    peers = _build_peers(config, genesis, network)

    client_peers = [peers[f"client-{index}"] for index in range(config.num_client_peers)]
    owner_peer = client_peers[0]
    sereth_address = sereth_contract_address()

    # HMS/RAA is a property of the Sereth client software: install it on every
    # Sereth peer, for the contract the experiment is about.
    if scenario.client_kind == SERETH_CLIENT:
        for peer in peers.values():
            peer.install_hms(sereth_address, SET_SELECTOR)

    # Mining.
    interval_model = (
        FixedInterval(config.block_interval)
        if config.fixed_block_interval
        else PoissonInterval(mean=config.block_interval, seed=config.seed + 1)
    )
    production = BlockProductionProcess(
        simulator, network, interval_model=interval_model, seed=config.seed + 2
    )
    semantic_config = SemanticMiningConfig(
        hms=HMSConfig(contract_address=sereth_address, set_selector=SET_SELECTOR),
        buy_selectors=(BUY_SELECTOR,),
    )
    semantic_miner_count = round(config.num_miners * scenario.semantic_miner_fraction)
    miner_limits = MinerConfig(
        gas_limit=config.block_gas_limit,
        max_transactions=config.max_transactions_per_block,
    )
    for miner_index in range(config.num_miners):
        peer = peers[f"miner-{miner_index}"]
        use_semantic = scenario.semantic_mining and miner_index < semantic_miner_count
        policy = (
            SemanticMiningPolicy(semantic_config)
            if use_semantic
            else ArrivalJitterPolicy(
                jitter_seconds=config.miner_order_jitter, seed=config.seed + 10 + miner_index
            )
        )
        production.register_miner(
            peer,
            policy=policy,
            miner_address=address_from_label(f"miner/{peer.peer_id}"),
            config=miner_limits,
        )

    # Clients.
    metrics = MetricsCollector()
    setter = PriceSetter(
        OWNER_LABEL, owner_peer, simulator, sereth_address,
        gas_limit=config.transaction_gas_limit,
    )
    setter.prime_mark(initial_mark(sereth_address))
    buyers = [
        Buyer(
            f"buyer-{index}",
            client_peers[index % len(client_peers)],
            simulator,
            sereth_address,
            read_mode=scenario.buyer_read_mode,
            gas_limit=config.transaction_gas_limit,
        )
        for index in range(config.num_buyers)
    ]

    # The Sereth contract is pre-deployed in the genesis state (the exchange
    # exists before trading opens); the workload starts with the opening price.
    workload_config = MarketWorkloadConfig(
        num_buys=config.num_buys,
        buys_per_set=config.buys_per_set,
        submission_interval=config.submission_interval,
        start_time=config.start_time,
        initial_price=config.initial_price,
    )
    prices: PriceProcess = RandomWalkPrices(
        initial=config.initial_price, max_step=config.price_max_step, seed=config.seed + 3
    )
    workload = MarketWorkload(workload_config, setter, buyers, metrics, prices=prices)
    workload.schedule(simulator, deploy_time=0.2)

    production.start()

    # Run until every watched buy is committed (or the cap is reached).
    def all_buys_committed() -> bool:
        records = metrics.records(BUY_LABEL)
        return len(records) == config.num_buys and all(record.committed for record in records)

    end_of_submissions = workload.end_of_submissions
    simulator.run_until(end_of_submissions)
    while simulator.now < config.duration_cap and not all_buys_committed():
        simulator.run_until(simulator.now + config.block_interval)
        # Resolve incrementally so the loop can terminate as soon as possible.
        reference_chain = peers["miner-0"].chain
        metrics.resolve_from_chain(reference_chain)
    production.stop()

    reference_chain = peers["miner-0"].chain
    metrics.resolve_from_chain(reference_chain)
    buy_report = metrics.report(BUY_LABEL)
    set_report = metrics.report(SET_LABEL)
    return ExperimentResult(
        config=config,
        buy_report=buy_report,
        set_report=set_report,
        blocks_produced=production.blocks_produced,
        simulated_seconds=simulator.now,
        contract=sereth_address,
        metrics=metrics,
        peers=list(peers.values()),
    )
