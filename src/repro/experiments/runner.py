"""The market experiment runner, rebuilt on the :mod:`repro.api` facade.

One call to :func:`run_market_experiment` produces one data point of
Figure 2.  The network wiring that used to live here — genesis, peers,
miners, HMS installation, the run loop — is now owned by
:func:`repro.api.engine.run_simulation`; this module only translates the
historical :class:`ExperimentConfig` into a :class:`~repro.api.SimulationSpec`
for the ``market`` workload and adapts the result back, preserving the exact
metrics (and seeds) of the original runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..api.engine import SimulationResult, run_simulation
from ..api.spec import SimulationSpec, freeze_params
from ..api.workloads import (
    OWNER_LABEL,
    SERETH_CONTRACT_LABEL,
    sereth_exchange_address,
)
from ..core.metrics import MetricsCollector, ThroughputReport
from ..crypto.addresses import Address
from ..net.peer import Peer
from ..workloads.market import BUY_LABEL, SET_LABEL
from .scenario import Scenario

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "run_market_experiment",
    "experiment_spec",
    "result_from_simulation",
    "sereth_contract_address",
]


def sereth_contract_address() -> Address:
    """The fixed address the experiments pre-deploy the Sereth exchange at."""
    return sereth_exchange_address()


@dataclass
class ExperimentConfig:
    """Everything needed to produce one data point."""

    scenario: Scenario
    buys_per_set: float = 1.0
    num_buys: int = 100
    submission_interval: float = 1.0
    block_interval: float = 13.0
    fixed_block_interval: bool = False
    num_buyers: int = 4
    num_client_peers: int = 2
    num_miners: int = 1
    gossip_latency: float = 0.08
    gossip_jitter: float = 0.06
    transaction_loss_rate: float = 0.0
    miner_order_jitter: float = 4.0
    """How much the baseline miner reorders equal-priced transactions from
    different senders (seconds); models the geth-1.8 price heap whose tie
    breaking is unrelated to arrival order.  Semantic miners ignore it."""
    block_gas_limit: int = 30_000_000
    max_transactions_per_block: Optional[int] = None
    transaction_gas_limit: int = 200_000
    initial_price: int = 100
    price_max_step: int = 5
    seed: int = 0
    start_time: float = 30.0
    settle_blocks: int = 6
    """Extra block intervals to run after the last submission so stragglers commit."""
    max_duration: Optional[float] = None

    @property
    def duration_cap(self) -> float:
        if self.max_duration is not None:
            return self.max_duration
        window = self.num_buys * self.submission_interval
        return self.start_time + window + self.settle_blocks * self.block_interval + 60.0


@dataclass
class ExperimentResult:
    """Metrics and artefacts of one experiment run."""

    config: ExperimentConfig
    buy_report: ThroughputReport
    set_report: ThroughputReport
    blocks_produced: int
    simulated_seconds: float
    contract: Address
    metrics: MetricsCollector
    peers: List[Peer] = field(default_factory=list)

    @property
    def efficiency(self) -> float:
        """Transaction efficiency eta of the buys — the Figure 2 y-axis."""
        return self.buy_report.efficiency

    def summary(self) -> Dict[str, object]:
        return {
            "scenario": self.config.scenario.name,
            "buys_per_set": self.config.buys_per_set,
            "seed": self.config.seed,
            "efficiency": self.efficiency,
            "buys_successful": self.buy_report.successful,
            "buys_committed": self.buy_report.committed,
            "sets_successful": self.set_report.successful,
            "sets_committed": self.set_report.committed,
            "blocks": self.blocks_produced,
            "simulated_seconds": self.simulated_seconds,
        }


def experiment_spec(config: ExperimentConfig) -> SimulationSpec:
    """Translate an ExperimentConfig into the facade's SimulationSpec."""
    return SimulationSpec(
        scenario=config.scenario,
        workload="market",
        workload_params=freeze_params(
            {
                "num_buys": config.num_buys,
                "buys_per_set": config.buys_per_set,
                "submission_interval": config.submission_interval,
                "start_time": config.start_time,
                "initial_price": config.initial_price,
                "price_max_step": config.price_max_step,
                "num_buyers": config.num_buyers,
            }
        ),
        num_miners=config.num_miners,
        num_client_peers=config.num_client_peers,
        block_interval=config.block_interval,
        fixed_block_interval=config.fixed_block_interval,
        gossip_latency=config.gossip_latency,
        gossip_jitter=config.gossip_jitter,
        transaction_loss_rate=config.transaction_loss_rate,
        miner_order_jitter=config.miner_order_jitter,
        block_gas_limit=config.block_gas_limit,
        max_transactions_per_block=config.max_transactions_per_block,
        transaction_gas_limit=config.transaction_gas_limit,
        seed=config.seed,
        settle_blocks=config.settle_blocks,
        max_duration=config.max_duration,
    )


def result_from_simulation(
    config: ExperimentConfig, simulation: SimulationResult
) -> ExperimentResult:
    """Adapt a facade result back into the historical ExperimentResult."""
    return ExperimentResult(
        config=config,
        buy_report=simulation.reports[BUY_LABEL],
        set_report=simulation.reports[SET_LABEL],
        blocks_produced=simulation.blocks_produced,
        simulated_seconds=simulation.simulated_seconds,
        contract=sereth_contract_address(),
        metrics=simulation.metrics,
        peers=simulation.peers,
    )


def run_market_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one data point of the dynamic-pricing market experiment."""
    return result_from_simulation(config, run_simulation(experiment_spec(config)))
