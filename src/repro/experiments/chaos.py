"""The chaos experiment: the paper's claims under deterministic fault injection.

Every other experiment runs on a clean network; this one re-checks the
READ-UNCOMMITTED market under the ``repro.faults`` fault model — message
drops, duplicates, extra delays, and corrupt-then-reject on the gossip
seams, plus a full crash/restart (total state loss, rejoin from genesis,
reconvergence via range sync) of a non-victim client peer.  The grid sweeps
fault mix x intensity x scenario (``geth_unmodified`` control and the
``semantic_mining`` defense, the latter with the displacement frontrunner
stacked on top of the faults).

Fault windows deliberately close several block intervals before each cell
ends: the experiment asserts the network *healed*, not that it limped —
every cell must reconverge to a single head.  Transaction-level faults are
restricted to duplication, the one kind that neither loses nor reorders the
victim's submissions: a dropped buy would be victim harm caused by the
harness rather than an adversary, and a *delayed* buy can slip past the
displacement commit — the defense's guarantee is scoped to transactions the
miner has seen, so manufacturing late arrivals tests a claim the paper never
makes.  Dropped, corrupted, and delayed *blocks* are fair game — range sync
must heal them (miner-bound block deliveries excepted: the append-only chain
model cannot reorg, so a miner that misses a block would fork forever; see
:meth:`repro.faults.FaultInjector.protect_block_peers`).

Three claim gates:

* post-heal convergence — every cell injected faults and still converged;
* ``harm == 0`` on the defended (``semantic_mining``) rows — the
  ``geth_unmodified`` rows are the vulnerable control the paper fixes — and
  zero overpayments across the whole grid;
* the faults-off golden sweep still produces its committed checksum —
  injection is provably zero-cost when not configured.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Tuple

from ..api.builder import Simulation, SimulationBuilder
from ..api.experiment import Claim, Experiment, ExperimentOptions, register_experiment
from ..api.frame import ResultFrame
from ..api.seeding import derive_seed
from ..api.spec import SimulationSpec
from ..api.sweep import Sweep
from ..api.workloads import VICTIM_BUY_LABEL

__all__ = [
    "DEFAULT_MIXES",
    "DEFAULT_INTENSITIES",
    "GOLDEN_SWEEP_SHA256",
    "ChaosExperiment",
    "chaos_jobs",
    "chaos_claims",
    "golden_sweep",
]

DEFAULT_MIXES: Tuple[str, ...] = ("messages", "crash", "combined")
SMOKE_MIXES: Tuple[str, ...] = ("messages", "crash")
DEFAULT_INTENSITIES: Tuple[str, ...] = ("light", "heavy")
SMOKE_INTENSITIES: Tuple[str, ...] = ("light",)
SCENARIOS: Tuple[str, ...] = ("geth_unmodified", "semantic_mining")
HMS_DEFENSE = "semantic_mining"
CRASH_TARGET = "client-1"
"""The crash victim: a client peer that is *not* the market victim's home
peer (``client-0``), so state loss never swallows a watched buy."""

BLOCK_INTERVAL = 6.0
BUY_INTERVAL = 2.0

_RATES = {"light": 0.08, "heavy": 0.2}

# The committed golden checksum (tests/api/test_golden_determinism.py pins the
# same value; tests/experiments/test_chaos.py asserts the two stay equal).
GOLDEN_SWEEP_SHA256 = "803d61eec09f5cc5835b9b739f30a917c8c2a8720ffe0cac5c9b4f0fb6feab0b"


def golden_sweep() -> Sweep:
    """The frozen faults-off smoke sweep whose export checksum is committed.

    This mirrors the golden grid the determinism tests pin: two scenarios x
    two buy ratios at seed 20260730, no faults configured.  The chaos claim
    re-runs it to prove the fault subsystem is byte-invisible when off.
    """
    base = (
        SimulationBuilder()
        .workload("market", num_buys=12)
        .scenario("geth_unmodified")
        .miners(1)
        .clients(1)
        .seed(20260730)
        .build()
    )
    return (
        Sweep(base)
        .over(scenario=["geth_unmodified", "semantic_mining"], buys_per_set=[2.0, 10.0])
        .trials(1)
    )


def _fault_calls(
    mix: str, intensity: str, fault_until: float
) -> List[Tuple[str, Dict[str, Any]]]:
    """The builder ``.fault(...)`` calls for one grid cell.

    Message faults live in ``[0, fault_until)``; the crash is timed so the
    restarted peer has several fault-free block intervals to resync in.
    """
    rate = _RATES[intensity]
    messages: List[Tuple[str, Dict[str, Any]]] = [
        ("drop", {"rate": rate, "target": "block", "until": fault_until}),
        ("corrupt", {"rate": rate, "target": "block", "until": fault_until}),
        ("duplicate", {"rate": rate, "target": "tx", "spread": 0.5, "until": fault_until}),
        ("delay", {"rate": min(2 * rate, 1.0), "target": "block", "extra": 0.3, "jitter": 0.4, "until": fault_until}),
    ]
    crash: List[Tuple[str, Dict[str, Any]]] = [
        ("crash", {"peer": CRASH_TARGET, "at": 8.0, "downtime": 8.0}),
    ]
    if mix == "messages":
        return messages
    if mix == "crash":
        return crash
    if mix == "combined":
        return messages + crash
    raise ValueError(f"unknown fault mix {mix!r}; expected one of {DEFAULT_MIXES}")


def _cell_spec(scenario: str, mix: str, intensity: str, buys: int, seed: int) -> SimulationSpec:
    # The fault window closes one block interval after the last victim buy;
    # the workload's own duration cap leaves six more intervals after that,
    # so post-window blocks flow cleanly and drive every peer's range sync.
    end_of_submissions = 5.0 + buys * BUY_INTERVAL
    fault_until = end_of_submissions + BLOCK_INTERVAL
    builder = (
        Simulation.builder()
        .scenario(scenario)
        .workload("victim_market", num_victim_buys=buys, buy_interval=BUY_INTERVAL)
        .miners(2)
        .clients(3)
        .block_interval(BLOCK_INTERVAL)
        .gossip(0.07, 0.05)
        .gas(max_transactions_per_block=12)
        .seed(seed)
    )
    if scenario == HMS_DEFENSE:
        # The frontrunner attacks *through* the degraded network; the
        # geth_unmodified rows stay adversary-free controls.
        builder = builder.adversary("displacement")
    for name, params in _fault_calls(mix, intensity, fault_until):
        builder = builder.fault(name, **params)
    return builder.build()


def chaos_jobs(
    mixes: Tuple[str, ...],
    intensities: Tuple[str, ...],
    scenarios: Tuple[str, ...],
    buys: int,
    trials: int,
    seed: int,
) -> List[Tuple[SimulationSpec, Dict[str, Any]]]:
    """The deterministically seeded (spec, tags) grid: per-cell seeds derive
    from the root seed and the cell coordinates, so serial and parallel
    executions produce identical rows."""
    jobs: List[Tuple[SimulationSpec, Dict[str, Any]]] = []
    for mix in mixes:
        for intensity in intensities:
            for scenario in scenarios:
                for trial in range(trials):
                    cell_seed = derive_seed(seed, "chaos", mix, intensity, scenario, trial)
                    spec = _cell_spec(scenario, mix, intensity, buys, cell_seed)
                    tags = {
                        "mix": mix,
                        "intensity": intensity,
                        "scenario": scenario,
                        "trial": trial,
                        "seed": cell_seed,
                    }
                    jobs.append((spec, tags))
    return jobs


def chaos_claims() -> Tuple[Claim, ...]:
    def heals_everywhere(frame: ResultFrame):
        quiet = [row for row in frame.rows() if not row["fault_injections"]]
        diverged = [row for row in frame.rows() if not row["converged"]]
        if quiet:
            return (
                False,
                f"{len(quiet)}/{len(frame)} cells injected no faults",
                "a chaos cell that injected nothing gates vacuously",
            )
        total = sum(frame.column("fault_injections"))
        return (
            not diverged,
            f"{len(frame) - len(diverged)}/{len(frame)} cells reconverged "
            f"after {total} injected faults",
        )

    def harmless_under_faults(frame: ResultFrame):
        # harm == 0 is the *defense* claim: the geth_unmodified rows are the
        # vulnerable control, where victim buys racing the market setup can
        # commit-and-fail — that is the baseline the paper fixes, so only the
        # semantic_mining rows gate.  Overpayment protection is structural
        # (mark-bound offers), so it must hold on every row, faults or not.
        defended = frame.filter(scenario=HMS_DEFENSE)
        harm = sum(defended.column("victim_harm"))
        submitted = sum(defended.column("victim_submitted"))
        overpaid = sum(frame.column("overpaid"))
        return (
            harm == 0 and overpaid == 0,
            f"{harm}/{submitted} defended victim buys harmed, {overpaid} "
            f"overpaid fills across all {len(frame)} fault cells",
        )

    def golden_unchanged(frame: ResultFrame):
        export = golden_sweep().run(workers=1).to_json()
        digest = hashlib.sha256(export.encode("utf-8")).hexdigest()
        return (
            digest == GOLDEN_SWEEP_SHA256,
            f"faults-off golden sweep sha256 {digest[:16]}...",
            "the fault subsystem must be byte-invisible when not configured",
        )

    return (
        Claim(
            name="Every fault cell reconverges to a single head after the "
            "fault window closes",
            paper_value="gossip + range sync heal drops, corruption, and "
            "crash/restart with total state loss",
            check=heals_everywhere,
        ),
        Claim(
            name="Zero victim harm on defended rows and zero overpayments "
            "across the fault grid",
            paper_value="Section V-B: frontrunning prevented (harm == 0), "
            "mark-bound offers hold",
            check=harmless_under_faults,
        ),
        Claim(
            name="The no-faults golden sweep checksum is unchanged",
            paper_value="fault injection is a strict no-op when unconfigured",
            check=golden_unchanged,
        ),
    )


@register_experiment
class ChaosExperiment(Experiment):
    """Fault mix x intensity x scenario sweep under deterministic injection.

    Overrides: ``mixes`` (subset of ``messages``/``crash``/``combined``),
    ``intensities`` (``light``/``heavy``), ``scenarios``, ``buys`` (victim
    buys per cell).
    """

    name = "chaos"
    description = (
        "Claim-gated chaos sweep: message faults and peer crash/restart "
        "across both scenarios, with post-heal convergence, harm==0, and a "
        "faults-off golden-checksum gate"
    )
    default_trials = 1
    default_seed = 23
    claims = chaos_claims()
    export_columns = (
        "mix",
        "intensity",
        "scenario",
        "trial",
        "seed",
        "fault_injections",
        "injected_drop",
        "injected_corrupt",
        "injected_duplicate",
        "injected_delay",
        "injected_crash",
        "peer_restarts",
        "converged",
        "unique_heads",
        "min_height",
        "max_height",
        "victim_submitted",
        "victim_filled",
        "victim_harm",
        "overpaid",
        "blocks_produced",
    )

    @staticmethod
    def _name_list(value) -> Tuple[str, ...]:
        return (value,) if isinstance(value, str) else tuple(value)

    def plan(self, options: ExperimentOptions) -> Sweep:
        smoke = options.smoke
        mixes = self._name_list(
            options.override("mixes", SMOKE_MIXES if smoke else DEFAULT_MIXES)
        )
        intensities = self._name_list(
            options.override("intensities", SMOKE_INTENSITIES if smoke else DEFAULT_INTENSITIES)
        )
        scenarios = self._name_list(options.override("scenarios", SCENARIOS))
        buys = int(options.override("buys", 4 if smoke else 8))
        return Sweep.from_specs(
            chaos_jobs(
                mixes=mixes,
                intensities=intensities,
                scenarios=scenarios,
                buys=buys,
                trials=self.trials(options),
                seed=self.seed(options),
            )
        )

    def analyze(self, frame: ResultFrame, options: ExperimentOptions) -> ResultFrame:
        def victim(row, key):
            return row["summary"]["reports"][VICTIM_BUY_LABEL][key]

        def faults(row, key, default=None):
            return row["summary"]["extras"].get("faults", {}).get(key, default)

        return frame.derive(
            fault_injections=lambda row: faults(row, "injections", 0),
            injected_drop=lambda row: faults(row, "injected_drop", 0),
            injected_corrupt=lambda row: faults(row, "injected_corrupt", 0),
            injected_duplicate=lambda row: faults(row, "injected_duplicate", 0),
            injected_delay=lambda row: faults(row, "injected_delay", 0),
            injected_crash=lambda row: faults(row, "injected_crash", 0),
            peer_restarts=lambda row: faults(row, "peer_restarts", 0),
            converged=lambda row: bool(faults(row, "converged", False)),
            unique_heads=lambda row: faults(row, "unique_heads"),
            min_height=lambda row: faults(row, "min_height"),
            max_height=lambda row: faults(row, "max_height"),
            victim_submitted=lambda row: victim(row, "submitted"),
            victim_filled=lambda row: victim(row, "successful"),
            victim_harm=lambda row: victim(row, "submitted") - victim(row, "successful"),
            overpaid=lambda row: row["summary"]["extras"].get("overpaid", 0),
            blocks_produced=lambda row: row["summary"]["blocks_produced"],
        )
