"""The paper's headline claims, checked from a Figure 2 sweep (E4 in DESIGN.md).

* Abstract / Section VII: the READ-UNCOMMITTED view alone (client-only HMS)
  "increas[es] state throughput by a factor of five across the full range of
  tested read to write ratios".
* Section VII: semantic mining improves "transaction efficiency from less
  than 5 percent to over 80 percent in cases where state changes are
  frequent, more than an order of magnitude improvement".

The check function evaluates both against measured data and reports, for
each claim, the paper's number, the measured number, and whether the shape
holds (HMS wins, semantic mining wins by more, the gain is largest where
state changes are frequent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .figure2 import Figure2Result

__all__ = ["ClaimCheck", "check_headline_claims"]


@dataclass
class ClaimCheck:
    """Outcome of checking one claim against measured data."""

    claim: str
    paper_value: str
    measured_value: str
    holds: bool
    detail: str = ""


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def check_headline_claims(figure2: Figure2Result) -> List[ClaimCheck]:
    """Evaluate the paper's headline claims on a completed Figure 2 sweep."""
    ratios = list(figure2.config.ratios)
    checks: List[ClaimCheck] = []

    # Claim 1: client-only HMS improves efficiency across the whole ratio range.
    client_factors = [figure2.improvement_factor(ratio, scenario="sereth_client") for ratio in ratios]
    improvement_everywhere = all(factor > 1.0 for factor in client_factors)
    checks.append(
        ClaimCheck(
            claim="READ-UNCOMMITTED view (client-only HMS) improves state throughput "
            "across the full ratio range",
            paper_value="~5x across the range 1:1 to 20:1",
            measured_value=(
                f"{min(client_factors):.1f}x – {max(client_factors):.1f}x "
                f"(mean {_mean(client_factors):.1f}x)"
            ),
            holds=improvement_everywhere,
            detail="factors per ratio: "
            + ", ".join(f"{ratio:g}:1 → {factor:.1f}x" for ratio, factor in zip(ratios, client_factors)),
        )
    )

    # Claim 2: semantic mining lifts efficiency from a few percent to >= ~80%
    # where state changes are frequent (low buy:set ratios).
    frequent = [ratio for ratio in ratios if ratio <= 2.0] or ratios[:1]
    geth_low = _mean([figure2.point("geth_unmodified", ratio).mean_efficiency for ratio in frequent])
    semantic_low = _mean([figure2.point("semantic_mining", ratio).mean_efficiency for ratio in frequent])
    checks.append(
        ClaimCheck(
            claim="Semantic mining raises efficiency from a few percent to most "
            "transactions succeeding when state changes are frequent",
            paper_value="<5% -> >80% (factor > 10) at 1-2 buys per set",
            measured_value=f"{geth_low:.1%} -> {semantic_low:.1%}",
            holds=semantic_low >= 0.7 and geth_low <= 0.20 and semantic_low > geth_low * 4,
            detail=f"ratios considered frequent: {frequent}",
        )
    )

    # Claim 3: the relative gain of semantic mining is greatest at low ratios.
    semantic_factors = [
        figure2.improvement_factor(ratio, scenario="semantic_mining") for ratio in ratios
    ]
    checks.append(
        ClaimCheck(
            claim="Relative improvement is greatest where there are 1-2 buys per set",
            paper_value="largest gain at 1:1 and 2:1",
            measured_value=", ".join(
                f"{ratio:g}:1 → {factor:.1f}x" for ratio, factor in zip(ratios, semantic_factors)
            ),
            holds=max(semantic_factors[:2]) >= max(semantic_factors[2:])
            if len(semantic_factors) > 2
            else True,
        )
    )

    # Claim 4: sets always succeed (single owner, program order).  Sweep runs
    # record per-trial set efficiencies in the points themselves (they survive
    # parallel execution); fall back to live results for hand-built figures.
    set_rates: List[float] = []
    for point in figure2.points:
        if point.set_efficiencies:
            set_rates.extend(point.set_efficiencies)
        else:
            for result in point.results:
                set_rates.append(result.set_report.efficiency)
    if set_rates:
        checks.append(
            ClaimCheck(
                claim="All price sets succeed (sent from the contract owner in nonce order)",
                paper_value="100%",
                measured_value=f"{_mean(set_rates):.1%}",
                holds=min(set_rates) >= 0.99,
            )
        )
    return checks
