"""The paper's claims as reusable, per-experiment claim gates.

Historically this module only knew how to check the two headline claims
against a :class:`Figure2Result`; that path (:func:`check_headline_claims`)
is kept intact.  The general protocol now lives in
:mod:`repro.api.experiment`: a :class:`~repro.api.experiment.Claim` names a
paper statement and checks it against the experiment's analyzed
:class:`~repro.api.frame.ResultFrame`, and every registered experiment
declares its claims so ``repro run <experiment>`` / ``repro claims
<experiment>`` gate on them — figure2's headline numbers, the sequential
history's η = 1.0, frontrunning's structural no-overpayment, the attack
matrix's Section V-B cell, and the oracle comparison's latency gap.

The headline claims themselves:

* Abstract / Section VII: the READ-UNCOMMITTED view alone (client-only HMS)
  "increas[es] state throughput by a factor of five across the full range of
  tested read to write ratios".
* Section VII: semantic mining improves "transaction efficiency from less
  than 5 percent to over 80 percent in cases where state changes are
  frequent, more than an order of magnitude improvement".
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..api.experiment import Claim, ClaimCheck
from ..api.frame import ResultFrame

__all__ = [
    "ClaimCheck",
    "check_headline_claims",
    "figure2_claims",
    "sequential_claims",
    "frontrunning_claims",
    "attack_matrix_claims",
    "oracle_claims",
    "ablation_claims",
]


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


# ======================================================================================
# Frame-based helpers (the per-experiment protocol)
# ======================================================================================


def _ratios(frame: ResultFrame) -> List[float]:
    return sorted(frame.unique("buys_per_set"))


def _improvement_factor(
    frame: ResultFrame, ratio: float, scenario: str, over: str = "geth_unmodified"
) -> Optional[float]:
    """How many times better ``scenario``'s mean η is than ``over`` at ``ratio``."""
    baseline = frame.mean("eta", scenario=over, buys_per_set=ratio)
    improved = frame.mean("eta", scenario=scenario, buys_per_set=ratio)
    if baseline is None or improved is None:
        return None
    if baseline <= 0:
        return float("inf") if improved > 0 else 1.0
    return improved / baseline


def figure2_claims() -> Tuple[Claim, ...]:
    """The paper's headline claims, checked from a figure2 frame
    (columns: ``scenario``, ``buys_per_set``, ``eta``, ``set_eta``)."""

    def client_improves(frame: ResultFrame):
        ratios = _ratios(frame)
        factors = [
            _improvement_factor(frame, ratio, "sereth_client") for ratio in ratios
        ]
        known = [factor for factor in factors if factor is not None]
        holds = bool(known) and all(factor > 1.0 for factor in known)
        measured = (
            f"{min(known):.1f}x – {max(known):.1f}x (mean {_mean(known):.1f}x)"
            if known
            else "no comparable cells"
        )
        detail = "factors per ratio: " + ", ".join(
            f"{ratio:g}:1 → {factor:.1f}x"
            for ratio, factor in zip(ratios, factors)
            if factor is not None
        )
        return holds, measured, detail

    def semantic_lifts(frame: ResultFrame):
        ratios = _ratios(frame)
        frequent = [ratio for ratio in ratios if ratio <= 2.0] or ratios[:1]
        geth_cells = [
            value
            for r in frequent
            if (value := frame.mean("eta", scenario="geth_unmodified", buys_per_set=r))
            is not None
        ]
        semantic_cells = [
            value
            for r in frequent
            if (value := frame.mean("eta", scenario="semantic_mining", buys_per_set=r))
            is not None
        ]
        if not geth_cells or not semantic_cells:
            return (
                False,
                "no comparable cells",
                "the claim needs both geth_unmodified and semantic_mining in the grid",
            )
        geth_low, semantic_low = _mean(geth_cells), _mean(semantic_cells)
        holds = semantic_low >= 0.7 and geth_low <= 0.20 and semantic_low > geth_low * 4
        return (
            holds,
            f"{geth_low:.1%} -> {semantic_low:.1%}",
            f"ratios considered frequent: {frequent}",
        )

    def gain_greatest_when_frequent(frame: ResultFrame):
        ratios = _ratios(frame)
        factors = [
            _improvement_factor(frame, ratio, "semantic_mining") for ratio in ratios
        ]
        measured = ", ".join(
            f"{ratio:g}:1 → {factor:.1f}x"
            for ratio, factor in zip(ratios, factors)
            if factor is not None
        )
        if len(factors) <= 2 or any(factor is None for factor in factors):
            return True, measured, "fewer than three ratios: ordering is vacuous"
        holds = max(factors[:2]) >= max(factors[2:])
        return holds, measured

    def sets_succeed(frame: ResultFrame):
        rates = [value for value in frame.column("set_eta") if value is not None]
        holds = bool(rates) and min(rates) >= 0.99
        return holds, f"{_mean(rates):.1%}" if rates else "no set transactions"

    return (
        Claim(
            name="READ-UNCOMMITTED view (client-only HMS) improves state throughput "
            "across the full ratio range",
            paper_value="~5x across the range 1:1 to 20:1",
            check=client_improves,
        ),
        Claim(
            name="Semantic mining raises efficiency from a few percent to most "
            "transactions succeeding when state changes are frequent",
            paper_value="<5% -> >80% (factor > 10) at 1-2 buys per set",
            check=semantic_lifts,
        ),
        Claim(
            name="Relative improvement is greatest where there are 1-2 buys per set",
            paper_value="largest gain at 1:1 and 2:1",
            check=gain_greatest_when_frequent,
        ),
        Claim(
            name="All price sets succeed (sent from the contract owner in nonce order)",
            paper_value="100%",
            check=sets_succeed,
        ),
    )


def sequential_claims() -> Tuple[Claim, ...]:
    """Section V's first quantitative test: a single-sender history is perfect."""

    def perfect_efficiency(frame: ResultFrame):
        rates: List[float] = []
        for row in frame.rows():
            reports = row["summary"]["reports"]
            for label in ("set", "buy"):
                rates.append(reports[label]["efficiency"])
                rates.append(reports[label]["success_rate"])
        holds = bool(rates) and min(rates) >= 1.0
        measured = f"min rate {min(rates):.3f} over {len(frame)} runs" if rates else "no runs"
        return holds, measured

    return (
        Claim(
            name="A sequential history commits perfectly: real-time order equals "
            "nonce order equals block order",
            paper_value="failure rate 0, eta = 1.0",
            check=perfect_efficiency,
        ),
    )


def frontrunning_claims() -> Tuple[Claim, ...]:
    """Section V-B: mark-bound offers make overpayment structurally impossible."""

    def never_overpaid(frame: ResultFrame):
        overpaid = sum(frame.column("overpaid"))
        audits = frame.column("audit_clean")
        holds = overpaid == 0 and all(audits)
        return (
            holds,
            f"{overpaid} overpaid fills, audit {'clean' if all(audits) else 'DIRTY'}",
        )

    def hms_view_helps(frame: ResultFrame):
        modes = frame.unique("victim_read_mode") if "victim_read_mode" in frame.column_names else []
        if "read_uncommitted" not in modes or "read_committed" not in modes:
            return True, "single read mode", "both read modes needed for the comparison"
        uncommitted = frame.mean("eta", victim_read_mode="read_uncommitted")
        committed = frame.mean("eta", victim_read_mode="read_committed")
        return (
            uncommitted >= committed,
            f"fill rate {committed:.1%} (committed) -> {uncommitted:.1%} (HMS view)",
        )

    return (
        Claim(
            name="No victim ever fills at terms it did not observe",
            paper_value="0 overpaid fills (structural)",
            check=never_overpaid,
        ),
        Claim(
            name="Reading the HMS view fills at least as many buys as committed reads",
            paper_value="linking buys to marks prevents the attack, not the fills",
            check=hms_view_helps,
        ),
    )


def attack_matrix_claims() -> Tuple[Claim, ...]:
    """The matrix generalization of Section V-B, gated per cell."""

    def hms_protects(frame: ResultFrame):
        cells = frame.filter(adversary="displacement", defense="semantic_mining")
        if len(cells) == 0:
            return True, "n/a", "displacement x semantic_mining not in the grid"
        harm = sum(cells.column("victim_harm"))
        submitted = sum(cells.column("victim_submitted"))
        return harm == 0, f"{harm}/{submitted} victim buys harmed"

    def structurally_sound(frame: ResultFrame):
        overpaid = sum(frame.column("overpaid"))
        audits = frame.column("audit_clean")
        holds = overpaid == 0 and all(audits)
        return holds, f"{overpaid} overpaid fills across {len(frame)} cells"

    return (
        Claim(
            name="Displacement causes zero victim harm under full HMS "
            "(semantic mining)",
            paper_value="Section V-B: frontrunning prevented",
            check=hms_protects,
        ),
        Claim(
            name="No cell shows an overpayment, under any attack",
            paper_value="mark-bound offers hold everywhere (auditor-verified)",
            check=structurally_sound,
        ),
    )


def oracle_claims() -> Tuple[Claim, ...]:
    """Section III-D: RAA answers locally; an oracle needs committed rounds."""

    def raa_is_faster(frame: ResultFrame):
        pairs = [
            (row["mean_raa_latency"], row["mean_oracle_latency"])
            for row in frame.rows()
            if row["mean_raa_latency"] is not None
        ]
        if not pairs:
            return False, "no RAA samples"
        # A run whose oracle never answered counts for RAA trivially.
        holds = all(oracle is None or raa < oracle for raa, oracle in pairs)
        raa_values = [raa for raa, _oracle in pairs]
        oracle_values = [oracle for _raa, oracle in pairs if oracle is not None]
        measured = f"RAA {_mean(raa_values):.4f}s vs oracle " + (
            f"{_mean(oracle_values):.1f}s" if oracle_values else "(never answered)"
        )
        return holds, measured

    return (
        Claim(
            name="RAA delivers intra-block data faster than an oracle round trip",
            paper_value=">= 1-2 block intervals for the oracle; immediate for RAA",
            check=raa_is_faster,
        ),
    )


def ablation_claims() -> Tuple[Claim, ...]:
    """Sanity gate shared by the one-dimensional ablation sweeps."""

    def efficiencies_are_rates(frame: ResultFrame):
        values = [value for value in frame.column("eta") if value is not None]
        holds = bool(values) and all(0.0 <= value <= 1.0 for value in values)
        return holds, f"{len(values)} points in [0, 1]" if values else "no points"

    return (
        Claim(
            name="Every ablation point is a well-formed efficiency",
            paper_value="eta in [0, 1] (sanity)",
            check=efficiencies_are_rates,
        ),
    )


# ======================================================================================
# Historical Figure2Result-based path (back-compat)
# ======================================================================================


def check_headline_claims(figure2) -> List[ClaimCheck]:
    """Evaluate the paper's headline claims on a completed Figure 2 sweep
    (the historical :class:`~repro.experiments.figure2.Figure2Result` path;
    the registry path checks the same claims through :func:`figure2_claims`)."""
    ratios = list(figure2.config.ratios)
    checks: List[ClaimCheck] = []

    # Claim 1: client-only HMS improves efficiency across the whole ratio range.
    client_factors = [figure2.improvement_factor(ratio, scenario="sereth_client") for ratio in ratios]
    improvement_everywhere = all(factor > 1.0 for factor in client_factors)
    checks.append(
        ClaimCheck(
            claim="READ-UNCOMMITTED view (client-only HMS) improves state throughput "
            "across the full ratio range",
            paper_value="~5x across the range 1:1 to 20:1",
            measured_value=(
                f"{min(client_factors):.1f}x – {max(client_factors):.1f}x "
                f"(mean {_mean(client_factors):.1f}x)"
            ),
            holds=improvement_everywhere,
            detail="factors per ratio: "
            + ", ".join(f"{ratio:g}:1 → {factor:.1f}x" for ratio, factor in zip(ratios, client_factors)),
        )
    )

    # Claim 2: semantic mining lifts efficiency from a few percent to >= ~80%
    # where state changes are frequent (low buy:set ratios).
    frequent = [ratio for ratio in ratios if ratio <= 2.0] or ratios[:1]
    geth_low = _mean([figure2.point("geth_unmodified", ratio).mean_efficiency for ratio in frequent])
    semantic_low = _mean([figure2.point("semantic_mining", ratio).mean_efficiency for ratio in frequent])
    checks.append(
        ClaimCheck(
            claim="Semantic mining raises efficiency from a few percent to most "
            "transactions succeeding when state changes are frequent",
            paper_value="<5% -> >80% (factor > 10) at 1-2 buys per set",
            measured_value=f"{geth_low:.1%} -> {semantic_low:.1%}",
            holds=semantic_low >= 0.7 and geth_low <= 0.20 and semantic_low > geth_low * 4,
            detail=f"ratios considered frequent: {frequent}",
        )
    )

    # Claim 3: the relative gain of semantic mining is greatest at low ratios.
    semantic_factors = [
        figure2.improvement_factor(ratio, scenario="semantic_mining") for ratio in ratios
    ]
    checks.append(
        ClaimCheck(
            claim="Relative improvement is greatest where there are 1-2 buys per set",
            paper_value="largest gain at 1:1 and 2:1",
            measured_value=", ".join(
                f"{ratio:g}:1 → {factor:.1f}x" for ratio, factor in zip(ratios, semantic_factors)
            ),
            holds=max(semantic_factors[:2]) >= max(semantic_factors[2:])
            if len(semantic_factors) > 2
            else True,
        )
    )

    # Claim 4: sets always succeed (single owner, program order).  Sweep runs
    # record per-trial set efficiencies in the points themselves (they survive
    # parallel execution); fall back to live results for hand-built figures.
    set_rates: List[float] = []
    for point in figure2.points:
        if point.set_efficiencies:
            set_rates.extend(point.set_efficiencies)
        else:
            for result in point.results:
                set_rates.append(result.set_report.efficiency)
    if set_rates:
        checks.append(
            ClaimCheck(
                claim="All price sets succeed (sent from the contract owner in nonce order)",
                paper_value="100%",
                holds=min(set_rates) >= 0.99,
                measured_value=f"{_mean(set_rates):.1%}",
            )
        )
    return checks
