"""Client actors: generic contract clients plus the market workload actors."""

from .base import ContractClient
from .market import Buyer, PriceSetter, READ_COMMITTED, READ_UNCOMMITTED, ReadMode

__all__ = [
    "ContractClient",
    "Buyer",
    "PriceSetter",
    "READ_COMMITTED",
    "READ_UNCOMMITTED",
    "ReadMode",
]
