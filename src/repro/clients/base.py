"""Client actors: accounts that talk to a peer to read state and send transactions.

"Accounts using smart contracts in a blockchain are like threads using
concurrent objects in shared memory" (Sergey & Hobor, quoted in the paper's
Section II-B) — a client actor is one such thread.  It owns an address,
tracks its own nonce in program order, submits transactions through the peer
it is connected to, and makes view calls against that peer's local state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..chain.transaction import Transaction
from ..crypto.addresses import Address, address_from_label
from ..evm.engine import CallResult, encode_deployment
from ..net.peer import Peer
from ..net.sim import Simulator

__all__ = ["ContractClient"]

DEFAULT_GAS_LIMIT = 500_000


class ContractClient:
    """A single externally-owned account bound to one peer."""

    def __init__(
        self,
        label: str,
        peer: Peer,
        simulator: Simulator,
        gas_price: int = 1,
        gas_limit: int = DEFAULT_GAS_LIMIT,
    ) -> None:
        self.label = label
        self.address: Address = address_from_label(label)
        self.peer = peer
        self.simulator = simulator
        self.gas_price = gas_price
        self.gas_limit = gas_limit
        self._nonce: Optional[int] = None
        self.sent_transactions: List[Transaction] = []

    # -- nonce management (program order / sequential consistency) ------------------

    @property
    def next_nonce(self) -> int:
        """The next nonce in this client's program order."""
        if self._nonce is None:
            self._nonce = self.peer.next_nonce(self.address)
        return self._nonce

    def _consume_nonce(self) -> int:
        nonce = self.next_nonce
        self._nonce = nonce + 1
        return nonce

    # -- transactions ------------------------------------------------------------------

    def send_transaction(
        self,
        to: Optional[Address],
        data: bytes = b"",
        value: int = 0,
        gas_limit: Optional[int] = None,
    ) -> Transaction:
        """Create, sign, and submit a transaction through the connected peer."""
        transaction = Transaction(
            sender=self.address,
            nonce=self._consume_nonce(),
            to=to,
            value=value,
            gas_price=self.gas_price,
            gas_limit=gas_limit if gas_limit is not None else self.gas_limit,
            data=data,
            submitted_at=self.simulator.now,
        )
        self.peer.submit_transaction(transaction, now=self.simulator.now)
        self.sent_transactions.append(transaction)
        return transaction

    def deploy(self, code_name: str, constructor_data: bytes = b"", value: int = 0) -> Transaction:
        """Deploy a registered contract; the address is derivable from sender+nonce."""
        return self.send_transaction(
            to=None, data=encode_deployment(code_name, constructor_data), value=value
        )

    # -- view calls -----------------------------------------------------------------------

    def call(
        self,
        contract_address: Address,
        function_name: str,
        arguments: Sequence[object] = (),
        allow_raa: bool = True,
    ) -> CallResult:
        """Evaluate a view/pure function against the connected peer's state."""
        return self.peer.call_contract(
            contract_address,
            function_name,
            arguments,
            caller=self.address,
            now=self.simulator.now,
            allow_raa=allow_raa,
        )

    def balance(self) -> int:
        return self.peer.chain.state.get_balance(self.address)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ContractClient({self.label!r} via {self.peer.peer_id!r})"
