"""Market actors for the dynamic-pricing experiments: the price setter and buyers.

These mirror the paper's workload (Section V): ``set`` transactions come
from the contract owner and change the price, ``buy`` transactions come from
buyers and succeed only if they carry the mark and price in effect when they
execute.  The *only* difference between the baseline and HMS scenarios is
where the buyer reads its (mark, price) from:

* ``READ_COMMITTED`` — the committed contract storage of the last published
  block (what an unmodified Geth client can see);
* ``READ_UNCOMMITTED`` — Sereth's ``mark``/``get`` view functions, whose
  arguments are filled by RAA with the Hash-Mark-Set view of the pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..chain.transaction import Transaction
from ..contracts.sereth import SerethContract
from ..core.hms.fpv import BUY_FLAG, HEAD_FLAG, SUCCESS_FLAG, compute_mark, fpv_to_words
from ..crypto.addresses import Address
from ..encoding.hexutil import to_bytes32
from ..net.peer import Peer
from ..net.sim import Simulator
from .base import ContractClient

__all__ = ["ReadMode", "PriceSetter", "Buyer"]

_SET_ABI = SerethContract.function_by_name("set").abi
_BUY_ABI = SerethContract.function_by_name("buy").abi

READ_COMMITTED = "read_committed"
READ_UNCOMMITTED = "read_uncommitted"
ReadMode = str


class PriceSetter(ContractClient):
    """The contract owner: the only account allowed (by convention) to set the price.

    Because all sets come from one address, nonce order pins their sequential
    order and the setter can compute the mark chain locally in program order —
    which is why "all of the sets succeed" in every scenario of the paper.
    """

    def __init__(
        self,
        label: str,
        peer: Peer,
        simulator: Simulator,
        contract_address: Address,
        **kwargs,
    ) -> None:
        super().__init__(label, peer, simulator, **kwargs)
        self.contract_address = contract_address
        self._last_mark: Optional[bytes] = None
        self._pending_sets: List[Transaction] = []
        self.set_transactions: List[Transaction] = []

    def prime_mark(self, mark: bytes) -> None:
        """Seed the locally tracked mark chain.

        Used when the contract deployment is still pending (the deployer knows
        the genesis mark deterministically) so the opening price can be
        submitted in the same block as the deployment.
        """
        self._last_mark = mark

    def _current_mark(self) -> bytes:
        """The mark the next set must reference (committed or locally chained)."""
        if self._last_mark is None:
            committed = self.call(self.contract_address, "current", allow_raa=False)
            self._last_mark = committed.values[1]
        return self._last_mark

    def _next_flag(self) -> bytes:
        """Head flag when no set of ours is still pending, successor flag otherwise."""
        chain = self.peer.chain
        self._pending_sets = [
            transaction
            for transaction in self._pending_sets
            if not chain.transaction_is_committed(transaction.hash)
        ]
        return SUCCESS_FLAG if self._pending_sets else HEAD_FLAG

    def set_price(self, price: int) -> Transaction:
        """Submit a ``set`` transaction changing the price to ``price``."""
        previous_mark = self._current_mark()
        value_word = to_bytes32(price)
        fpv = fpv_to_words(self._next_flag(), previous_mark, value_word)
        transaction = self.send_transaction(
            to=self.contract_address, data=_SET_ABI.encode_call(fpv)
        )
        self._last_mark = compute_mark(previous_mark, value_word)
        self._pending_sets.append(transaction)
        self.set_transactions.append(transaction)
        return transaction


class Buyer(ContractClient):
    """A buyer submitting exact-price orders against the Sereth contract."""

    def __init__(
        self,
        label: str,
        peer: Peer,
        simulator: Simulator,
        contract_address: Address,
        read_mode: ReadMode = READ_COMMITTED,
        **kwargs,
    ) -> None:
        if read_mode not in (READ_COMMITTED, READ_UNCOMMITTED):
            raise ValueError(f"unknown read mode {read_mode!r}")
        super().__init__(label, peer, simulator, **kwargs)
        self.contract_address = contract_address
        self.read_mode = read_mode
        self.buy_transactions: List[Transaction] = []

    # -- reads ------------------------------------------------------------------------

    def observe_market(self) -> Tuple[bytes, bytes]:
        """Return the (mark, price) this buyer believes is current.

        READ-COMMITTED buyers read the contract's public getters; READ-
        UNCOMMITTED buyers call Sereth's ``mark``/``get`` whose arguments RAA
        fills with the HMS view of the pending pool.
        """
        if self.read_mode == READ_COMMITTED:
            committed = self.call(self.contract_address, "current", allow_raa=False)
            return committed.values[1], committed.values[2]
        placeholder = [to_bytes32(0), to_bytes32(0), to_bytes32(0)]
        mark = self.call(self.contract_address, "mark", [placeholder]).values[0]
        price = self.call(self.contract_address, "get", [placeholder]).values[0]
        return mark, price

    # -- buys --------------------------------------------------------------------------

    def buy(self) -> Transaction:
        """Observe the market and submit a ``buy`` at exactly that (mark, price)."""
        mark, price = self.observe_market()
        offer = [BUY_FLAG, to_bytes32(mark), to_bytes32(price)]
        transaction = self.send_transaction(
            to=self.contract_address, data=_BUY_ABI.encode_call(offer)
        )
        self.buy_transactions.append(transaction)
        return transaction
