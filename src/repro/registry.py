"""The generic write-once name registry backing every pluggable component.

Scenarios, workloads, and adversaries all follow the same pluggable-feature
idiom: a component registers itself once (either by decorating its class or
by calling ``add``) and every consumer — the builder, the sweep engine, the
CLI — resolves it by name.  This module holds the registry machinery itself;
the concrete registry instances live with their ecosystems
(:mod:`repro.api.registry` for scenarios and workloads,
:mod:`repro.adversary.registry` for attack strategies) so that packages can
register into them without importing each other.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, List, Optional, TypeVar

__all__ = ["Registry", "RegistryError"]

T = TypeVar("T")


class RegistryError(KeyError):
    """Lookup of a name that was never registered."""


class Registry(Generic[T]):
    """A write-once mapping from names to registered components."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = {}

    def add(self, name: str, entry: T, replace: bool = False) -> T:
        """Register ``entry`` under ``name``; duplicate names are an error."""
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} name must be a non-empty string")
        if name in self._entries and not replace:
            raise ValueError(f"duplicate {self.kind} name {name!r}")
        self._entries[name] = entry
        return entry

    def register(self, name: Optional[str] = None) -> Callable[[T], T]:
        """Decorator form of :meth:`add`; uses ``entry.name`` if no name given."""

        def decorate(entry: T) -> T:
            key = name or getattr(entry, "name", None)
            if key is None:
                raise ValueError(
                    f"cannot infer a {self.kind} name; pass one to register()"
                )
            return self.add(key, entry)

        return decorate

    def get(self, name: str) -> T:
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; registered: {sorted(self._entries)}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)
