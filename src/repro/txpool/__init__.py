"""Pending transaction pool (TxPool)."""

from .pool import PoolEntry, TxPool

__all__ = ["PoolEntry", "TxPool"]
