"""The TxPool: each peer's view of pending (unprocessed) transactions.

The pool is the "underutilized communication channel" HMS exploits
(Section III-C).  It stores pending transactions with the local arrival
time, groups them per sender in nonce order (the ordering miners must
respect), and drops transactions once they are committed in a published
block or made stale by an advancing account nonce.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..chain.block import Block
from ..chain.state import WorldState
from ..chain.transaction import Transaction
from ..crypto.addresses import Address
from ..obs import runtime as _obs

__all__ = ["PoolEntry", "TxPool"]


@dataclass(frozen=True)
class PoolEntry:
    """A pending transaction plus local bookkeeping."""

    transaction: Transaction
    arrival_time: float

    @property
    def hash(self) -> bytes:
        return self.transaction.hash

    @property
    def sender(self) -> Address:
        return self.transaction.sender

    @property
    def nonce(self) -> int:
        return self.transaction.nonce


class TxPool:
    """A per-peer pending-transaction pool."""

    def __init__(self, max_size: Optional[int] = None, owner: str = "") -> None:
        self._entries: Dict[bytes, PoolEntry] = {}
        self._by_sender: Dict[Address, Dict[int, PoolEntry]] = {}
        # Arrival order, maintained sorted by (arrival_time, hash): HMS views
        # read this list directly instead of re-sorting the pool every call.
        self._order: List[Tuple[float, bytes]] = []
        self.max_size = max_size
        self.owner = owner
        """The peer this pool belongs to — purely observability metadata
        (it labels this pool's trace events); empty for standalone pools."""
        self.dropped_count = 0

    # -- insertion --------------------------------------------------------------

    def add(self, transaction: Transaction, arrival_time: float) -> bool:
        """Add a transaction; returns False if it was already known or dropped.

        A replacement transaction (same sender and nonce) supersedes the old
        one, mirroring gas-price replacement in real pools.  A replacement
        never grows the pool, so it is admitted even when the pool is at
        ``max_size``; the capacity gate only applies to genuinely new slots.
        """
        if transaction.hash in self._entries:
            return False
        sender_entries = self._by_sender.get(transaction.sender)
        existing = sender_entries.get(transaction.nonce) if sender_entries else None
        if existing is not None and existing.transaction.gas_price >= transaction.gas_price:
            return False
        if existing is None and self.max_size is not None and len(self._entries) >= self.max_size:
            self.dropped_count += 1
            tracer = _obs.TRACER
            if tracer is not None:
                tracer.event(
                    "pool.evict",
                    peer=self.owner,
                    reason="full",
                    tx=transaction.hash,
                    pool_size=len(self._entries),
                )
            return False
        entry = PoolEntry(transaction=transaction, arrival_time=arrival_time)
        if existing is not None:
            self._entries.pop(existing.hash, None)
            self._discard_order(existing)
        if sender_entries is None:
            sender_entries = self._by_sender.setdefault(transaction.sender, {})
        sender_entries[transaction.nonce] = entry
        self._entries[transaction.hash] = entry
        insort(self._order, (arrival_time, transaction.hash))
        tracer = _obs.TRACER
        if tracer is not None:
            if existing is not None:
                # The displacement story: a same-sender same-nonce bid just
                # superseded the pooled transaction.
                tracer.event(
                    "pool.replace",
                    peer=self.owner,
                    tx=transaction.hash,
                    displaced=existing.hash,
                    nonce=transaction.nonce,
                    gas_price=transaction.gas_price,
                    displaced_gas_price=existing.transaction.gas_price,
                )
            else:
                tracer.event(
                    "pool.admit",
                    peer=self.owner,
                    tx=transaction.hash,
                    nonce=transaction.nonce,
                    pool_size=len(self._entries),
                )
        return True

    def _discard_order(self, entry: PoolEntry) -> None:
        """Drop ``entry``'s (arrival_time, hash) slot from the order index."""
        slot = (entry.arrival_time, entry.hash)
        index = bisect_left(self._order, slot)
        if index < len(self._order) and self._order[index] == slot:
            del self._order[index]

    # -- lookup -----------------------------------------------------------------

    def contains(self, transaction_hash: bytes) -> bool:
        return transaction_hash in self._entries

    def __contains__(self, transaction_hash: object) -> bool:
        return transaction_hash in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def size(self) -> int:
        return len(self._entries)

    def entries(self) -> List[PoolEntry]:
        """All pending entries, ordered by arrival time (the concurrent history).

        The order is maintained incrementally on add/remove, so a view is a
        single pass over the index — no per-call sort.
        """
        entries = self._entries
        return [entries[transaction_hash] for _, transaction_hash in self._order]

    def transactions_with_arrival(self) -> List[Tuple[Transaction, float]]:
        """``(transaction, arrival_time)`` pairs — the shape HMS consumes."""
        entries = self._entries
        return [
            (entries[transaction_hash].transaction, arrival_time)
            for arrival_time, transaction_hash in self._order
        ]

    def transactions(self) -> List[Transaction]:
        entries = self._entries
        return [entries[transaction_hash].transaction for _, transaction_hash in self._order]

    def pending_by_sender(self) -> Dict[Address, List[PoolEntry]]:
        """Per-sender pending entries in nonce order (the miner's raw material)."""
        grouped: Dict[Address, List[PoolEntry]] = {}
        for sender, by_nonce in self._by_sender.items():
            entries = [by_nonce[nonce] for nonce in sorted(by_nonce)]
            if entries:
                grouped[sender] = entries
        return grouped

    def executable_by_sender(self, state: WorldState) -> Dict[Address, List[PoolEntry]]:
        """Per-sender entries forming a gapless nonce run starting at the
        account's current nonce; only these can be included in the next block."""
        executable: Dict[Address, List[PoolEntry]] = {}
        for sender, entries in self.pending_by_sender().items():
            next_nonce = state.get_nonce(sender)
            runnable: List[PoolEntry] = []
            for entry in entries:
                if entry.nonce == next_nonce:
                    runnable.append(entry)
                    next_nonce += 1
                elif entry.nonce > next_nonce:
                    break
            if runnable:
                executable[sender] = runnable
        return executable

    # -- removal -----------------------------------------------------------------

    def remove(self, transaction_hash: bytes) -> Optional[PoolEntry]:
        entry = self._entries.pop(transaction_hash, None)
        if entry is None:
            return None
        self._discard_order(entry)
        sender_entries = self._by_sender.get(entry.sender)
        if sender_entries is not None:
            stored = sender_entries.get(entry.nonce)
            if stored is not None and stored.hash == transaction_hash:
                del sender_entries[entry.nonce]
            if not sender_entries:
                del self._by_sender[entry.sender]
        return entry

    def remove_committed(self, block: Block) -> int:
        """Drop every transaction included in ``block``; returns how many."""
        removed = 0
        for transaction in block.transactions:
            if self.remove(transaction.hash) is not None:
                removed += 1
        return removed

    def drop_stale(self, state: WorldState) -> int:
        """Drop transactions whose nonce is already below the account nonce."""
        stale_hashes = [
            entry.hash
            for entry in self._entries.values()
            if entry.nonce < state.get_nonce(entry.sender)
        ]
        for transaction_hash in stale_hashes:
            self.remove(transaction_hash)
        if stale_hashes:
            tracer = _obs.TRACER
            if tracer is not None:
                tracer.event(
                    "pool.evict",
                    peer=self.owner,
                    reason="stale",
                    count=len(stale_hashes),
                )
        return len(stale_hashes)

    def clear(self) -> None:
        self._entries.clear()
        self._by_sender.clear()
        self._order.clear()
