"""Pluggable workloads: what traffic a simulation drives and how it is measured.

A workload owns everything experiment-specific — which contracts exist in
genesis, which accounts are funded, which client actors run, what they
submit and when, and when the run is "done" — while the engine owns
everything generic (network, peers, mining, the run loop).  Registering a
subclass with :func:`~repro.api.registry.register_workload` makes it
available to the builder, the sweep engine, and the CLI by name:

    @register_workload("my_market")
    class MyMarket(Workload):
        ...

    Simulation.builder().scenario("semantic_mining").workload("my_market").build()

Four workloads ship out of the box — ``market`` (the paper's Figure 2
dynamic-pricing exchange), ``ticket_sale`` (surge-priced fixed inventory),
``auction`` (an English auction with a mark-chained bid history), and
``oracle`` (the RAA-vs-oracle data-latency comparison) — plus the
``sequential`` and ``frontrunning`` workloads backing the paper's
qualitative experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..adversary.strategies import VICTIM_BUY_LABEL, FrontrunningAttacker
from ..chain.genesis import GenesisConfig
from ..clients.base import ContractClient
from ..clients.market import Buyer, PriceSetter, READ_UNCOMMITTED
from ..contracts.auction import AuctionContract
from ..contracts.oracle import ANSWER_EVENT, OracleContract
from ..contracts.sereth import (
    BUY_SELECTOR,
    SET_SELECTOR,
    SerethContract,
    genesis_storage,
    initial_mark,
)
from ..contracts.ticket_sale import TicketSaleContract
from ..core.audit import ChainAuditor
from ..core.hms.fpv import (
    BUY_FLAG,
    HEAD_FLAG,
    SUCCESS_FLAG,
    compute_mark,
    fpv_to_words,
)
from ..core.hms.process import HMSConfig
from ..core.hms.semantic import SemanticMiningConfig
from ..core.metrics import MetricsCollector
from ..crypto.addresses import Address, address_from_label
from ..crypto.keccak import keccak256
from ..encoding.hexutil import bytes32_from_int, int_from_bytes32, to_bytes32
from ..net.peer import Peer, SERETH_CLIENT
from ..net.sim import Simulator
from ..workloads.market import BUY_LABEL, MarketWorkload, MarketWorkloadConfig, SET_LABEL
from ..workloads.prices import PriceProcess, RandomWalkPrices
from .registry import register_workload
from .seeding import SeedPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .spec import SimulationSpec

__all__ = [
    "SimulationContext",
    "Workload",
    "MarketSimWorkload",
    "TicketSaleWorkload",
    "AuctionWorkload",
    "OracleLatencyWorkload",
    "SequentialHistoryWorkload",
    "SteadyStateWorkload",
    "STEADY_LABEL",
    "VictimMarketWorkload",
    "FrontrunningWorkload",
    "FrontrunningAttacker",
    "VICTIM_BUY_LABEL",
    "sereth_exchange_address",
    "OWNER_LABEL",
    "SERETH_CONTRACT_LABEL",
]

OWNER_LABEL = "owner"
SERETH_CONTRACT_LABEL = "sereth-exchange"


def sereth_exchange_address() -> Address:
    """The fixed address the experiments pre-deploy the Sereth exchange at."""
    return address_from_label(SERETH_CONTRACT_LABEL)


@dataclass
class SimulationContext:
    """Everything a workload (or adversary) can touch while the simulation runs."""

    spec: "SimulationSpec"
    seeds: SeedPlan
    simulator: Simulator
    network: object
    peers: Dict[str, Peer]
    miner_peers: List[Peer]
    client_peers: List[Peer]
    metrics: MetricsCollector
    adversary_peers: List[Peer] = field(default_factory=list)
    """The per-adversary observation peers (separate from client peers so
    workload actor placement is unaffected by attackers joining)."""
    production: object = None
    """The block production process — exposed so adversarial strategies can
    subvert miner policies (censoring miners)."""

    @property
    def reference_chain(self):
        """The chain metrics are resolved against (the first miner's)."""
        return self.miner_peers[0].chain


class Workload:
    """Base class for pluggable workloads.

    Lifecycle, as driven by :func:`repro.api.engine.run_simulation`:

    1. ``account_labels`` / ``configure_genesis`` shape the genesis state;
    2. ``hms_targets`` lists (contract, set_selector) pairs installed on
       every Sereth peer; ``semantic_config`` feeds the semantic miners;
    3. ``setup`` creates client actors, ``schedule`` books their events;
    4. the engine runs to ``end_of_submissions``, then in block-interval
       steps until ``is_complete`` or ``duration_cap``;
    5. ``finalize`` computes workload-specific extras for the result.
    """

    name: str = ""

    def __init__(self, spec: "SimulationSpec") -> None:
        self.spec = spec

    # -- genesis phase -----------------------------------------------------------------

    def account_labels(self) -> Sequence[str]:
        """Labels of externally-owned accounts to fund in genesis."""
        return ()

    def configure_genesis(self, genesis: GenesisConfig) -> None:
        """Pre-deploy contracts / adjust balances before the chain starts."""

    def hms_targets(self) -> Sequence[Tuple[Address, bytes]]:
        """(contract, set_selector) pairs Sereth peers watch with HMS."""
        return ()

    def semantic_config(self) -> Optional[SemanticMiningConfig]:
        """The HMS configuration semantic miners order blocks with."""
        return None

    # -- run phase ---------------------------------------------------------------------

    def setup(self, context: SimulationContext) -> None:
        """Create client actors against the built network."""

    def schedule(self, context: SimulationContext) -> None:
        """Book every submission event onto the simulator."""

    @property
    def end_of_submissions(self) -> float:
        """Simulated time of the last scheduled submission."""
        return 0.0

    def is_complete(self, context: SimulationContext) -> bool:
        """Whether every watched outcome is decided (enables early exit)."""
        return False

    def duration_cap(self, spec: "SimulationSpec") -> float:
        """Hard stop for the run loop (spec.max_duration wins if set)."""
        if spec.max_duration is not None:
            return spec.max_duration
        return self.end_of_submissions + spec.settle_blocks * spec.block_interval + 60.0

    @property
    def post_stop_drain(self) -> float:
        """Extra simulated seconds to run after mining stops (deliveries in flight)."""
        return 0.0

    @property
    def primary_label(self) -> Optional[str]:
        """The metrics label whose efficiency is the headline number."""
        return None

    def finalize(self, context: SimulationContext) -> Dict[str, Any]:
        """Workload-specific extras attached to the result."""
        return {}


# ======================================================================================
# market — the paper's Figure 2 dynamic-pricing exchange
# ======================================================================================


@register_workload("market")
class MarketSimWorkload(Workload):
    """The dynamic-pricing buy/set workload of the paper's evaluation."""

    name = "market"

    def __init__(
        self,
        spec: "SimulationSpec",
        num_buys: int = 100,
        buys_per_set: float = 1.0,
        submission_interval: float = 1.0,
        start_time: float = 30.0,
        initial_price: int = 100,
        price_max_step: int = 5,
        num_buyers: int = 4,
    ) -> None:
        super().__init__(spec)
        if num_buyers <= 0:
            raise ValueError("num_buyers must be positive")
        self.num_buyers = num_buyers
        self.initial_price = initial_price
        self.price_max_step = price_max_step
        # MarketWorkloadConfig validates num_buys / ratio / interval.
        self.config = MarketWorkloadConfig(
            num_buys=num_buys,
            buys_per_set=buys_per_set,
            submission_interval=submission_interval,
            start_time=start_time,
            initial_price=initial_price,
        )
        self.contract = sereth_exchange_address()
        self.setter: Optional[PriceSetter] = None
        self.buyers: List[Buyer] = []
        self._market: Optional[MarketWorkload] = None

    def account_labels(self) -> Sequence[str]:
        return [OWNER_LABEL] + [f"buyer-{index}" for index in range(self.num_buyers)]

    def configure_genesis(self, genesis: GenesisConfig) -> None:
        owner_address = address_from_label(OWNER_LABEL)
        genesis.deploy_contract(
            self.contract, "Sereth", storage=genesis_storage(owner_address, self.contract)
        )

    def hms_targets(self) -> Sequence[Tuple[Address, bytes]]:
        return [(self.contract, SET_SELECTOR)]

    def semantic_config(self) -> Optional[SemanticMiningConfig]:
        return SemanticMiningConfig(
            hms=HMSConfig(contract_address=self.contract, set_selector=SET_SELECTOR),
            buy_selectors=(BUY_SELECTOR,),
        )

    def setup(self, context: SimulationContext) -> None:
        spec = self.spec
        client_peers = context.client_peers
        self.setter = PriceSetter(
            OWNER_LABEL,
            client_peers[0],
            context.simulator,
            self.contract,
            gas_limit=spec.transaction_gas_limit,
        )
        self.setter.prime_mark(initial_mark(self.contract))
        self.buyers = [
            Buyer(
                f"buyer-{index}",
                client_peers[index % len(client_peers)],
                context.simulator,
                self.contract,
                read_mode=spec.scenario.buyer_read_mode,
                gas_limit=spec.transaction_gas_limit,
            )
            for index in range(self.num_buyers)
        ]
        prices: PriceProcess = RandomWalkPrices(
            initial=self.initial_price,
            max_step=self.price_max_step,
            seed=context.seeds.prices,
        )
        self._market = MarketWorkload(
            self.config, self.setter, self.buyers, context.metrics, prices=prices
        )

    def schedule(self, context: SimulationContext) -> None:
        assert self._market is not None
        self._market.schedule(context.simulator, deploy_time=0.2)

    @property
    def end_of_submissions(self) -> float:
        assert self._market is not None
        return self._market.end_of_submissions

    def is_complete(self, context: SimulationContext) -> bool:
        metrics = context.metrics
        return (
            metrics.watched_count(BUY_LABEL) == self.config.num_buys
            and metrics.pending_count(BUY_LABEL) == 0
        )

    def duration_cap(self, spec: "SimulationSpec") -> float:
        if spec.max_duration is not None:
            return spec.max_duration
        window = self.config.num_buys * self.config.submission_interval
        return (
            self.config.start_time
            + window
            + spec.settle_blocks * spec.block_interval
            + 60.0
        )

    @property
    def primary_label(self) -> Optional[str]:
        return BUY_LABEL

    def finalize(self, context: SimulationContext) -> Dict[str, Any]:
        return {"contract": self.contract}


# ======================================================================================
# ticket_sale — surge pricing over a fixed inventory
# ======================================================================================

TICKET_LABEL = "ticket"
_TICKET_VENUE_LABEL = "ticket-sale-venue"
_TICKET_SET_ABI = TicketSaleContract.function_by_name("set_price").abi
_TICKET_BUY_ABI = TicketSaleContract.function_by_name("buy_tickets").abi


class _TicketBuyer(ContractClient):
    """Buys one ticket at terms read from committed state or the HMS view."""

    def __init__(self, label, peer, simulator, venue: Address, use_hms: bool) -> None:
        super().__init__(label, peer, simulator)
        self.venue = venue
        self.use_hms = use_hms

    def observe(self) -> Tuple[bytes, bytes]:
        if self.use_hms:
            placeholder = [to_bytes32(0)] * 3
            mark = self.call(self.venue, "pending_mark", [placeholder]).values[0]
            price = self.call(self.venue, "pending_price", [placeholder]).values[0]
            return mark, price
        mark, price, _remaining = self.call(self.venue, "sale_state").values
        return mark, to_bytes32(price)

    def buy_one(self):
        mark, price = self.observe()
        calldata = _TICKET_BUY_ABI.encode_call(
            [BUY_FLAG, to_bytes32(mark), to_bytes32(price)], 1
        )
        return self.send_transaction(to=self.venue, data=calldata)


class _TicketOrganiser(ContractClient):
    """Surge-prices the tickets, chaining marks locally like the Sereth owner."""

    def __init__(self, label, peer, simulator, venue: Address, genesis_mark: bytes) -> None:
        super().__init__(label, peer, simulator)
        self.venue = venue
        self._mark = genesis_mark
        self._sent_any = False

    def set_price(self, price: int):
        flag = SUCCESS_FLAG if self._sent_any else HEAD_FLAG
        calldata = _TICKET_SET_ABI.encode_call(fpv_to_words(flag, self._mark, price))
        transaction = self.send_transaction(to=self.venue, data=calldata)
        self._mark = compute_mark(self._mark, to_bytes32(price))
        self._sent_any = True
        return transaction


@register_workload("ticket_sale")
class TicketSaleWorkload(Workload):
    """Fans race a surge-priced ticket sale; the organiser keeps repricing."""

    name = "ticket_sale"

    def __init__(
        self,
        spec: "SimulationSpec",
        num_buyers: int = 6,
        price_changes: int = 12,
        buys_per_buyer: int = 4,
        change_interval: float = 4.0,
        base_price: int = 40,
        surge_step: int = 5,
    ) -> None:
        super().__init__(spec)
        if num_buyers <= 0 or price_changes <= 0 or buys_per_buyer <= 0:
            raise ValueError("num_buyers, price_changes, buys_per_buyer must be positive")
        if change_interval <= 0:
            raise ValueError("change_interval must be positive")
        self.num_buyers = num_buyers
        self.price_changes = price_changes
        self.buys_per_buyer = buys_per_buyer
        self.change_interval = change_interval
        self.base_price = base_price
        self.surge_step = surge_step
        self.venue = address_from_label(_TICKET_VENUE_LABEL)
        self.genesis_mark = keccak256(b"ticket-sale/genesis/", self.venue)
        self._last_event = 0.0

    def account_labels(self) -> Sequence[str]:
        return ["organiser"] + [f"fan-{index}" for index in range(self.num_buyers)]

    def configure_genesis(self, genesis: GenesisConfig) -> None:
        genesis.deploy_contract(
            self.venue,
            "TicketSale",
            storage={
                to_bytes32(0): to_bytes32(address_from_label("organiser")),
                to_bytes32(1): self.genesis_mark,
                to_bytes32(3): to_bytes32(TicketSaleContract.INITIAL_INVENTORY),
            },
        )

    def hms_targets(self) -> Sequence[Tuple[Address, bytes]]:
        return [(self.venue, _TICKET_SET_ABI.selector)]

    def semantic_config(self) -> Optional[SemanticMiningConfig]:
        return SemanticMiningConfig(
            hms=HMSConfig(
                contract_address=self.venue, set_selector=_TICKET_SET_ABI.selector
            ),
            buy_selectors=(_TICKET_BUY_ABI.selector,),
        )

    def setup(self, context: SimulationContext) -> None:
        use_hms = self.spec.scenario.buyer_read_mode == READ_UNCOMMITTED
        client_peers = context.client_peers
        self.organiser = _TicketOrganiser(
            "organiser", client_peers[0], context.simulator, self.venue, self.genesis_mark
        )
        self.buyers = [
            _TicketBuyer(
                f"fan-{index}",
                client_peers[index % len(client_peers)],
                context.simulator,
                self.venue,
                use_hms=use_hms,
            )
            for index in range(self.num_buyers)
        ]

    def schedule(self, context: SimulationContext) -> None:
        simulator, metrics = context.simulator, context.metrics
        for change in range(self.price_changes):
            price = self.base_price + self.surge_step * change
            at = 1.0 + change * self.change_interval
            simulator.schedule_at(at, lambda price=price: self.organiser.set_price(price))
            self._last_event = max(self._last_event, at)
        total_buys = self.num_buyers * self.buys_per_buyer
        window = self.price_changes * self.change_interval
        buy_index = 0
        for _round in range(self.buys_per_buyer):
            for buyer in self.buyers:
                at = 2.0 + buy_index * (window / total_buys)
                simulator.schedule_at(
                    at,
                    lambda buyer=buyer: metrics.watch(
                        buyer.buy_one(), TICKET_LABEL, simulator.now
                    ),
                )
                self._last_event = max(self._last_event, at)
                buy_index += 1

    @property
    def end_of_submissions(self) -> float:
        return self._last_event

    def is_complete(self, context: SimulationContext) -> bool:
        metrics = context.metrics
        total = self.num_buyers * self.buys_per_buyer
        return (
            metrics.watched_count(TICKET_LABEL) == total
            and metrics.pending_count(TICKET_LABEL) == 0
        )

    @property
    def primary_label(self) -> Optional[str]:
        return TICKET_LABEL

    def finalize(self, context: SimulationContext) -> Dict[str, Any]:
        remaining = context.reference_chain.state.get_storage(
            self.venue, to_bytes32(3)
        )
        return {"contract": self.venue, "tickets_remaining": int_from_bytes32(remaining)}


# ======================================================================================
# auction — an English auction over a mark-chained bid history
# ======================================================================================

BID_LABEL = "bid"
_AUCTION_LABEL = "auction-house"
_BID_ABI = AuctionContract.function_by_name("bid").abi


class _Bidder(ContractClient):
    """Outbids the high bid it can see (committed state or the HMS view)."""

    def __init__(self, label, peer, simulator, auction: Address, use_hms: bool, increment: int) -> None:
        super().__init__(label, peer, simulator)
        self.auction = auction
        self.use_hms = use_hms
        self.increment = increment

    def observe(self) -> Tuple[bytes, int]:
        """The (mark, high bid) this bidder believes is current."""
        if self.use_hms:
            placeholder = [to_bytes32(0)] * 3
            mark = self.call(self.auction, "pending_mark", [placeholder]).values[0]
            high = self.call(self.auction, "pending_high_bid", [placeholder]).values[0]
            return mark, int_from_bytes32(high)
        mark, high, _bidder = self.call(self.auction, "auction_state").values
        return mark, high

    def bid_once(self):
        observed_mark, observed_high = self.observe()
        committed_mark = self.call(self.auction, "auction_state").values[0]
        # Head candidate if our view equals committed state, successor if we
        # are chaining onto a pending bid — mirroring the Sereth price setter.
        flag = HEAD_FLAG if observed_mark == committed_mark else SUCCESS_FLAG
        amount = observed_high + self.increment
        calldata = _BID_ABI.encode_call(fpv_to_words(flag, observed_mark, amount))
        return self.send_transaction(to=self.auction, data=calldata, value=amount)


@register_workload("auction")
class AuctionWorkload(Workload):
    """Bidders race an open-outcry auction; every accepted bid moves the mark."""

    name = "auction"

    def __init__(
        self,
        spec: "SimulationSpec",
        num_bidders: int = 4,
        bids_per_bidder: int = 3,
        bid_interval: float = 2.0,
        increment: int = 10,
    ) -> None:
        super().__init__(spec)
        if num_bidders <= 0 or bids_per_bidder <= 0:
            raise ValueError("num_bidders and bids_per_bidder must be positive")
        if bid_interval <= 0 or increment <= 0:
            raise ValueError("bid_interval and increment must be positive")
        self.num_bidders = num_bidders
        self.bids_per_bidder = bids_per_bidder
        self.bid_interval = bid_interval
        self.increment = increment
        self.auction = address_from_label(_AUCTION_LABEL)
        self.genesis_mark = keccak256(b"auction/genesis/", self.auction)
        self._last_event = 0.0

    def account_labels(self) -> Sequence[str]:
        return ["seller"] + [f"bidder-{index}" for index in range(self.num_bidders)]

    def configure_genesis(self, genesis: GenesisConfig) -> None:
        seller = address_from_label("seller")
        genesis.deploy_contract(
            self.auction,
            "Auction",
            storage={
                to_bytes32(0): to_bytes32(seller),
                to_bytes32(1): self.genesis_mark,
                to_bytes32(2): to_bytes32(0),
                to_bytes32(3): to_bytes32(seller),
                to_bytes32(4): to_bytes32(0),
                to_bytes32(5): to_bytes32(0),
            },
        )

    def hms_targets(self) -> Sequence[Tuple[Address, bytes]]:
        return [(self.auction, _BID_ABI.selector)]

    def semantic_config(self) -> Optional[SemanticMiningConfig]:
        return SemanticMiningConfig(
            hms=HMSConfig(contract_address=self.auction, set_selector=_BID_ABI.selector),
            buy_selectors=(),
        )

    def setup(self, context: SimulationContext) -> None:
        use_hms = self.spec.scenario.buyer_read_mode == READ_UNCOMMITTED
        client_peers = context.client_peers
        self.bidders = [
            _Bidder(
                f"bidder-{index}",
                client_peers[index % len(client_peers)],
                context.simulator,
                self.auction,
                use_hms=use_hms,
                increment=self.increment,
            )
            for index in range(self.num_bidders)
        ]

    def schedule(self, context: SimulationContext) -> None:
        simulator, metrics = context.simulator, context.metrics
        bid_index = 0
        for _round in range(self.bids_per_bidder):
            for bidder in self.bidders:
                at = 1.0 + bid_index * self.bid_interval
                simulator.schedule_at(
                    at,
                    lambda bidder=bidder: metrics.watch(
                        bidder.bid_once(), BID_LABEL, simulator.now
                    ),
                )
                self._last_event = max(self._last_event, at)
                bid_index += 1

    @property
    def end_of_submissions(self) -> float:
        return self._last_event

    def is_complete(self, context: SimulationContext) -> bool:
        metrics = context.metrics
        total = self.num_bidders * self.bids_per_bidder
        return (
            metrics.watched_count(BID_LABEL) == total
            and metrics.pending_count(BID_LABEL) == 0
        )

    @property
    def primary_label(self) -> Optional[str]:
        return BID_LABEL

    def finalize(self, context: SimulationContext) -> Dict[str, Any]:
        state = context.reference_chain.state
        return {
            "contract": self.auction,
            "high_bid": int_from_bytes32(state.get_storage(self.auction, to_bytes32(2))),
            "accepted_bids": int_from_bytes32(
                state.get_storage(self.auction, to_bytes32(4))
            ),
        }


# ======================================================================================
# oracle — RAA versus a conventional request/response oracle
# ======================================================================================

_ORACLE_REQUEST_ABI = OracleContract.function_by_name("request").abi


@register_workload("oracle")
class OracleLatencyWorkload(Workload):
    """Measures data latency of RAA view calls versus an oracle round trip."""

    name = "oracle"

    def __init__(
        self,
        spec: "SimulationSpec",
        num_queries: int = 10,
        query_interval: float = 10.0,
        price_change_interval: float = 5.0,
    ) -> None:
        super().__init__(spec)
        if num_queries <= 0 or query_interval <= 0 or price_change_interval <= 0:
            raise ValueError("oracle workload intervals and counts must be positive")
        self.num_queries = num_queries
        self.query_interval = query_interval
        self.price_change_interval = price_change_interval
        self.sereth_address = sereth_exchange_address()
        self.oracle_address = address_from_label("oracle-contract")
        self.raa_latencies: List[float] = []
        self.request_times: Dict[int, float] = {}

    def account_labels(self) -> Sequence[str]:
        return ["oracle-owner", "oracle-consumer", "oracle-operator"]

    def configure_genesis(self, genesis: GenesisConfig) -> None:
        genesis.deploy_contract(
            self.sereth_address,
            "Sereth",
            storage=genesis_storage(address_from_label("oracle-owner"), self.sereth_address),
        )
        genesis.deploy_contract(
            self.oracle_address,
            "Oracle",
            storage={
                to_bytes32(0): to_bytes32(address_from_label("oracle-operator")),
                to_bytes32(1): to_bytes32(0),
            },
        )

    def hms_targets(self) -> Sequence[Tuple[Address, bytes]]:
        return [(self.sereth_address, SET_SELECTOR)]

    def semantic_config(self) -> Optional[SemanticMiningConfig]:
        return SemanticMiningConfig(
            hms=HMSConfig(contract_address=self.sereth_address, set_selector=SET_SELECTOR),
            buy_selectors=(BUY_SELECTOR,),
        )

    @property
    def total_duration(self) -> float:
        return (
            self.num_queries * self.query_interval
            + 6 * self.spec.block_interval
        )

    def setup(self, context: SimulationContext) -> None:
        simulator = context.simulator
        miner_peer = context.miner_peers[0]
        client_peer = context.client_peers[0]

        self.setter = PriceSetter(
            "oracle-owner", client_peer, simulator, self.sereth_address
        )
        self.setter.prime_mark(initial_mark(self.sereth_address))

        # Imported lazily: repro.oracle's package init pulls in the facade,
        # so a module-level import here would be circular.
        from ..oracle.service import OracleOperator

        def price_source(query: bytes) -> bytes:
            return miner_peer.chain.state.get_storage(
                self.sereth_address, bytes32_from_int(2)
            )

        self.operator = OracleOperator(
            "oracle-operator",
            miner_peer,
            simulator,
            self.oracle_address,
            data_source=price_source,
        )
        self.consumer = ContractClient("oracle-consumer", client_peer, simulator)

    def schedule(self, context: SimulationContext) -> None:
        simulator = context.simulator
        self.operator.start()

        def change_price(step: int):
            def fire() -> None:
                self.setter.set_price(100 + step)

            return fire

        price_steps = int(self.total_duration / self.price_change_interval)
        for step in range(price_steps):
            simulator.schedule_at(
                0.5 + step * self.price_change_interval, change_price(step)
            )

        expected_request_ids = iter(range(self.num_queries))

        def query_via_both():
            def fire() -> None:
                # RAA path: a local view call answers immediately.
                started = simulator.now
                placeholder = [to_bytes32(0)] * 3
                self.consumer.call(self.sereth_address, "get", [placeholder])
                self.raa_latencies.append(simulator.now - started)
                # Oracle path: request must commit, then the answer must commit.
                request_id = next(expected_request_ids)
                self.request_times[request_id] = started
                self.consumer.send_transaction(
                    to=self.oracle_address,
                    data=_ORACLE_REQUEST_ABI.encode_call(to_bytes32(b"sereth-price")),
                )

            return fire

        for query_index in range(self.num_queries):
            simulator.schedule_at(5.0 + query_index * self.query_interval, query_via_both())

    @property
    def end_of_submissions(self) -> float:
        return 5.0 + (self.num_queries - 1) * self.query_interval

    def duration_cap(self, spec: "SimulationSpec") -> float:
        if spec.max_duration is not None:
            return spec.max_duration
        return self.total_duration

    @property
    def post_stop_drain(self) -> float:
        return 2 * self.spec.block_interval

    def finalize(self, context: SimulationContext) -> Dict[str, Any]:
        self.operator.stop()
        chain = context.client_peers[0].chain
        answer_commit_times: Dict[int, float] = {}
        for block in chain.blocks():
            for receipt in block.receipts:
                if not receipt.success:
                    continue
                for log in receipt.logs:
                    if (
                        log.address == self.oracle_address
                        and log.topics
                        and log.topics[0] == ANSWER_EVENT
                    ):
                        request_id = int_from_bytes32(log.topics[1])
                        answer_commit_times.setdefault(request_id, block.timestamp)
        oracle_latencies: List[float] = []
        unanswered = 0
        for request_id, started in self.request_times.items():
            if request_id in answer_commit_times:
                oracle_latencies.append(answer_commit_times[request_id] - started)
            else:
                unanswered += 1
        return {
            "raa_latencies": list(self.raa_latencies),
            "oracle_latencies": oracle_latencies,
            "oracle_unanswered": unanswered,
        }


# ======================================================================================
# sequential — the single-sender sanity experiment (Section V)
# ======================================================================================

_SERETH_SET_ABI = SerethContract.function_by_name("set").abi
_SERETH_BUY_ABI = SerethContract.function_by_name("buy").abi


@register_workload("sequential")
class SequentialHistoryWorkload(Workload):
    """One account alternates set/buy; nonce order pins the history."""

    name = "sequential"

    def __init__(
        self,
        spec: "SimulationSpec",
        num_pairs: int = 25,
        submission_interval: float = 1.0,
    ) -> None:
        super().__init__(spec)
        if num_pairs <= 0 or submission_interval <= 0:
            raise ValueError("num_pairs and submission_interval must be positive")
        self.num_pairs = num_pairs
        self.submission_interval = submission_interval
        self.contract = sereth_exchange_address()

    def account_labels(self) -> Sequence[str]:
        return ["solo-trader"]

    def configure_genesis(self, genesis: GenesisConfig) -> None:
        trader = address_from_label("solo-trader")
        genesis.deploy_contract(
            self.contract, "Sereth", storage=genesis_storage(trader, self.contract)
        )

    def hms_targets(self) -> Sequence[Tuple[Address, bytes]]:
        return [(self.contract, SET_SELECTOR)]

    def setup(self, context: SimulationContext) -> None:
        self.setter = PriceSetter(
            "solo-trader", context.client_peers[0], context.simulator, self.contract
        )
        self.setter.prime_mark(initial_mark(self.contract))

    def schedule(self, context: SimulationContext) -> None:
        simulator, metrics = context.simulator, context.metrics
        setter = self.setter

        def make_pair(pair_index: int):
            price = 100 + pair_index

            def fire() -> None:
                set_transaction = setter.set_price(price)
                metrics.watch(set_transaction, SET_LABEL, submitted_at=set_transaction.submitted_at)
                # Issued by the same account immediately after its set,
                # referencing the mark that set will install.
                offer = [BUY_FLAG, setter._last_mark, to_bytes32(price)]
                calldata = _SERETH_BUY_ABI.encode_call(offer)
                buy_transaction = setter.send_transaction(to=self.contract, data=calldata)
                metrics.watch(buy_transaction, BUY_LABEL, submitted_at=buy_transaction.submitted_at)

            return fire

        for pair_index in range(self.num_pairs):
            simulator.schedule_at(
                1.0 + pair_index * self.submission_interval, make_pair(pair_index)
            )

    @property
    def end_of_submissions(self) -> float:
        return 1.0 + self.num_pairs * self.submission_interval

    def is_complete(self, context: SimulationContext) -> bool:
        metrics = context.metrics
        return (
            metrics.watched_count() == 2 * self.num_pairs
            and metrics.pending_count() == 0
        )

    def duration_cap(self, spec: "SimulationSpec") -> float:
        if spec.max_duration is not None:
            return spec.max_duration
        return self.end_of_submissions + 8 * spec.block_interval


# ======================================================================================
# victim_market — an attackable market with no built-in attacker
# ======================================================================================

# FrontrunningAttacker and VICTIM_BUY_LABEL moved to repro.adversary.strategies
# in the adversary-subsystem refactor; they are re-imported at the top of this
# module so `from repro.api.workloads import FrontrunningAttacker` keeps
# working for existing experiments and notebooks.


@register_workload("victim_market")
class VictimMarketWorkload(Workload):
    """An owner prices a Sereth market; a victim buys at the terms it observes.

    The attack-surface workload of the adversary matrix: it drives no attack
    itself, so whatever harm the victim suffers is attributable to the
    adversaries the spec plugs in.  The ``frontrunning`` workload subclasses
    this with its historical hard-coded attacker.
    """

    name = "victim_market"

    def __init__(
        self,
        spec: "SimulationSpec",
        num_victim_buys: int = 40,
        buy_interval: float = 2.0,
        victim_read_mode: Optional[str] = None,
        initial_price: int = 100,
        reprice_interval: Optional[float] = None,
        reprice_step: int = 5,
    ) -> None:
        super().__init__(spec)
        if num_victim_buys <= 0 or buy_interval <= 0:
            raise ValueError("num_victim_buys and buy_interval must be positive")
        if initial_price <= 0:
            raise ValueError("initial_price must be positive")
        if reprice_interval is not None and reprice_interval <= 0:
            raise ValueError("reprice_interval must be positive when given")
        self.num_victim_buys = num_victim_buys
        self.buy_interval = buy_interval
        self.victim_read_mode = victim_read_mode or spec.scenario.buyer_read_mode
        self.initial_price = initial_price
        self.reprice_interval = reprice_interval
        self.reprice_step = reprice_step
        self.contract = sereth_exchange_address()

    def account_labels(self) -> Sequence[str]:
        return ["market-owner", "victim"]

    def configure_genesis(self, genesis: GenesisConfig) -> None:
        genesis.deploy_contract(
            self.contract,
            "Sereth",
            storage=genesis_storage(address_from_label("market-owner"), self.contract),
        )

    def hms_targets(self) -> Sequence[Tuple[Address, bytes]]:
        return [(self.contract, SET_SELECTOR)]

    def semantic_config(self) -> Optional[SemanticMiningConfig]:
        return SemanticMiningConfig(
            hms=HMSConfig(contract_address=self.contract, set_selector=SET_SELECTOR),
            buy_selectors=(BUY_SELECTOR,),
        )

    def setup(self, context: SimulationContext) -> None:
        simulator = context.simulator
        victim_peer = context.client_peers[0]
        self.owner = PriceSetter("market-owner", victim_peer, simulator, self.contract)
        self.owner.prime_mark(initial_mark(self.contract))
        self.victim = Buyer(
            "victim", victim_peer, simulator, self.contract, read_mode=self.victim_read_mode
        )

    def schedule(self, context: SimulationContext) -> None:
        simulator, metrics = context.simulator, context.metrics
        simulator.schedule_at(0.5, lambda: self.owner.set_price(self.initial_price))
        if self.reprice_interval is not None:
            # A moving market: delay-based attacks (suppression, censorship)
            # only bite when the terms a victim observed can go stale.
            reprice_index = 1
            at = 0.5 + self.reprice_interval
            while at < self.end_of_submissions:
                price = self.initial_price + reprice_index * self.reprice_step
                simulator.schedule_at(
                    at, lambda price=price: self.owner.set_price(price)
                )
                reprice_index += 1
                at += self.reprice_interval
        for buy_index in range(self.num_victim_buys):
            at = 5.0 + buy_index * self.buy_interval
            simulator.schedule_at(
                at,
                lambda: metrics.watch(self.victim.buy(), VICTIM_BUY_LABEL, simulator.now),
            )

    @property
    def end_of_submissions(self) -> float:
        return 5.0 + self.num_victim_buys * self.buy_interval

    def is_complete(self, context: SimulationContext) -> bool:
        metrics = context.metrics
        return (
            metrics.watched_count(VICTIM_BUY_LABEL) == self.num_victim_buys
            and metrics.pending_count(VICTIM_BUY_LABEL) == 0
        )

    def duration_cap(self, spec: "SimulationSpec") -> float:
        if spec.max_duration is not None:
            return spec.max_duration
        return self.end_of_submissions + 6 * spec.block_interval

    @property
    def primary_label(self) -> Optional[str]:
        return VICTIM_BUY_LABEL

    def finalize(self, context: SimulationContext) -> Dict[str, Any]:
        auditor = ChainAuditor(
            contract_address=self.contract,
            set_selector=SET_SELECTOR,
            buy_selector=BUY_SELECTOR,
            initial_mark=initial_mark(self.contract),
        )
        audit = auditor.audit_chain(context.reference_chain)
        return {
            "overpaid": len(audit.violations_of_kind("buy_wrongly_succeeded")),
            "audit_clean": audit.is_clean,
        }


# ======================================================================================
# frontrunning — the victim market with its historical hard-coded attacker
# ======================================================================================


@register_workload("frontrunning")
class FrontrunningWorkload(VictimMarketWorkload):
    """An attacker monitors the pending pool and races every victim buy."""

    name = "frontrunning"

    def __init__(
        self,
        spec: "SimulationSpec",
        num_victim_buys: int = 40,
        buy_interval: float = 2.0,
        attack_markup: int = 25,
        victim_read_mode: Optional[str] = None,
    ) -> None:
        super().__init__(
            spec,
            num_victim_buys=num_victim_buys,
            buy_interval=buy_interval,
            victim_read_mode=victim_read_mode,
        )
        self.attack_markup = attack_markup

    def account_labels(self) -> Sequence[str]:
        return list(super().account_labels()) + ["frontrunner"]

    def setup(self, context: SimulationContext) -> None:
        super().setup(context)
        attacker_peer = context.client_peers[-1]
        self.attacker = FrontrunningAttacker(
            "frontrunner",
            attacker_peer,
            context.simulator,
            self.contract,
            markup=self.attack_markup,
        )

    def schedule(self, context: SimulationContext) -> None:
        super().schedule(context)
        self.attacker.start()

    def finalize(self, context: SimulationContext) -> Dict[str, Any]:
        self.attacker.stop()
        extras = super().finalize(context)
        extras["attacks_launched"] = self.attacker.attacks_launched
        return extras


# ======================================================================================
# steady_state — a constant trickle of traffic over an arbitrarily long horizon
# ======================================================================================

STEADY_LABEL = "steady"


@register_workload("steady_state")
class SteadyStateWorkload(Workload):
    """A fixed-rate drip of ``set`` transactions over ``num_blocks`` blocks.

    The other workloads are *finite*: they submit a bounded batch and the run
    ends when the batch settles.  This one is shaped for the memory-model
    experiments — the horizon is measured in **blocks**, the traffic rate is
    constant (one ``set`` every ``blocks_per_set`` block intervals, all from
    the single owner account, so every transaction succeeds), and per-block
    work is tiny.  Run it for 50k+ blocks with ``retention=`` set and RSS
    stays flat; run it unretained and history growth dominates.
    """

    name = "steady_state"

    def __init__(
        self,
        spec: "SimulationSpec",
        num_blocks: int = 1000,
        blocks_per_set: int = 8,
        start_time: float = 1.0,
        initial_price: int = 100,
    ) -> None:
        super().__init__(spec)
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if blocks_per_set <= 0:
            raise ValueError("blocks_per_set must be positive")
        self.num_blocks = num_blocks
        self.blocks_per_set = blocks_per_set
        self.start_time = start_time
        self.initial_price = initial_price
        self.num_sets = max(1, num_blocks // blocks_per_set)
        self.contract = sereth_exchange_address()
        self.setter: Optional[PriceSetter] = None
        self._metrics: Optional[MetricsCollector] = None

    def account_labels(self) -> Sequence[str]:
        return [OWNER_LABEL]

    def configure_genesis(self, genesis: GenesisConfig) -> None:
        owner_address = address_from_label(OWNER_LABEL)
        genesis.deploy_contract(
            self.contract, "Sereth", storage=genesis_storage(owner_address, self.contract)
        )

    def hms_targets(self) -> Sequence[Tuple[Address, bytes]]:
        return [(self.contract, SET_SELECTOR)]

    def semantic_config(self) -> Optional[SemanticMiningConfig]:
        return SemanticMiningConfig(
            hms=HMSConfig(contract_address=self.contract, set_selector=SET_SELECTOR),
            buy_selectors=(BUY_SELECTOR,),
        )

    def setup(self, context: SimulationContext) -> None:
        self.setter = PriceSetter(
            OWNER_LABEL,
            context.client_peers[0],
            context.simulator,
            self.contract,
            gas_limit=self.spec.transaction_gas_limit,
        )
        self.setter.prime_mark(initial_mark(self.contract))
        self._metrics = context.metrics

    def schedule(self, context: SimulationContext) -> None:
        interval = self.blocks_per_set * self.spec.block_interval

        def make_set(price: int):
            def fire() -> None:
                assert self.setter is not None and self._metrics is not None
                transaction = self.setter.set_price(price)
                self._metrics.watch(
                    transaction, STEADY_LABEL, submitted_at=transaction.submitted_at
                )
                # PriceSetter (and the client base) keep audit lists of every
                # transaction submitted; nothing in this workload reads them,
                # and over a 100k-block horizon they are a leak, so drop them
                # as we go.
                self.setter.set_transactions.clear()
                self.setter.sent_transactions.clear()

            return fire

        for index in range(self.num_sets):
            # Prices walk a small modular ramp so consecutive sets differ
            # (identical values would still chain marks, but distinct values
            # keep every block's post-state distinct — the honest worst case
            # for state retention).
            price = self.initial_price + index % 97
            context.simulator.schedule_at(self.start_time + index * interval, make_set(price))

    @property
    def end_of_submissions(self) -> float:
        # The horizon is measured in blocks, not submissions: keep producing
        # (mostly empty) blocks until ``num_blocks`` intervals have elapsed.
        return self.start_time + self.num_blocks * self.spec.block_interval

    def is_complete(self, context: SimulationContext) -> bool:
        metrics = context.metrics
        return (
            metrics.watched_count(STEADY_LABEL) == self.num_sets
            and metrics.pending_count(STEADY_LABEL) == 0
        )

    def duration_cap(self, spec: "SimulationSpec") -> float:
        if spec.max_duration is not None:
            return spec.max_duration
        return self.end_of_submissions + (spec.settle_blocks + 4) * spec.block_interval

    @property
    def primary_label(self) -> Optional[str]:
        return STEADY_LABEL

    def finalize(self, context: SimulationContext) -> Dict[str, Any]:
        return {"contract": self.contract, "num_blocks": self.num_blocks}
