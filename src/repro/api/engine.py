"""The simulation engine: generic network wiring plus the measured run loop.

This module is the single place in the repository that stands up a
``Network`` of ``Peer`` objects, registers miners, and drives the
discrete-event loop.  Everything experiment-specific comes from the
:class:`~repro.api.workloads.Workload` the spec names; everything stochastic
is seeded from one :class:`~repro.api.seeding.SeedPlan` rooted at
``spec.seed``, so a spec is a complete, reproducible description of a run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..adversary import ADVERSARY_REGISTRY, Adversary, AdversaryTarget
from ..chain.apply_cache import BlockApplyCache
from ..chain.genesis import DEFAULT_INITIAL_BALANCE, GenesisConfig
from ..consensus.interval import FixedInterval, PoissonInterval
from ..consensus.miner import MinerConfig
from ..consensus.policies import (
    ArrivalJitterPolicy,
    FeeArrivalPolicy,
    FifoPolicy,
    RandomPolicy,
)
from ..core.hms.semantic import SemanticMiningPolicy
from ..core.metrics import MetricsCollector, ThroughputReport
from ..crypto.addresses import address_from_label
from ..faults import FaultInjector
from ..net.latency import UniformLatency
from ..net.mining import BlockProductionProcess
from ..net.network import Network
from ..net.peer import Peer, SERETH_CLIENT
from ..net.sim import Simulator
from ..net.topology import BandwidthModel, ChurnPlan, Topology, resolve_topology
from ..obs import runtime as _obs_runtime
from ..obs.tracer import Tracer
from .checkpoint import spec_digest
from .lifecycle import end_of_trial_cleanup
from .registry import WORKLOAD_REGISTRY
from .seeding import SeedPlan
from .spec import SimulationSpec
from .workloads import SimulationContext, Workload

__all__ = ["SimulationHandle", "SimulationResult", "run_simulation", "build_simulation"]


def _jsonable(value: Any) -> Any:
    """Render extras/report values into JSON-encodable equivalents."""
    if isinstance(value, bytes):
        return "0x" + value.hex()
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


@dataclass
class SimulationResult:
    """Everything one simulation run produced."""

    spec: SimulationSpec
    reports: Dict[str, ThroughputReport]
    primary_label: Optional[str]
    blocks_produced: int
    simulated_seconds: float
    metrics: MetricsCollector
    peers: List[Peer] = field(default_factory=list)
    extras: Dict[str, Any] = field(default_factory=dict)
    adversary_reports: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    """Per-adversary attack metrics, keyed by strategy name (``name@index``
    when the same strategy runs more than once)."""
    obs: Optional[Tracer] = None
    """The run's tracer when ``spec.observe`` was set, else ``None``."""

    def report(self, label: Optional[str] = None) -> ThroughputReport:
        """The throughput report for ``label`` (default: the primary label)."""
        key = label if label is not None else self.primary_label
        if key is None:
            return self.metrics.report()
        if key not in self.reports:
            raise KeyError(
                f"no report for label {key!r}; available: {sorted(self.reports)}"
            )
        return self.reports[key]

    @property
    def efficiency(self) -> float:
        """Transaction efficiency eta of the primary label."""
        return self.report().efficiency

    def summary(self) -> Dict[str, Any]:
        """A stable, JSON-ready digest — identical for identical specs, and
        the unit of comparison for serial-vs-parallel sweep equivalence."""
        data = {
            "spec": self.spec.describe(),
            "primary_label": self.primary_label,
            "efficiency": self.efficiency if self.primary_label else None,
            "reports": {
                label: _jsonable(report.as_dict())
                for label, report in sorted(self.reports.items())
            },
            "blocks_produced": self.blocks_produced,
            "simulated_seconds": self.simulated_seconds,
            "extras": _jsonable(self.extras),
            "adversaries": {
                key: _jsonable(report)
                for key, report in sorted(self.adversary_reports.items())
            },
        }
        if self.metrics is not None and self.metrics.streaming:
            # Streaming-only key: default (unbounded) summaries keep the
            # exact bytes the committed golden checksums were recorded on.
            data["metrics_windows"] = _jsonable(self.metrics.windows())
        if self.obs is not None:
            # Observability-only key, same emit-only-when-enabled rule.
            data["observability"] = self.obs.summary()
        return data

    def windows_frame(self):
        """The streaming per-(label, window) aggregates as a ResultFrame
        (empty unless the spec set ``metrics_window``)."""
        from .frame import ResultFrame

        return ResultFrame.from_records(self.metrics.windows())


class SimulationHandle:
    """A fully wired (but not yet run) simulation.

    Built by :func:`build_simulation`; interactive consumers (the quickstart
    and interoperability examples) use the exposed ``simulator``, ``peers``,
    and ``workload`` to drive the network manually, while :meth:`run`
    executes the standard measured loop.
    """

    def __init__(self, spec: SimulationSpec, simulator: Optional[Simulator] = None) -> None:
        self.spec = spec
        self.seeds = SeedPlan(spec.seed)
        workload_class = WORKLOAD_REGISTRY.get(spec.workload)
        self.workload: Workload = workload_class(spec, **spec.params)
        self.adversaries: List[Adversary] = []
        for adversary_index, (adversary_name, adversary_params) in enumerate(spec.adversaries):
            adversary_class = ADVERSARY_REGISTRY.get(adversary_name)
            adversary = adversary_class(spec, **dict(adversary_params))
            adversary.assign_index(adversary_index)
            self.adversaries.append(adversary)

        # Warm workers hand in a reused Simulator; reset() makes it
        # indistinguishable from a fresh one, so results are identical.
        if simulator is None:
            simulator = Simulator()
        else:
            simulator.reset()
        self.simulator = simulator
        # One block-application cache per trial: all peers share validated
        # post-states (forked copy-on-write), and the cache dies with the
        # handle so nothing leaks across sweep cells.  With retention, the
        # cache additionally evicts templates that slide out of the window —
        # the cache is what pins old per-block states within a trial.
        self.apply_cache = BlockApplyCache(retain_blocks=spec.retention)
        latency = UniformLatency(
            low=max(spec.gossip_latency - spec.gossip_jitter, 0.001),
            high=spec.gossip_latency + spec.gossip_jitter,
            seed=self.seeds.latency,
        )
        self.network = Network(
            self.simulator,
            latency=latency,
            transaction_loss_rate=spec.transaction_loss_rate,
            seed=self.seeds.network,
            bandwidth=(
                BandwidthModel(**dict(spec.bandwidth))
                if spec.bandwidth is not None
                else None
            ),
            history_limit=spec.retention,
        )
        # Any network-model field set => the run reports propagation extras.
        self._network_realism = (
            spec.topology is not None or spec.bandwidth is not None or bool(spec.churn)
        )

        # Genesis: fund the workload's accounts and every miner, then let the
        # workload pre-deploy its contracts.
        genesis = GenesisConfig.for_labels(
            list(self.workload.account_labels()), balance=DEFAULT_INITIAL_BALANCE
        )
        for miner_index in range(spec.num_miners):
            genesis.fund(address_from_label(f"miner/miner-{miner_index}"))
        for adversary in self.adversaries:
            for label in adversary.account_labels():
                genesis.fund(address_from_label(label))
        # Service-facade callers: labels the spec names get genesis balances
        # too, so RPC clients can spend without piggybacking on a workload
        # account.
        for label in spec.extra_accounts:
            genesis.fund(address_from_label(label))
        self.workload.configure_genesis(genesis)
        self.genesis = genesis

        # Peers: miners first, then client peers, kinds from the scenario
        # (with per-peer overrides for mixed Sereth/Geth networks).
        self.peers: Dict[str, Peer] = {}
        self.miner_peers: List[Peer] = []
        self.client_peers: List[Peer] = []
        for miner_index in range(spec.num_miners):
            peer_id = f"miner-{miner_index}"
            peer = self.network.add_peer(
                Peer(
                    peer_id,
                    genesis,
                    client_kind=spec.client_kind_for(peer_id),
                    apply_cache=self.apply_cache,
                    retain_blocks=spec.retention,
                )
            )
            self.peers[peer_id] = peer
            self.miner_peers.append(peer)
        for client_index in range(spec.num_client_peers):
            peer_id = f"client-{client_index}"
            peer = self.network.add_peer(
                Peer(
                    peer_id,
                    genesis,
                    client_kind=spec.client_kind_for(peer_id),
                    apply_cache=self.apply_cache,
                    retain_blocks=spec.retention,
                )
            )
            self.peers[peer_id] = peer
            self.client_peers.append(peer)
        # Adversaries observe from their own peers, always running the Sereth
        # client: an attacker deploys the best software available regardless
        # of what the defense scenario gives its victims.
        self.adversary_peers: List[Peer] = []
        for adversary_index in range(len(self.adversaries)):
            peer_id = f"adversary-{adversary_index}"
            peer = self.network.add_peer(
                Peer(
                    peer_id,
                    genesis,
                    client_kind=SERETH_CLIENT,
                    apply_cache=self.apply_cache,
                    retain_blocks=spec.retention,
                )
            )
            self.peers[peer_id] = peer
            self.adversary_peers.append(peer)

        # Topology: built over the full peer roster (miners, clients,
        # adversaries, in insertion order) from a seed-plan-derived stream.
        # ``full_mesh`` keeps the legacy direct-broadcast path — on a
        # complete graph flooding only adds duplicate one-hop deliveries,
        # and the direct path is what the golden checksums were recorded
        # against — so the adjacency is neither built nor installed for it.
        self.topology: Optional[Topology] = None
        if spec.topology is not None:
            topology_name, topology_params = spec.topology
            if topology_name != "full_mesh":
                builder = resolve_topology(topology_name)(**dict(topology_params))
                self.topology = builder.build(
                    list(self.peers),
                    random.Random(self.seeds.derived("topology", topology_name)),
                )
                self.network.install_topology(self.topology)
        if spec.churn:
            self.network.schedule_churn(ChurnPlan.from_events(spec.churn))

        # Fault injection: built from the spec's frozen entries with per-fault
        # RNG streams off the seed plan, armed on the gossip seams, and crash
        # events scheduled like churn.  No faults => injector stays None and
        # the network keeps the golden-gated clean path.
        self.fault_injector: Optional[FaultInjector] = None
        if spec.faults:
            self.fault_injector = FaultInjector.from_spec(spec.faults, self.seeds)
            self.network.install_faults(self.fault_injector)
            miner_ids = {peer.peer_id for peer in self.miner_peers}
            # The append-only chain cannot reorg, so miner-bound block
            # deliveries are exempt from message faults (a miner that misses
            # a block would fork its lineage forever) — the receiver-side
            # twin of the no-crashing-miners rule below.
            self.fault_injector.protect_block_peers(miner_ids)
            self.fault_injector.schedule_peer_faults(
                self.simulator,
                self.network,
                miner_ids=miner_ids,
            )

        # HMS is a property of the Sereth client software: install the
        # workload's watched contracts on every Sereth peer.
        for peer in self.peers.values():
            if peer.client_kind == SERETH_CLIENT:
                for contract_address, set_selector in self.workload.hms_targets():
                    peer.install_hms(contract_address, set_selector)

        # Mining: interval model, the production race, per-miner policies.
        interval_model = (
            FixedInterval(spec.block_interval)
            if spec.fixed_block_interval
            else PoissonInterval(mean=spec.block_interval, seed=self.seeds.block_interval)
        )
        self.production = BlockProductionProcess(
            self.simulator,
            self.network,
            interval_model=interval_model,
            seed=self.seeds.production,
            history_limit=spec.retention,
        )
        miner_limits = MinerConfig(
            gas_limit=spec.block_gas_limit,
            max_transactions=spec.max_transactions_per_block,
        )
        semantic = self.workload.semantic_config()
        scenario = spec.scenario
        semantic_miner_count = round(spec.num_miners * scenario.semantic_miner_fraction)
        for miner_index, peer in enumerate(self.miner_peers):
            self.production.register_miner(
                peer,
                policy=self._miner_policy(miner_index, semantic, semantic_miner_count),
                miner_address=address_from_label(f"miner/{peer.peer_id}"),
                config=miner_limits,
            )

        # Clients and events.  The streaming knobs default to None/off, which
        # constructs the exact unbounded collector the golden bytes gate.
        self.metrics = MetricsCollector(
            metrics_window=spec.metrics_window,
            spill_path=spec.metrics_spill,
            seed=self.seeds.derived("metrics"),
        )
        self.context = SimulationContext(
            spec=spec,
            seeds=self.seeds,
            simulator=self.simulator,
            network=self.network,
            peers=self.peers,
            miner_peers=self.miner_peers,
            client_peers=self.client_peers,
            metrics=self.metrics,
            adversary_peers=self.adversary_peers,
            production=self.production,
        )
        # Observability: one tracer per trial, activated only for the
        # duration of run() so untraced work in the same process stays on
        # the zero-cost path.  Per-trial probes read THIS run's counters;
        # the process-global probes (wire/hash caches, live states) come
        # from the registry when the tracer snapshots.
        self.tracer: Optional[Tracer] = None
        if spec.observe:
            simulator_ref = self.simulator
            self.tracer = Tracer(clock=lambda: simulator_ref.now)
            self.tracer.register_probe("network", self.network.stats.as_dict)
            self.tracer.register_probe("propagation", self.network.propagation_summary)
            self.tracer.register_probe(
                "head_state_rss", lambda: self.reference_chain.state.rss_stats()
            )
            if self.fault_injector is not None:
                self.tracer.register_probe("faults", self.fault_injector.stats_dict)

        self.workload.setup(self.context)
        self.workload.schedule(self.context)

        # Adversaries bind last (they attack whatever the workload stood up)
        # with RNG streams derived from the run's seed plan.
        target = self._adversary_target()
        for adversary_index, adversary in enumerate(self.adversaries):
            adversary.bind(
                self.context,
                self.adversary_peers[adversary_index],
                target,
                random.Random(self.seeds.adversary(adversary_index, adversary.name)),
            )
            adversary.start()

    def _adversary_target(self) -> Optional[AdversaryTarget]:
        """What the adversaries attack, derived from the workload's HMS wiring."""
        semantic = self.workload.semantic_config()
        if semantic is not None:
            return AdversaryTarget(
                contract_address=semantic.hms.contract_address,
                set_selector=semantic.hms.set_selector,
                buy_selectors=tuple(semantic.buy_selectors),
            )
        targets = list(self.workload.hms_targets())
        if targets:
            contract_address, set_selector = targets[0]
            return AdversaryTarget(
                contract_address=contract_address, set_selector=set_selector
            )
        return None

    def _miner_policy(self, miner_index: int, semantic, semantic_miner_count: int):
        spec = self.spec
        if spec.miner_policy is not None:
            # An explicit override beats the scenario default, semantic included.
            if spec.miner_policy == "random":
                return RandomPolicy(seed=self.seeds.miner(miner_index))
            if spec.miner_policy == "fifo":
                return FifoPolicy()
            if spec.miner_policy == "fee_arrival":
                return FeeArrivalPolicy()
            return ArrivalJitterPolicy(
                jitter_seconds=spec.miner_order_jitter, seed=self.seeds.miner(miner_index)
            )
        use_semantic = (
            spec.scenario.semantic_mining
            and miner_index < semantic_miner_count
            and semantic is not None
        )
        if use_semantic:
            return SemanticMiningPolicy(semantic)
        return ArrivalJitterPolicy(
            jitter_seconds=spec.miner_order_jitter, seed=self.seeds.miner(miner_index)
        )

    # -- interactive driving --------------------------------------------------------

    def start(self) -> "SimulationHandle":
        """Begin block production (for manual run_until driving)."""
        self.production.start()
        return self

    def run_until(self, time: float) -> "SimulationHandle":
        self.simulator.run_until(time)
        return self

    def close(self) -> None:
        """Release what an interactively driven handle holds: the metrics
        spill (if any) and the process-wide wire-encoding memo.  ``run()``
        already does both; for ``start``/``run_until`` consumers — the
        service facade's sessions — this is the explicit lifecycle end.
        Idempotent."""
        self.metrics.close()
        end_of_trial_cleanup()

    @property
    def reference_chain(self):
        return self.context.reference_chain

    # -- the measured loop ----------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run the workload to completion (or the duration cap) and measure."""
        spec, workload, simulator = self.spec, self.workload, self.simulator
        tracer = self.tracer
        if tracer is not None:
            _obs_runtime.activate(tracer)
        try:
            return self._run_measured(spec, workload, simulator)
        finally:
            if tracer is not None:
                # Freeze the probe snapshot while the per-trial caches still
                # hold this run's counters, then leave the process untraced.
                tracer.finalize()
                _obs_runtime.deactivate()
            # The wire-encoding memo pins every gossiped object; dropping it
            # here scopes it to the trial for *every* caller, not only the
            # sweep workers that also clear it explicitly.
            end_of_trial_cleanup()
            self.metrics.close()
            if tracer is not None and spec.trace_dir is not None:
                # Trace files are keyed by the spec's content digest, so a
                # sweep's workers land per-job files under one directory with
                # names stable across serial/parallel/resumed execution.
                tracer.write(spec.trace_dir, f"trace_{spec_digest(spec)}")

    def _run_measured(self, spec, workload, simulator) -> SimulationResult:
        self.production.start()

        if spec.retention is not None or self.metrics.streaming:
            # Bounded-memory runs must resolve watched transactions while
            # their blocks are still inside the retention window, so the
            # submission phase is driven in block-interval steps with a
            # resolution pass after each.  Stepping run_until changes no
            # event ordering; resolution is idempotent — but these modes are
            # opt-in, so default runs keep the single-call path regardless.
            end = workload.end_of_submissions
            while simulator.now < end:
                simulator.run_until(min(simulator.now + spec.block_interval, end))
                self.metrics.resolve_from_chain(self.reference_chain)
        else:
            simulator.run_until(workload.end_of_submissions)
        cap = workload.duration_cap(spec)
        while simulator.now < cap and not workload.is_complete(self.context):
            simulator.run_until(simulator.now + spec.block_interval)
            # Resolve incrementally so the loop can terminate as soon as possible.
            self.metrics.resolve_from_chain(self.reference_chain)
        self.production.stop()
        for adversary in self.adversaries:
            adversary.stop()
        if workload.post_stop_drain:
            simulator.run_until(simulator.now + workload.post_stop_drain)
        if self.fault_injector is not None:
            # Post-fault anti-entropy: when the run's *final* blocks were
            # dropped or corrupted, gossip alone can never heal the laggards —
            # nothing arrives afterwards to orphan and trigger a range sync.
            # Offer the best head around and drain; a second round catches
            # peers whose first sync raced a still-catching-up provider.
            # Faults-off runs never enter this branch, so default schedules
            # stay byte-identical.
            for _ in range(2):
                if self.network.heal_partitions() == 0:
                    break
                simulator.run_until(simulator.now + spec.block_interval)

        extras = workload.finalize(self.context)
        if self._network_realism:
            # Only runs that opted into the network model carry the
            # propagation digest — default runs keep their golden bytes.
            extras = dict(extras)
            extras["network"] = self.network.propagation_summary()
        if self.fault_injector is not None:
            # Fault runs additionally report injection counters and whether
            # the chain reconverged after the faults ceased — the signal the
            # chaos experiment's first claim gates on.  Emit-only-when-armed,
            # like the network digest above.
            extras = dict(extras)
            extras["faults"] = self._faults_summary()
        self.metrics.resolve_from_chain(self.reference_chain)
        labels = self.metrics.labels()
        reports = {label: self.metrics.report(label) for label in labels}
        return SimulationResult(
            spec=spec,
            reports=reports,
            primary_label=workload.primary_label,
            blocks_produced=self.production.blocks_produced,
            simulated_seconds=simulator.now,
            metrics=self.metrics,
            peers=list(self.peers.values()),
            extras=extras,
            adversary_reports=self._adversary_reports(),
            obs=self.tracer,
        )

    def _faults_summary(self) -> Dict[str, Any]:
        """Injection counters plus end-of-run convergence across all peers."""
        summary: Dict[str, Any] = self.fault_injector.summary()
        heads = {peer.chain.head.hash for peer in self.peers.values()}
        heights = [peer.chain.height for peer in self.peers.values()]
        summary["converged"] = len(heads) == 1
        summary["unique_heads"] = len(heads)
        summary["min_height"] = min(heights)
        summary["max_height"] = max(heights)
        summary["peer_restarts"] = sum(peer.restarts for peer in self.peers.values())
        return summary

    def _adversary_reports(self) -> Dict[str, Dict[str, Any]]:
        """Digest every adversary's attack into the result's metrics block."""
        name_counts: Dict[str, int] = {}
        for adversary in self.adversaries:
            name_counts[adversary.name] = name_counts.get(adversary.name, 0) + 1
        reports: Dict[str, Dict[str, Any]] = {}
        for adversary in self.adversaries:
            key = (
                adversary.name
                if name_counts[adversary.name] == 1
                else f"{adversary.name}@{adversary.index}"
            )
            reports[key] = adversary.report(self.context, self.workload.primary_label)
        return reports


def build_simulation(
    spec: SimulationSpec, simulator: Optional[Simulator] = None
) -> SimulationHandle:
    """Wire up (but do not run) the simulation ``spec`` describes.

    Passing a ``simulator`` reuses it (after a reset) instead of allocating
    a fresh event loop — the warm-worker path of the sweep engine.
    """
    return SimulationHandle(spec, simulator=simulator)


def run_simulation(
    spec: SimulationSpec, simulator: Optional[Simulator] = None
) -> SimulationResult:
    """Build and run ``spec``'s simulation; the facade's one entry point."""
    return SimulationHandle(spec, simulator=simulator).run()
