"""Cache lifecycle for simulation trials and processes.

The engine keeps several per-process memos for speed: the keccak digest
cache, the ordered-trie-root cache, the genesis template cache, and the
wire-encoding memo.  Their lifetimes differ:

* keccak / trie-root / genesis entries are pure input->output pairs (the
  first two in bounded LRUs), so warm sweep workers deliberately keep them
  across trials — clearing them between trials would only cost time;
* the wire-encoding memo is id-keyed and pins the objects it has encoded
  (FIFO-capped, but a cap's worth of pinned artefacts is still a whole
  trial's working set), so it MUST be dropped after every trial or sweep
  cells leak into each other's RSS.

Before this module each caller hand-rolled its own subset of clears (the
engine's ``run()``, the sweep workers, the perf harnesses).  These two
helpers are now the single source of truth for which caches belong to
which lifetime.
"""

from __future__ import annotations

__all__ = ["end_of_trial_cleanup", "reset_process_caches"]


def end_of_trial_cleanup() -> None:
    """Drop the caches scoped to ONE trial (currently the wire memo).

    Called by ``SimulationHandle.run()`` and the sweep workers after every
    simulation; safe (and cheap) to call twice.
    """
    from ..chain.wire import clear_wire_cache

    clear_wire_cache()


def reset_process_caches() -> None:
    """Restore cold-start process state: every per-process memo dropped.

    For benchmarks and leak hunts, not for the per-trial path — warm
    workers keep the keccak/trie/genesis memos across trials on purpose.
    """
    from ..chain.genesis import clear_genesis_cache
    from ..chain.trie import clear_root_cache
    from ..chain.wire import clear_wire_cache
    from ..crypto.keccak import clear_hash_cache

    clear_hash_cache()
    clear_root_cache()
    clear_wire_cache()
    clear_genesis_cache()
