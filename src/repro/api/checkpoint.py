"""Resumable sweep execution: per-row JSONL checkpoints keyed by spec digest.

A sweep's job list is fully deterministic (specs plus tags, in expansion
order), so its SHA-256 digest identifies the grid exactly.  The checkpoint
file records that digest in a header line and then one JSON line per
*completed* row::

    {"kind": "sweep-checkpoint", "digest": "ab12...", "total": 45, "version": 1}
    {"index": 0, "summary": {...}, "tags": {...}}
    {"index": 3, "summary": {...}, "tags": {...}}

Rows are appended (and flushed) as each cell finishes, so an interrupted run
loses at most the in-flight cells.  On resume, :meth:`SweepCheckpoint.load`
verifies the digest — a checkpoint written for a *different* grid (or a file
that is not a checkpoint at all) raises :class:`CheckpointMismatchError`
rather than silently discarding completed work or overwriting a user's file —
and the runner executes only the missing indices.  Because every cell's spec
fully seeds its run, a resumed sweep's rows are identical to an uninterrupted
run's, and the exported artifacts are byte-identical (the invariant CI
enforces).

Checkpointed rows round-trip through JSON, so live rows are canonicalized
the same way before they enter a checkpointed :class:`SweepResult` — a
fresh-with-checkpoint run and a resumed run produce equal rows, not merely
equal exports.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["CheckpointMismatchError", "SweepCheckpoint", "spec_digest", "sweep_digest"]

_FORMAT_VERSION = 1


class CheckpointMismatchError(ValueError):
    """The checkpoint file on disk does not belong to this sweep.

    Raised instead of silently truncating: the file may hold hours of
    completed rows for a *different* grid (changed seed/trials/overrides),
    or not be a checkpoint at all.  Delete the file, point at a new path,
    or restore the original sweep options to resume it."""


def spec_digest(spec: Any) -> str:
    """A short content digest of one spec's :meth:`describe` rendering.

    Keys per-job artefacts (trace files) to the cell that produced them:
    ``describe()`` excludes output paths, so the same simulation gets the
    same digest whether it ran serially, in a worker, or into a different
    trace directory.
    """
    payload = json.dumps(spec.describe(), sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def sweep_digest(jobs: Sequence[Tuple[Any, Dict[str, Any]]]) -> str:
    """A stable content digest of a fully expanded (spec, tags) job list."""
    digest = hashlib.sha256()
    for spec, tags in jobs:
        payload = {"spec": spec.describe(), "tags": dict(sorted(tags.items()))}
        digest.update(json.dumps(payload, sort_keys=True, default=str).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def _canonical(row: Dict[str, Any]) -> Dict[str, Any]:
    """JSON round-trip a row payload so loaded and live rows compare equal."""
    return json.loads(json.dumps(row, sort_keys=True))


class SweepCheckpoint:
    """One sweep's JSONL checkpoint file."""

    def __init__(self, path: Union[str, Path], digest: str, total: int) -> None:
        self.path = Path(path)
        self.digest = digest
        self.total = total
        self.completed: Dict[int, Dict[str, Any]] = {}

    @classmethod
    def load(
        cls, path: Union[str, Path], digest: str, total: int
    ) -> "SweepCheckpoint":
        """Open (or create) the checkpoint for a job list with ``digest``.

        A missing or empty file yields a fresh checkpoint.  An existing file
        must carry this sweep's digest in its header; a foreign digest — or a
        file that is not a checkpoint at all — raises
        :class:`CheckpointMismatchError` instead of silently discarding its
        rows.  A corrupt *row line* only drops that row: every earlier intact
        row is kept, which is exactly the state after an interrupted run.
        """
        checkpoint = cls(path, digest, total)
        target = Path(path)
        if not target.exists():
            return checkpoint
        lines = target.read_text(encoding="utf-8").splitlines()
        if not lines:
            return checkpoint
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            header = None
        if not isinstance(header, dict) or header.get("kind") != "sweep-checkpoint":
            raise CheckpointMismatchError(
                f"{target} exists but is not a sweep checkpoint; delete it or "
                "choose another path"
            )
        if header.get("digest") != digest or header.get("version") != _FORMAT_VERSION:
            raise CheckpointMismatchError(
                f"{target} belongs to a different sweep (its grid digest does "
                "not match this one's) — its completed rows would be lost. "
                "Re-run with the options the checkpoint was written with, or "
                "delete the file / choose another path to start fresh."
            )
        for line in lines[1:]:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # partially written final line of an interrupted run
            if not isinstance(record, dict):
                continue
            index = record.get("index")
            tags = record.get("tags")
            summary = record.get("summary")
            if (
                isinstance(index, int)
                and 0 <= index < total
                and isinstance(tags, dict)
                and isinstance(summary, dict)
            ):
                checkpoint.completed[index] = {"tags": tags, "summary": summary}
        return checkpoint

    # -- queries ------------------------------------------------------------------------

    def missing(self) -> List[int]:
        return [index for index in range(self.total) if index not in self.completed]

    def row(self, index: int) -> Optional[Dict[str, Any]]:
        return self.completed.get(index)

    # -- writing ------------------------------------------------------------------------

    def begin(self) -> None:
        """(Re)write the file as header + already-completed rows.

        Called once before execution: it persists the digest header and
        compacts any rows carried over from a previous interrupted run, so
        appends during this run extend a well-formed file.  The rewrite is
        staged through a sibling temp file and ``os.replace``d into place —
        a crash mid-compaction leaves the previous checkpoint intact rather
        than destroying the completed rows it exists to preserve.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        staging = self.path.with_name(self.path.name + ".tmp")
        with staging.open("w", encoding="utf-8") as handle:
            header = {
                "kind": "sweep-checkpoint",
                "digest": self.digest,
                "total": self.total,
                "version": _FORMAT_VERSION,
            }
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for index in sorted(self.completed):
                handle.write(self._row_line(index, self.completed[index]))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staging, self.path)
        # The rename itself is only durable once the parent directory entry
        # is on disk: without this, a crash right after begin() can leave the
        # old (or no) checkpoint visible even though the data was fsynced.
        try:
            dir_fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - directories not openable here
            return
        try:
            os.fsync(dir_fd)
        except OSError:  # pragma: no cover - fsync on dirs unsupported
            pass
        finally:
            os.close(dir_fd)

    def record(self, index: int, tags: Dict[str, Any], summary: Dict[str, Any]) -> Dict[str, Any]:
        """Persist one completed row; returns the canonicalized payload."""
        payload = _canonical({"tags": tags, "summary": summary})
        self.completed[index] = payload
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(self._row_line(index, payload))
            handle.flush()
        return payload

    @staticmethod
    def _row_line(index: int, payload: Dict[str, Any]) -> str:
        record = {"index": index, "tags": payload["tags"], "summary": payload["summary"]}
        return json.dumps(record, sort_keys=True) + "\n"
