"""``repro.api.experiment`` — declarative experiments with one generic lifecycle.

An *experiment* declares what to run (a base spec plus sweep dimensions), how
to read the results (derived metric columns over a :class:`ResultFrame`),
what the paper promises (a tuple of :class:`Claim` gates), and what to write
out (an export schema).  One engine drives every experiment through the same
lifecycle::

    plan -> execute -> analyze -> check_claims -> export

so a new experiment is a ~50-line registered class, not a bespoke module
with its own runner, result dataclass, and CLI subcommand.

Quickstart — define, register, and run an experiment::

    from repro.api.experiment import (
        Claim, GridExperiment, register_experiment, run_experiment,
        ExperimentOptions,
    )

    @register_experiment
    class TicketRush(GridExperiment):
        name = "ticket_rush"
        description = "Ticket-sale efficiency across scenarios."
        workload = "ticket_sale"
        dimensions = {"scenario": ["geth_unmodified", "semantic_mining"]}
        default_trials = 2
        claims = (
            Claim(
                name="semantic mining wins",
                paper_value="HMS ordering commits more tickets",
                check=lambda frame: frame.mean("efficiency", scenario="semantic_mining")
                >= frame.mean("efficiency", scenario="geth_unmodified"),
            ),
        )

    run = run_experiment("ticket_rush", ExperimentOptions(workers=4))
    print(run.frame.pivot("scenario", "trial", "efficiency").to_markdown())
    assert run.passed

The same experiment is now available to the CLI as ``repro run ticket_rush``
(plus ``repro claims ticket_rush`` and ``repro list --experiments``).

Execution is **resumable**: pass ``ExperimentOptions(checkpoint=...)`` (or
``repro run <name> --checkpoint file.jsonl``) and every completed sweep cell
is appended to a JSONL file keyed by the grid's content digest; re-running
after an interruption executes only the missing cells and produces
byte-identical exports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..registry import Registry
from .frame import ResultFrame
from .spec import SimulationSpec
from .sweep import Sweep, SweepResult, apply_dimension

__all__ = [
    "Claim",
    "ClaimCheck",
    "EXPERIMENT_REGISTRY",
    "Experiment",
    "ExperimentOptions",
    "ExperimentRun",
    "GridExperiment",
    "execute_plan",
    "plan_experiment",
    "register_experiment",
    "run_experiment",
]


# ======================================================================================
# Claims
# ======================================================================================


@dataclass
class ClaimCheck:
    """Outcome of checking one claim against measured data."""

    claim: str
    paper_value: str
    measured_value: str
    holds: bool
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "claim": self.claim,
            "paper_value": self.paper_value,
            "measured_value": self.measured_value,
            "holds": self.holds,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class Claim:
    """One paper claim, checkable against an experiment's :class:`ResultFrame`.

    ``check`` receives the analyzed frame and returns either a bare bool, a
    ``(holds, measured_value)`` or ``(holds, measured_value, detail)`` tuple,
    or a fully formed :class:`ClaimCheck`; :meth:`evaluate` normalizes all of
    them.  A check that raises is reported as a failed claim rather than
    crashing the run (a claim gate should gate, not explode).
    """

    name: str
    paper_value: str
    check: Callable[[ResultFrame], Any]
    detail: str = ""

    def evaluate(self, frame: ResultFrame) -> ClaimCheck:
        try:
            outcome = self.check(frame)
        except Exception as error:  # noqa: BLE001 - the gate must not crash the run
            return ClaimCheck(
                claim=self.name,
                paper_value=self.paper_value,
                measured_value="<check raised>",
                holds=False,
                detail=f"{type(error).__name__}: {error}",
            )
        if isinstance(outcome, ClaimCheck):
            return outcome
        if isinstance(outcome, tuple):
            holds = bool(outcome[0])
            measured = str(outcome[1]) if len(outcome) > 1 else ""
            detail = str(outcome[2]) if len(outcome) > 2 else self.detail
        else:
            holds, measured, detail = bool(outcome), "", self.detail
        return ClaimCheck(
            claim=self.name,
            paper_value=self.paper_value,
            measured_value=measured,
            holds=holds,
            detail=detail,
        )


# ======================================================================================
# Options and the experiment protocol
# ======================================================================================


@dataclass
class ExperimentOptions:
    """Caller-side knobs common to every experiment run."""

    workers: int = 1
    smoke: bool = False
    """Run the experiment's reduced smoke grid (CI-sized, same claims)."""
    seed: Optional[int] = None
    """Root seed; ``None`` uses the experiment's default."""
    trials: Optional[int] = None
    """Seeded repetitions per grid cell; ``None`` uses the experiment's default."""
    checkpoint: Optional[Union[str, Path]] = None
    """JSONL checkpoint file for resumable execution (see the module docstring)."""
    overrides: Dict[str, Any] = field(default_factory=dict)
    """Extra knobs: a list value replaces/adds a sweep dimension, a scalar
    value is applied to the base spec (spec field or workload parameter).
    Every key must be consumed during :meth:`Experiment.plan` (via
    :meth:`override` or the grid machinery) — a leftover key is a typo, and
    :func:`run_experiment` refuses to run the wrong grid silently."""

    _consumed: "set" = field(default_factory=set, init=False, repr=False, compare=False)

    def override(self, key: str, default: Any = None) -> Any:
        """Read one override (recording that the experiment consumed it)."""
        self._consumed.add(key)
        return self.overrides.get(key, default)

    def unconsumed_overrides(self) -> List[str]:
        """Override keys no code path read — misspelled or unsupported knobs."""
        return sorted(set(self.overrides) - self._consumed)


class Experiment:
    """Base class of the experiment protocol.

    Subclasses declare ``name``, ``description``, and ``claims``, implement
    :meth:`plan`, and optionally refine :meth:`analyze` (derive metric
    columns) and ``export_columns`` (the flat export schema).  Register with
    :func:`register_experiment` and the generic engine, CLI, benchmarks,
    and CI all pick the experiment up by name.
    """

    name: str = ""
    description: str = ""
    claims: Tuple[Claim, ...] = ()
    export_columns: Optional[Tuple[str, ...]] = None
    """Columns of the flat (CSV/Markdown) export; ``None`` exports every
    scalar column in frame order."""
    default_seed: int = 11
    default_trials: int = 1
    smoke_trials: int = 1

    # -- lifecycle hooks ----------------------------------------------------------------

    def plan(self, options: ExperimentOptions) -> Sweep:
        """The fully expanded sweep this experiment runs."""
        raise NotImplementedError

    def execute(self, options: ExperimentOptions, sweep: Sweep) -> SweepResult:
        """Run the planned sweep and return its rows.

        The default is the shared sweep engine (parallel and/or resumed from
        a checkpoint per the options).  Experiments that need to *own*
        execution override this — e.g. ``horizon`` runs every leg in a fresh
        child process so each leg's peak RSS is measured in isolation — and
        still flow through the generic analyze/claims/export lifecycle.
        """
        return sweep.run(workers=options.workers, checkpoint=options.checkpoint)

    def analyze(self, frame: ResultFrame, options: ExperimentOptions) -> ResultFrame:
        """Derive the experiment's metric columns; default: the frame as-is."""
        return frame

    # -- shared helpers -----------------------------------------------------------------

    def seed(self, options: ExperimentOptions) -> int:
        return self.default_seed if options.seed is None else options.seed

    def trials(self, options: ExperimentOptions) -> int:
        if options.trials is not None:
            return options.trials
        return self.smoke_trials if options.smoke else self.default_trials


class GridExperiment(Experiment):
    """An experiment that is a parameter grid over one registered workload.

    Declare the workload, the base parameters, and the sweep dimensions as
    class attributes; :meth:`plan` assembles the spec and the sweep, applies
    smoke-mode reductions and caller overrides, and seeds everything
    deterministically through the sweep engine.
    """

    scenario: str = "geth_unmodified"
    workload: str = "market"
    base_params: Mapping[str, Any] = {}
    smoke_params: Mapping[str, Any] = {}
    """Merged over ``base_params`` when running the smoke grid."""
    spec_fields: Mapping[str, Any] = {}
    """Non-default :class:`SimulationSpec` fields (``num_miners``, ...)."""
    dimensions: Mapping[str, Sequence[Any]] = {}
    smoke_dimensions: Optional[Mapping[str, Sequence[Any]]] = None
    """Reduced dimensions for smoke mode; ``None`` keeps ``dimensions``."""

    def base_spec(self, options: ExperimentOptions) -> SimulationSpec:
        from .builder import Simulation

        params = dict(self.base_params)
        if options.smoke:
            params.update(self.smoke_params)
        spec = (
            Simulation.builder()
            .scenario(self.scenario)
            .workload(self.workload, **params)
            .seed(self.seed(options))
            .build()
        )
        if self.spec_fields:
            spec = replace(spec, **dict(self.spec_fields))
        return spec

    def plan(self, options: ExperimentOptions) -> Sweep:
        dims: Dict[str, List[Any]] = {
            name: list(values)
            for name, values in (
                self.smoke_dimensions
                if options.smoke and self.smoke_dimensions is not None
                else self.dimensions
            ).items()
        }
        spec = self.base_spec(options)
        for key in options.overrides:
            value = options.override(key)
            if isinstance(value, (list, tuple)):
                dims[key] = list(value)
            elif key in dims:
                dims[key] = [value]
            else:
                spec = apply_dimension(spec, key, value)
        sweep = Sweep(spec)
        if dims:
            sweep = sweep.over(**dims)
        return sweep.trials(self.trials(options))


# ======================================================================================
# Registry
# ======================================================================================

EXPERIMENT_REGISTRY: Registry[Experiment] = Registry("experiment")
"""Every registered experiment, resolvable by name (CLI, engine, tests)."""


def register_experiment(cls: type) -> type:
    """Class decorator: instantiate the experiment and register it by name."""
    instance = cls()
    if not instance.name:
        raise ValueError(f"experiment class {cls.__name__} must declare a name")
    EXPERIMENT_REGISTRY.add(instance.name, instance)
    return cls


# ======================================================================================
# The generic lifecycle engine
# ======================================================================================


@dataclass
class ExperimentRun:
    """Everything one experiment run produced."""

    experiment: Experiment
    options: ExperimentOptions
    sweep_result: SweepResult
    frame: ResultFrame
    claim_checks: List[ClaimCheck]

    @property
    def passed(self) -> bool:
        """All claim gates hold (vacuously true for claimless experiments)."""
        return all(check.holds for check in self.claim_checks)

    def export_frame(self) -> ResultFrame:
        """The flat export view: the declared schema, or every scalar column."""
        columns = self.experiment.export_columns
        if columns is not None:
            return self.frame.select(*columns)
        if "summary" in self.frame.column_names:
            return self.frame.drop("summary")
        return self.frame

    def export(self, directory: Union[str, Path]) -> Dict[str, Path]:
        """Write the run's artifacts; returns ``{kind: path}``.

        ``rows.json`` / ``rows.csv`` / ``rows.md`` hold the export frame with
        sorted keys and stable column order, ``claims.json`` the claim gate
        outcomes — all byte-identical for identical results, which is how CI
        proves a resumed sweep equals an uninterrupted one.
        """
        import json

        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        flat = self.export_frame()
        name = self.experiment.name
        paths = {
            "json": target / f"{name}.json",
            "csv": target / f"{name}.csv",
            "markdown": target / f"{name}.md",
            "claims": target / f"{name}_claims.json",
        }
        flat.to_json(paths["json"])
        flat.to_csv(paths["csv"])
        flat.to_markdown(paths["markdown"])
        claims_text = json.dumps(
            [check.as_dict() for check in self.claim_checks], indent=2, sort_keys=True
        )
        paths["claims"].write_text(claims_text + "\n", encoding="utf-8")
        return paths


def plan_experiment(
    experiment: Union[str, Experiment],
    options: Optional[ExperimentOptions] = None,
) -> Tuple[Experiment, ExperimentOptions, Sweep]:
    """Resolve an experiment and expand its sweep, validating the options.

    This is the plan-time half of :func:`run_experiment`: an unknown
    experiment name raises ``KeyError`` and a leftover override raises
    ``ValueError`` *before* any cell executes, so callers (the CLI) can
    render those as usage errors while leaving execution errors untouched.
    """
    if isinstance(experiment, str):
        experiment = EXPERIMENT_REGISTRY.get(experiment)
    options = options or ExperimentOptions()
    sweep = experiment.plan(options)
    unknown = options.unconsumed_overrides()
    if unknown:
        raise ValueError(
            f"unknown override(s) for experiment {experiment.name!r}: "
            f"{', '.join(unknown)} (nothing in its plan consumed them)"
        )
    return experiment, options, sweep


def execute_plan(
    experiment: Experiment, options: ExperimentOptions, sweep: Sweep
) -> ExperimentRun:
    """Run a planned sweep through execute → analyze → check_claims."""
    sweep_result = experiment.execute(options, sweep)
    frame = experiment.analyze(ResultFrame.from_sweep(sweep_result), options)
    claim_checks = [claim.evaluate(frame) for claim in experiment.claims]
    return ExperimentRun(
        experiment=experiment,
        options=options,
        sweep_result=sweep_result,
        frame=frame,
        claim_checks=claim_checks,
    )


def run_experiment(
    experiment: Union[str, Experiment],
    options: Optional[ExperimentOptions] = None,
) -> ExperimentRun:
    """Drive one experiment through the generic lifecycle.

    ``plan`` expands the sweep, ``execute`` runs it (parallel and/or resumed
    from a checkpoint per the options), ``analyze`` lands the rows in a
    :class:`ResultFrame` and derives the experiment's metrics, and every
    registered :class:`Claim` is evaluated against the analyzed frame.
    """
    return execute_plan(*plan_experiment(experiment, options))
