"""The immutable description of one simulation run.

A :class:`SimulationSpec` is everything :func:`repro.api.engine.run_simulation`
needs to stand up a network, drive a workload, and measure it — and nothing
else.  Specs are frozen dataclasses built from plain values, so they are
hashable, picklable (the sweep engine ships them to worker processes), and
diffable (``describe()`` renders a stable dictionary).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from ..experiments.scenario import Scenario
from ..net.topology import freeze_bandwidth, freeze_churn, freeze_topology

__all__ = ["SimulationSpec", "freeze_params", "freeze_adversaries", "freeze_faults"]

MINER_POLICIES = ("arrival_jitter", "random", "fifo", "fee_arrival")
"""Baseline ordering-policy overrides a spec may request by name."""


def freeze_params(params: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Canonicalize a workload parameter dict into a hashable sorted tuple."""
    frozen = []
    for key in sorted(params):
        value = params[key]
        if isinstance(value, list):
            value = tuple(value)
        frozen.append((key, value))
    return tuple(frozen)


def freeze_adversaries(adversaries) -> Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...]:
    """Canonicalize ``(name, params)`` adversary entries into hashable tuples.

    Accepts bare names, ``(name, params-dict)`` pairs, or already-frozen
    entries, so specs can be written by hand as naturally as via the builder.
    """
    frozen = []
    for entry in adversaries:
        if isinstance(entry, str):
            name, params = entry, {}
        else:
            name, params = entry
        if isinstance(params, dict):
            params = freeze_params(params)
        frozen.append((name, tuple(params)))
    return tuple(frozen)


def freeze_faults(faults) -> Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...]:
    """Canonicalize ``(name, params)`` fault entries — same shape (and the
    same input leniency) as :func:`freeze_adversaries`."""
    return freeze_adversaries(faults)


@dataclass(frozen=True)
class SimulationSpec:
    """One fully specified simulation: scenario x workload x network shape."""

    scenario: Scenario
    """Which client software / read mode / mining policy combination runs."""
    workload: str
    """Registered workload name ("market", "ticket_sale", "auction", …)."""
    workload_params: Tuple[Tuple[str, Any], ...] = ()
    """Workload-specific knobs, canonicalized by :func:`freeze_params`."""
    adversaries: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...] = ()
    """Attack strategies running alongside the workload, as ``(name, params)``
    entries canonicalized by :func:`freeze_adversaries`.  Names resolve
    against :data:`repro.adversary.ADVERSARY_REGISTRY` (the builder and the
    engine validate them; the spec only checks shape, to stay import-light)."""

    num_miners: int = 1
    num_client_peers: int = 2
    block_interval: float = 13.0
    fixed_block_interval: bool = False
    gossip_latency: float = 0.08
    gossip_jitter: float = 0.06
    transaction_loss_rate: float = 0.0
    miner_order_jitter: float = 4.0
    miner_policy: Optional[str] = None
    """Override the baseline ordering policy (one of MINER_POLICIES); ``None``
    keeps the scenario's default (arrival jitter, or semantic mining)."""
    client_kind_overrides: Tuple[Tuple[str, str], ...] = ()
    """Per-peer client-kind overrides, e.g. (("client-1", "geth"),) for a
    mixed Sereth/Geth network."""
    block_gas_limit: int = 30_000_000
    max_transactions_per_block: Optional[int] = None
    transaction_gas_limit: int = 200_000
    seed: int = 0
    settle_blocks: int = 6
    max_duration: Optional[float] = None
    topology: Optional[Tuple[str, Tuple[Tuple[str, Any], ...]]] = None
    """Gossip graph as ``(name, params)`` against
    :data:`repro.net.topology.TOPOLOGY_REGISTRY`; accepts a bare name or a
    ``(name, params-dict)`` pair (canonicalized by ``freeze_topology``).
    ``None`` keeps the legacy direct-broadcast full mesh."""
    bandwidth: Optional[Tuple[Tuple[str, Any], ...]] = None
    """Per-link FIFO bandwidth as frozen ``BandwidthModel`` parameters; a
    bare number is taken as ``bytes_per_second``.  ``None`` disables
    serialisation delay (the legacy behaviour)."""
    churn: Tuple[Tuple[Any, ...], ...] = ()
    """Scheduled churn events, e.g. ``(("leave", 40.0, "client-3"),
    ("join", 90.0, "client-3"))`` — see ``ChurnPlan.from_events``."""
    faults: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...] = ()
    """Deterministic fault injection as ``(name, params)`` entries — the same
    frozen shape as ``adversaries`` (canonicalized by :func:`freeze_faults`).
    Names resolve against :data:`repro.faults.FAULT_REGISTRY`; the builder
    and the engine validate them, the spec only checks shape, to stay
    import-light.  ``()`` (the default) arms nothing: the network keeps the
    golden-gated clean path."""
    retention: Optional[int] = None
    """Keep only the newest N blocks per chain (and the matching apply-cache
    window); older history folds into a sealed ``ChainAnchor``.  ``None``
    (the default) keeps unbounded history — the golden-gated behaviour."""
    metrics_window: Optional[float] = None
    """Fold resolved metrics rows into bounded per-label aggregates bucketed
    by this many simulated seconds instead of keeping whole-run row lists.
    ``None`` (the default) keeps the unbounded, byte-stable collector."""
    metrics_spill: Optional[str] = None
    """Optional JSONL path appended with one line per resolved watched
    transaction (full-fidelity rows for offline analysis)."""
    extra_accounts: Tuple[str, ...] = ()
    """Additional account labels funded at genesis (beyond the peers' own
    workload clients).  The service facade uses this to give RPC callers
    spendable accounts; labels map to addresses via ``address_from_label``."""
    observe: bool = False
    """Run with the ``repro.obs`` tracer active: typed lifecycle events,
    phase timers, and a probe snapshot land in the result's ``observability``
    summary key.  ``False`` (the default) keeps the traced call sites to a
    single dead branch — the golden-gated zero-cost path."""
    trace_dir: Optional[str] = None
    """Directory to write this run's trace files into (``trace_<digest>.jsonl``
    + ``trace_<digest>.trace.json``); setting it implies ``observe=True``.
    Deliberately excluded from :meth:`describe`: it names an output location,
    not simulation behaviour, so per-job digests stay stable across runs
    pointed at different directories."""

    def __post_init__(self) -> None:
        if self.num_miners <= 0:
            raise ValueError("num_miners must be positive")
        if self.num_client_peers <= 0:
            raise ValueError("num_client_peers must be positive")
        if self.block_interval <= 0:
            raise ValueError("block_interval must be positive")
        if not 0.0 <= self.transaction_loss_rate < 1.0:
            raise ValueError("transaction_loss_rate must be in [0, 1)")
        if self.gossip_latency < 0 or self.gossip_jitter < 0:
            raise ValueError("gossip latency and jitter cannot be negative")
        if self.miner_policy is not None and self.miner_policy not in MINER_POLICIES:
            raise ValueError(
                f"unknown miner policy {self.miner_policy!r}; "
                f"expected one of {MINER_POLICIES}"
            )
        try:
            frozen_adversaries = freeze_adversaries(self.adversaries)
        except (TypeError, ValueError) as error:
            raise ValueError(
                f"adversaries entries must be names or (name, params) pairs: {error}"
            ) from error
        for name, _params in frozen_adversaries:
            if not name or not isinstance(name, str):
                raise ValueError(
                    f"adversaries entries must be (name, params) tuples, got {name!r}"
                )
        # Canonicalize in place (frozen dataclass) so hand-written specs using
        # bare names or params dicts hash/describe like builder-made ones.
        object.__setattr__(self, "adversaries", frozen_adversaries)
        # freeze_topology validates the name against TOPOLOGY_REGISTRY, so an
        # unknown topology string fails here with the known-names list.
        object.__setattr__(self, "topology", freeze_topology(self.topology))
        object.__setattr__(self, "bandwidth", freeze_bandwidth(self.bandwidth))
        object.__setattr__(self, "churn", freeze_churn(self.churn))
        try:
            frozen_faults = freeze_faults(self.faults)
        except (TypeError, ValueError) as error:
            raise ValueError(
                f"faults entries must be names or (name, params) pairs: {error}"
            ) from error
        for name, _params in frozen_faults:
            if not name or not isinstance(name, str):
                raise ValueError(
                    f"faults entries must be (name, params) tuples, got {name!r}"
                )
        object.__setattr__(self, "faults", frozen_faults)
        if self.retention is not None:
            # The window must cover the settle horizon (receipts are consulted
            # until settle_blocks after the last submission) plus sync slack.
            floor = max(self.settle_blocks + 2, 8)
            if self.retention < floor:
                raise ValueError(
                    f"retention must be at least {floor} blocks "
                    f"(settle_blocks={self.settle_blocks} + sync slack)"
                )
        if self.metrics_window is not None and self.metrics_window <= 0:
            raise ValueError("metrics_window must be positive (seconds)")
        if not all(isinstance(label, str) and label for label in self.extra_accounts):
            raise ValueError("extra_accounts must be non-empty string labels")
        object.__setattr__(self, "extra_accounts", tuple(self.extra_accounts))
        if self.trace_dir is not None and not self.observe:
            object.__setattr__(self, "observe", True)

    # -- accessors ---------------------------------------------------------------------

    @property
    def params(self) -> Dict[str, Any]:
        """The workload parameters as a plain dictionary."""
        return dict(self.workload_params)

    @property
    def scenario_name(self) -> str:
        return self.scenario.name

    def client_kind_for(self, peer_id: str) -> str:
        """The client software ``peer_id`` runs (scenario default or override)."""
        for override_id, kind in self.client_kind_overrides:
            if override_id == peer_id:
                return kind
        return self.scenario.client_kind

    # -- derivation ---------------------------------------------------------------------

    def with_seed(self, seed: int) -> "SimulationSpec":
        return replace(self, seed=seed)

    def with_params(self, **params: Any) -> "SimulationSpec":
        """A copy with ``params`` merged into the workload parameters."""
        merged = self.params
        merged.update(params)
        return replace(self, workload_params=freeze_params(merged))

    def describe(self) -> Dict[str, Any]:
        """A stable, JSON-ready rendering of the spec (for export/diffing).

        The network-model fields (``topology``/``bandwidth``/``churn``) are
        emitted only when set: default specs keep rendering the exact bytes
        the committed golden checksums were recorded against.
        """
        description = {
            "scenario": self.scenario.name,
            "workload": self.workload,
            "workload_params": {key: value for key, value in self.workload_params},
            "adversaries": [
                {"name": name, "params": {key: value for key, value in params}}
                for name, params in self.adversaries
            ],
            "num_miners": self.num_miners,
            "num_client_peers": self.num_client_peers,
            "block_interval": self.block_interval,
            "fixed_block_interval": self.fixed_block_interval,
            "gossip_latency": self.gossip_latency,
            "gossip_jitter": self.gossip_jitter,
            "transaction_loss_rate": self.transaction_loss_rate,
            "miner_order_jitter": self.miner_order_jitter,
            "miner_policy": self.miner_policy,
            "client_kind_overrides": {
                peer_id: kind for peer_id, kind in self.client_kind_overrides
            },
            "block_gas_limit": self.block_gas_limit,
            "max_transactions_per_block": self.max_transactions_per_block,
            "transaction_gas_limit": self.transaction_gas_limit,
            "seed": self.seed,
            "settle_blocks": self.settle_blocks,
            "max_duration": self.max_duration,
        }
        if self.topology is not None:
            name, params = self.topology
            description["topology"] = {"name": name, "params": dict(params)}
        if self.bandwidth is not None:
            description["bandwidth"] = dict(self.bandwidth)
        if self.churn:
            description["churn"] = [list(event) for event in self.churn]
        # Faults follow the same emit-only-when-set rule: a no-fault spec
        # renders (and digests) the exact golden bytes.
        if self.faults:
            description["faults"] = [
                {"name": name, "params": {key: value for key, value in params}}
                for name, params in self.faults
            ]
        # Retention knobs are emitted only when set, like the network-model
        # fields: default (unbounded) specs keep their golden bytes.
        if self.retention is not None:
            description["retention"] = self.retention
        if self.metrics_window is not None:
            description["metrics_window"] = self.metrics_window
        if self.metrics_spill is not None:
            description["metrics_spill"] = self.metrics_spill
        # Extra genesis accounts (the service facade's funded callers) are
        # emitted only when present, preserving default-spec golden bytes.
        if self.extra_accounts:
            description["extra_accounts"] = list(self.extra_accounts)
        # ``observe`` follows the same emit-only-when-set rule; ``trace_dir``
        # never appears (see its field docstring).
        if self.observe:
            description["observe"] = True
        return description
