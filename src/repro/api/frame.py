"""A typed columnar result container shared by every experiment.

:class:`ResultFrame` is the unit of analysis in :mod:`repro.api.experiment`:
the sweep engine's rows land in one frame, experiments derive their metrics
as new columns, claim checks read the same frame, and export writes it out
with sorted keys so artifacts diff cleanly across runs.  It is deliberately
dependency-free (no pandas) — a dict of equal-length column lists with the
handful of relational operations the experiments actually need:

    frame = ResultFrame.from_sweep(sweep_result)
    by_cell = (
        frame.derive(eta=lambda row: row["summary"]["reports"]["buy"]["success_rate"])
        .group_by("scenario", "buys_per_set")
        .aggregate(mean_eta=("eta", mean))
    )
    by_cell.pivot(index="buys_per_set", columns="scenario", values="mean_eta")
    by_cell.to_markdown("figure2.md")

Columns hold plain Python values; scalar columns (numbers, strings, bools,
``None``) export to CSV/Markdown, while structured columns (the raw
``summary`` dicts) are kept for analysis and dropped from flat exports.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = ["ResultFrame", "GroupBy", "mean", "total", "count", "minimum", "maximum"]

Row = Dict[str, Any]
_SCALAR_TYPES = (int, float, str, bool)


# -- aggregation helpers ----------------------------------------------------------------


def mean(values: Sequence[float]) -> Optional[float]:
    """Arithmetic mean; ``None`` for an empty selection (never a ZeroDivisionError)."""
    values = [value for value in values if value is not None]
    if not values:
        return None
    return sum(values) / len(values)


def total(values: Sequence[float]) -> float:
    return sum(value for value in values if value is not None)


def count(values: Sequence[Any]) -> int:
    return len(values)


def minimum(values: Sequence[float]) -> Optional[float]:
    values = [value for value in values if value is not None]
    return min(values) if values else None


def maximum(values: Sequence[float]) -> Optional[float]:
    values = [value for value in values if value is not None]
    return max(values) if values else None


class ResultFrame:
    """An immutable-by-convention columnar table of experiment results.

    Every operation returns a new frame; the receiver is never mutated, so
    intermediate frames can be shared freely between claims and exports.
    """

    def __init__(self, columns: Optional[Dict[str, Sequence[Any]]] = None) -> None:
        self._columns: Dict[str, List[Any]] = {}
        length: Optional[int] = None
        for name, values in (columns or {}).items():
            values = list(values)
            if length is None:
                length = len(values)
            elif len(values) != length:
                raise ValueError(
                    f"column {name!r} has {len(values)} values; expected {length}"
                )
            self._columns[name] = values
        self._length = length or 0

    # -- construction -------------------------------------------------------------------

    @classmethod
    def from_records(
        cls, records: Iterable[Row], columns: Optional[Sequence[str]] = None
    ) -> "ResultFrame":
        """Build a frame from row dicts; missing keys fill with ``None``.

        Column order is the declaration order (or first-seen order across
        the records when ``columns`` is not given).
        """
        records = list(records)
        if columns is None:
            names: List[str] = []
            for record in records:
                for key in record:
                    if key not in names:
                        names.append(key)
        else:
            names = list(columns)
        data = {name: [record.get(name) for record in records] for name in names}
        return cls(data)

    @classmethod
    def from_sweep(cls, sweep_result: Any) -> "ResultFrame":
        """Flatten a :class:`~repro.api.sweep.SweepResult` into a frame.

        One row per sweep row: the tag columns, the headline metrics
        (``efficiency``, ``blocks_produced``, ``simulated_seconds``), and the
        full ``summary`` dict as a structured column for ``derive`` to mine.
        """
        records = []
        for row in sweep_result:
            record: Row = dict(sorted(row.tags.items()))
            record["efficiency"] = row.summary.get("efficiency")
            record["blocks_produced"] = row.summary.get("blocks_produced")
            record["simulated_seconds"] = row.summary.get("simulated_seconds")
            record["summary"] = row.summary
            records.append(record)
        return cls.from_records(records)

    # -- shape --------------------------------------------------------------------------

    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    def column(self, name: str) -> List[Any]:
        """The values of one column (a copy — frames are not mutated in place)."""
        if name not in self._columns:
            raise KeyError(f"no column {name!r}; available: {self.column_names}")
        return list(self._columns[name])

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def rows(self) -> Iterator[Row]:
        for index in range(self._length):
            yield {name: values[index] for name, values in self._columns.items()}

    def row(self, index: int) -> Row:
        return {name: values[index] for name, values in self._columns.items()}

    def unique(self, name: str) -> List[Any]:
        """Distinct values of a column, in first-appearance order."""
        seen: List[Any] = []
        for value in self.column(name):
            if value not in seen:
                seen.append(value)
        return seen

    # -- relational operations ----------------------------------------------------------

    def filter(
        self, predicate: Optional[Callable[[Row], bool]] = None, **eq: Any
    ) -> "ResultFrame":
        """Rows matching every ``column=value`` pair (and ``predicate``, if given)."""
        for name in eq:
            if name not in self._columns:
                raise KeyError(f"no column {name!r}; available: {self.column_names}")
        kept = [
            row
            for row in self.rows()
            if all(row[name] == value for name, value in eq.items())
            and (predicate is None or predicate(row))
        ]
        return ResultFrame.from_records(kept, columns=self.column_names)

    def select(self, *names: str) -> "ResultFrame":
        return ResultFrame({name: self.column(name) for name in names})

    def drop(self, *names: str) -> "ResultFrame":
        return ResultFrame(
            {
                name: values
                for name, values in self._columns.items()
                if name not in names
            }
        )

    def derive(self, **derivations: Callable[[Row], Any]) -> "ResultFrame":
        """Append computed columns; each function maps a row dict to a value."""
        data = {name: list(values) for name, values in self._columns.items()}
        for name, function in derivations.items():
            data[name] = [function(row) for row in self.rows()]
        return ResultFrame(data)

    def sort_by(self, *names: str, reverse: bool = False) -> "ResultFrame":
        """Rows reordered by the given columns (stable, ``None`` sorts first)."""
        for name in names:
            if name not in self._columns:
                raise KeyError(f"no column {name!r}; available: {self.column_names}")

        def key(row: Row) -> Tuple:
            return tuple(
                (row[name] is not None, row[name]) for name in names
            )

        ordered = sorted(self.rows(), key=key, reverse=reverse)
        return ResultFrame.from_records(ordered, columns=self.column_names)

    def group_by(self, *keys: str) -> "GroupBy":
        for name in keys:
            if name not in self._columns:
                raise KeyError(f"no column {name!r}; available: {self.column_names}")
        return GroupBy(self, keys)

    def pivot(
        self,
        index: str,
        columns: str,
        values: str,
        aggregate: Callable[[Sequence[Any]], Any] = mean,
    ) -> "ResultFrame":
        """A wide table: one row per ``index`` value, one column per distinct
        ``columns`` value, cells aggregated from ``values``."""
        column_labels = self.unique(columns)
        records: List[Row] = []
        for index_value in self.unique(index):
            record: Row = {index: index_value}
            for label in column_labels:
                cell = [
                    row[values]
                    for row in self.rows()
                    if row[index] == index_value and row[columns] == label
                ]
                record[str(label)] = aggregate(cell) if cell else None
            records.append(record)
        return ResultFrame.from_records(
            records, columns=[index] + [str(label) for label in column_labels]
        )

    def mean(self, name: str, **eq: Any) -> Optional[float]:
        """Mean of a column over an (optionally filtered) selection."""
        frame = self.filter(**eq) if eq else self
        return mean(frame.column(name))

    # -- export -------------------------------------------------------------------------

    def _scalar_columns(self) -> List[str]:
        names = []
        for name, values in self._columns.items():
            if all(value is None or isinstance(value, _SCALAR_TYPES) for value in values):
                names.append(name)
        return names

    def to_records(self) -> List[Row]:
        """All rows as plain dicts (structured columns included)."""
        return list(self.rows())

    def to_json(self, path: Optional[Union[str, Path]] = None) -> str:
        """Records as sorted-key JSON; written to ``path`` if given."""
        text = json.dumps(self.to_records(), indent=2, sort_keys=True) + "\n"
        return _deliver(text, path)

    def to_csv(self, path: Optional[Union[str, Path]] = None) -> str:
        """Scalar columns as CSV (structured columns are dropped)."""
        names = self._scalar_columns()
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(names)
        for row in self.rows():
            writer.writerow(["" if row[name] is None else row[name] for name in names])
        return _deliver(buffer.getvalue(), path)

    def to_markdown(self, path: Optional[Union[str, Path]] = None) -> str:
        """Scalar columns as a GitHub-style Markdown table."""
        names = self._scalar_columns()
        lines = [
            "| " + " | ".join(names) + " |",
            "| " + " | ".join("---" for _ in names) + " |",
        ]
        for row in self.rows():
            cells = []
            for name in names:
                value = row[name]
                if value is None:
                    cells.append("")
                elif isinstance(value, float):
                    cells.append(f"{value:.4g}")
                else:
                    cells.append(str(value))
            lines.append("| " + " | ".join(cells) + " |")
        return _deliver("\n".join(lines) + "\n", path)

    def __repr__(self) -> str:
        return f"ResultFrame({self._length} rows x {len(self._columns)} columns)"


class GroupBy:
    """A deferred grouping; :meth:`aggregate` produces the reduced frame."""

    def __init__(self, frame: ResultFrame, keys: Tuple[str, ...]) -> None:
        self.frame = frame
        self.keys = keys

    def groups(self) -> List[Tuple[Tuple[Any, ...], List[Row]]]:
        """(key-values, rows) pairs in first-appearance order."""
        buckets: Dict[Tuple[Any, ...], List[Row]] = {}
        order: List[Tuple[Any, ...]] = []
        for row in self.frame.rows():
            key = tuple(row[name] for name in self.keys)
            if key not in buckets:
                buckets[key] = []
                order.append(key)
            buckets[key].append(row)
        return [(key, buckets[key]) for key in order]

    def aggregate(self, **aggregations: Any) -> ResultFrame:
        """Reduce each group to one row.

        Each aggregation is either ``name=(column, fn)`` — apply ``fn`` to
        that column's values within the group — or ``name=fn`` with ``fn``
        taking the group's row dicts.
        """
        records: List[Row] = []
        for key, rows in self.groups():
            record: Row = dict(zip(self.keys, key))
            for name, spec in aggregations.items():
                if isinstance(spec, tuple):
                    column, function = spec
                    record[name] = function([row[column] for row in rows])
                else:
                    record[name] = spec(rows)
            records.append(record)
        return ResultFrame.from_records(
            records, columns=list(self.keys) + list(aggregations)
        )


def _deliver(text: str, path: Optional[Union[str, Path]]) -> str:
    if path is not None:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")
    return text
