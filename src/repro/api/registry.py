"""Name-based registries for scenarios and workloads.

Both registries follow the pluggable-feature idiom: a component registers
itself once (either by decorating its class or by calling ``add``) and every
consumer — the builder, the sweep engine, the CLI — resolves it by name.
Adding a new workload to the system is therefore a single self-registering
module, not a new runner script.

The registry machinery itself lives in :mod:`repro.registry` (it is shared
with the adversary ecosystem); this module holds the scenario and workload
instances and re-exports the classes for backward compatibility.
"""

from __future__ import annotations

from typing import Optional

from ..registry import Registry, RegistryError

__all__ = [
    "Registry",
    "RegistryError",
    "SCENARIO_REGISTRY",
    "WORKLOAD_REGISTRY",
    "register_workload",
    "register_scenario",
]

# The two process-wide registries the facade consults.  Scenario entries are
# ``repro.experiments.scenario.Scenario`` instances; workload entries are
# ``repro.api.workloads.Workload`` subclasses.
SCENARIO_REGISTRY: Registry = Registry("scenario")
WORKLOAD_REGISTRY: Registry = Registry("workload")


def register_scenario(scenario) -> None:
    """Register a :class:`~repro.experiments.scenario.Scenario` by its name."""
    SCENARIO_REGISTRY.add(scenario.name, scenario)


def register_workload(name: Optional[str] = None):
    """Class decorator registering a :class:`Workload` subclass by name."""
    return WORKLOAD_REGISTRY.register(name)
