"""``repro.api`` — the single entry point for running anything in this repo.

The facade has four pieces:

* :class:`Simulation` / :class:`SimulationBuilder` — fluent construction of
  an immutable :class:`SimulationSpec` describing one run;
* the **registries** — scenarios (``geth_unmodified``, ``sereth_client``,
  ``semantic_mining``), workloads (``market``, ``ticket_sale``, ``auction``,
  ``oracle``, ``sequential``, ``victim_market``, ``frontrunning``), and
  adversaries (``displacement``, ``insertion``, ``suppression``,
  ``censoring_miner``, ``stale_oracle`` — see :mod:`repro.adversary`)
  resolved by name, with decorator-based registration for plugins;
* the **engine** — :func:`run_simulation` wires the network, miners, and
  clients for a spec and drives the measured run loop (the only place in
  the repository that touches ``Network``/``Peer`` directly);
* the **sweep engine** — :class:`Sweep` expands parameter grids
  (ratios x scenarios x trials) into specs and executes them serially or on
  a ``multiprocessing`` pool, deterministically either way — resumably,
  when given a JSONL ``checkpoint``;
* the **experiment layer** — :mod:`repro.api.experiment` drives registered,
  declarative experiments (``figure2``, ``attack_matrix``, …) through one
  ``plan -> execute -> analyze -> check_claims -> export`` lifecycle, with
  results analyzed in a columnar :class:`~repro.api.frame.ResultFrame`.

Quickstart::

    from repro.api import Simulation, Sweep

    spec = (
        Simulation.builder()
        .scenario("semantic_mining")
        .workload("market", buys_per_set=4.0, num_buys=50)
        .miners(1).clients(2).seed(42)
        .build()
    )
    print(Simulation(spec).run().efficiency)

    figure2 = Sweep(spec).over(
        scenario=["geth_unmodified", "sereth_client", "semantic_mining"],
        buys_per_set=[1.0, 2.0, 10.0],
    ).trials(3).run(workers=4)
    figure2.to_csv("figure2.csv")

    from repro.api import run_experiment, ExperimentOptions
    run = run_experiment("figure2", ExperimentOptions(workers=4))
    assert run.passed  # the paper's headline claim gates
"""

from __future__ import annotations

from ..adversary import ADVERSARY_REGISTRY, Adversary, AdversaryTarget, register_adversary
from ..chain.chain import ChainAnchor
from ..chain.errors import PrunedHistoryError
from ..chain.state import StateSnapshot, live_state_stats
from ..experiments.scenario import (
    GETH_UNMODIFIED,
    SEMANTIC_MINING,
    SERETH_CLIENT_SCENARIO,
    Scenario,
)
from ..net.topology import (
    BandwidthModel,
    ChurnPlan,
    TOPOLOGY_REGISTRY,
    Topology,
    register_topology,
    topology_names,
)
from ..obs import (
    Tracer,
    fold_phases,
    format_hot_phase_table,
    hot_phase_frame,
    probe_names,
    register_probe,
    unregister_probe,
)
from .builder import BuildError, Simulation, SimulationBuilder
from .checkpoint import CheckpointMismatchError, SweepCheckpoint, spec_digest, sweep_digest
from .engine import (
    SimulationHandle,
    SimulationResult,
    build_simulation,
    run_simulation,
)
from .experiment import (
    Claim,
    ClaimCheck,
    EXPERIMENT_REGISTRY,
    Experiment,
    ExperimentOptions,
    ExperimentRun,
    GridExperiment,
    execute_plan,
    plan_experiment,
    register_experiment,
    run_experiment,
)
from .frame import GroupBy, ResultFrame
from .lifecycle import end_of_trial_cleanup, reset_process_caches
from .registry import (
    Registry,
    RegistryError,
    SCENARIO_REGISTRY,
    WORKLOAD_REGISTRY,
    register_scenario,
    register_workload,
)
from .seeding import SeedPlan, derive_seed
from .spec import SimulationSpec, freeze_adversaries, freeze_params
from .sweep import EmptySelectionError, Sweep, SweepResult, SweepRow
from .workloads import (
    SimulationContext,
    Workload,
    sereth_exchange_address,
)

__all__ = [
    "ADVERSARY_REGISTRY",
    "Adversary",
    "AdversaryTarget",
    "BandwidthModel",
    "BuildError",
    "ChurnPlan",
    "ChainAnchor",
    "CheckpointMismatchError",
    "Claim",
    "ClaimCheck",
    "EXPERIMENT_REGISTRY",
    "EmptySelectionError",
    "Experiment",
    "ExperimentOptions",
    "ExperimentRun",
    "GETH_UNMODIFIED",
    "GridExperiment",
    "GroupBy",
    "PrunedHistoryError",
    "Registry",
    "RegistryError",
    "ResultFrame",
    "SCENARIO_REGISTRY",
    "SEMANTIC_MINING",
    "SERETH_CLIENT_SCENARIO",
    "Scenario",
    "SeedPlan",
    "Simulation",
    "SimulationBuilder",
    "SimulationContext",
    "SimulationHandle",
    "SimulationResult",
    "SimulationSpec",
    "StateSnapshot",
    "Sweep",
    "SweepCheckpoint",
    "SweepResult",
    "SweepRow",
    "TOPOLOGY_REGISTRY",
    "Topology",
    "Tracer",
    "WORKLOAD_REGISTRY",
    "Workload",
    "build_simulation",
    "derive_seed",
    "end_of_trial_cleanup",
    "execute_plan",
    "fold_phases",
    "format_hot_phase_table",
    "freeze_adversaries",
    "freeze_params",
    "hot_phase_frame",
    "live_state_stats",
    "probe_names",
    "register_adversary",
    "register_experiment",
    "register_probe",
    "register_scenario",
    "register_topology",
    "plan_experiment",
    "register_workload",
    "topology_names",
    "run_experiment",
    "reset_process_caches",
    "run_simulation",
    "sereth_exchange_address",
    "scenario_by_name",
    "spec_digest",
    "sweep_digest",
    "unregister_probe",
]


def scenario_by_name(name: str) -> Scenario:
    """Resolve a registered scenario by name (registry-backed)."""
    return SCENARIO_REGISTRY.get(name)


# Register the paper's three scenarios; plugins add theirs via
# ``register_scenario`` at import time.
for _scenario in (GETH_UNMODIFIED, SERETH_CLIENT_SCENARIO, SEMANTIC_MINING):
    if _scenario.name not in SCENARIO_REGISTRY:
        register_scenario(_scenario)
del _scenario
