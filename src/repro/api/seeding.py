"""Deterministic seed derivation: one root seed drives every RNG in a run.

A :class:`SimulationSpec` carries a single ``seed``; everything stochastic in
the simulation — gossip latency samples, message loss, block intervals, the
proof-of-work winner draw, miner order jitter, and the workload's own price
and arrival processes — receives a sub-seed derived deterministically from
that root.  Two runs of the same spec therefore produce byte-identical
metrics, no matter whether they execute serially or in a worker pool.

The numbered streams reproduce the seed offsets the original experiment
runner used (root, root+1, root+2, …) so the facade regenerates the paper's
numbers exactly; new consumers should use :meth:`SeedPlan.derived`, which
hashes a label into a fresh, collision-resistant stream.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["SeedPlan", "derive_seed"]

_SEED_SPACE = 2**63


def derive_seed(root: int, *labels: object) -> int:
    """A stable sub-seed for ``labels`` under ``root``.

    Uses SHA-256 over the root and the label path, so the result is stable
    across processes and Python versions (unlike ``hash()``).
    """
    digest = hashlib.sha256()
    digest.update(str(int(root)).encode("utf-8"))
    for label in labels:
        digest.update(b"/")
        digest.update(repr(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") % _SEED_SPACE


@dataclass(frozen=True)
class SeedPlan:
    """The sub-seeds a single simulation run hands to its components."""

    root: int

    # -- legacy-parity streams (fixed offsets, match the original runner) --------

    @property
    def latency(self) -> int:
        """Gossip latency model."""
        return self.root

    @property
    def network(self) -> int:
        """Message-loss draws inside the gossip network."""
        return self.root

    @property
    def block_interval(self) -> int:
        """The Poisson block-interval model."""
        return self.root + 1

    @property
    def production(self) -> int:
        """The proof-of-work winner draw."""
        return self.root + 2

    @property
    def prices(self) -> int:
        """The workload's price process (random walk / uniform re-draw)."""
        return self.root + 3

    def miner(self, miner_index: int) -> int:
        """Per-miner order jitter for the baseline ordering policy."""
        return self.root + 10 + miner_index

    # -- labelled streams (for everything new) -----------------------------------

    def derived(self, *labels: object) -> int:
        """A fresh stream for ``labels`` (arrival processes, workload extras…)."""
        return derive_seed(self.root, *labels)

    def adversary(self, index: int, name: str) -> int:
        """The RNG stream for the ``index``-th adversary of the spec.

        Keyed by position *and* strategy name, so editing the adversary list
        reshuffles exactly the streams whose coordinates changed — and a run
        is byte-identical serially and under the multiprocessing sweep.
        """
        return self.derived("adversary", index, name)
