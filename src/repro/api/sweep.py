"""The sweep engine: expand a parameter grid into specs and run them in parallel.

A :class:`Sweep` starts from a base :class:`SimulationSpec` and varies any
combination of dimensions — ``scenario``, spec-level fields (``block_interval``,
``num_miners``…), or workload parameters (``buys_per_set``…) — with ``trials``
seeded repetitions per grid cell.  Expansion is fully deterministic: every
cell receives a per-trial seed derived from the base seed and its coordinates,
so the same sweep produces the same specs (and therefore the same metrics)
whether it runs serially or on a ``multiprocessing`` pool.

    sweep = (
        Sweep(base_spec)
        .over(scenario=["geth_unmodified", "sereth_client", "semantic_mining"],
              buys_per_set=[1.0, 2.0, 10.0])
        .trials(3)
    )
    result = sweep.run(workers=4)
    result.to_csv("figure2.csv")
"""

from __future__ import annotations

import csv
import io
import itertools
import json
import multiprocessing
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..experiments.scenario import Scenario
from .checkpoint import SweepCheckpoint, sweep_digest
from .registry import SCENARIO_REGISTRY
from .seeding import derive_seed
from .spec import SimulationSpec

__all__ = ["EmptySelectionError", "Sweep", "SweepResult", "SweepRow", "apply_dimension"]


def apply_dimension(spec: SimulationSpec, name: str, value: Any) -> SimulationSpec:
    """Apply one named knob to a spec: ``scenario``, a spec field, or —
    anything else — a workload parameter.  Shared by the sweep grid expander
    and the experiment engine's scalar overrides."""
    if name == "scenario":
        scenario = value if isinstance(value, Scenario) else SCENARIO_REGISTRY.get(value)
        return replace(spec, scenario=scenario)
    if name in _SPEC_FIELD_NAMES:
        return replace(spec, **{name: value})
    return spec.with_params(**{name: value})


class EmptySelectionError(KeyError):
    """A selection over sweep rows matched nothing usable.

    Subclasses :class:`KeyError` so callers that guarded against the old
    behaviour keep working; the message says whether no row matched at all
    or the matching rows simply carry no efficiency metric."""

_SPEC_FIELD_NAMES = {spec_field.name for spec_field in dataclass_fields(SimulationSpec)}


_PROCESS_SIMULATOR = None
"""The per-process reusable event loop for warm sweep workers (lazily built;
``Simulator.reset`` drains it between trials)."""


def _process_simulator():
    global _PROCESS_SIMULATOR
    if _PROCESS_SIMULATOR is None:
        from ..net.sim import Simulator

        _PROCESS_SIMULATOR = Simulator()
    return _PROCESS_SIMULATOR


def _run_job(job: Tuple[SimulationSpec, Dict[str, Any]]) -> Dict[str, Any]:
    """Worker entry point: run one spec and return its picklable row.

    Workers are deliberately kept *warm* between jobs: the keccak digest and
    ordered-trie-root memos are bounded LRUs whose entries are pure
    input->output pairs, so leaving them populated across a grid's trials
    changes nothing observable while saving every repeated hash; the genesis
    template memo likewise persists per process.  Only the wire-encoding
    memo is unbounded (it pins gossiped objects), so it is cleared after
    every trial.
    """
    from .engine import run_simulation
    from .lifecycle import end_of_trial_cleanup

    spec, tags = job
    result = run_simulation(spec, simulator=_process_simulator())
    row = {"tags": tags, "summary": result.summary()}
    end_of_trial_cleanup()
    return row


@dataclass
class SweepRow:
    """One grid cell's outcome: its coordinates plus the run's summary."""

    tags: Dict[str, Any]
    summary: Dict[str, Any]
    result: Optional[Any] = None
    """The live SimulationResult — populated only on serial runs that asked
    to keep results (live results cannot cross process boundaries)."""

    @property
    def efficiency(self) -> Optional[float]:
        return self.summary.get("efficiency")

    def report(self, label: str) -> Dict[str, Any]:
        return self.summary["reports"][label]

    def matches(self, **tags: Any) -> bool:
        return all(self.tags.get(key) == value for key, value in tags.items())


@dataclass
class SweepResult:
    """All rows of a sweep, with filtering and JSON/CSV export."""

    rows: List[SweepRow] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, index):
        return self.rows[index]

    # -- selection ------------------------------------------------------------------

    def filter(self, **tags: Any) -> "SweepResult":
        """The matching rows as a new SweepResult — chainable, like
        :meth:`ResultFrame.filter` (it still iterates/indexes like a list)."""
        return SweepResult(rows=[row for row in self.rows if row.matches(**tags)])

    def efficiencies(self, **tags: Any) -> List[float]:
        return [
            row.efficiency for row in self.filter(**tags) if row.efficiency is not None
        ]

    def mean_efficiency(self, **tags: Any) -> float:
        matching = self.filter(**tags)
        if not matching:
            raise EmptySelectionError(f"no sweep rows match {tags!r}")
        values = [row.efficiency for row in matching if row.efficiency is not None]
        if not values:
            raise EmptySelectionError(
                f"{len(matching)} sweep rows match {tags!r} but none carries an "
                "efficiency metric (the workload has no primary label)"
            )
        return sum(values) / len(values)

    def to_frame(self) -> "Any":
        """This result as a columnar :class:`~repro.api.frame.ResultFrame`."""
        from .frame import ResultFrame

        return ResultFrame.from_sweep(self)

    # -- export ---------------------------------------------------------------------

    def to_dict(self) -> List[Dict[str, Any]]:
        # Tag dicts are rebuilt key-sorted so exported artifacts diff cleanly
        # across runs regardless of dimension declaration order.
        return [
            {"tags": dict(sorted(row.tags.items())), "summary": row.summary}
            for row in self.rows
        ]

    def to_json(self, path: Optional[Union[str, Path]] = None) -> str:
        """Serialize every row; written to ``path`` if given."""
        text = json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        if path is not None:
            target = Path(path)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(text, encoding="utf-8")
        return text

    def to_csv(self, path: Optional[Union[str, Path]] = None) -> str:
        """A flat table: tag columns plus the headline metrics per row.

        Tag columns are emitted in sorted order (not first-seen insertion
        order) so CSV artifacts from the same grid diff cleanly no matter
        how the sweep's dimensions were declared.
        """
        tag_keys = sorted({key for row in self.rows for key in row.tags})
        metric_keys = ["efficiency", "blocks_produced", "simulated_seconds"]
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(tag_keys + metric_keys)
        for row in self.rows:
            record = [row.tags.get(key, "") for key in tag_keys]
            record.append(row.summary.get("efficiency"))
            record.append(row.summary.get("blocks_produced"))
            record.append(row.summary.get("simulated_seconds"))
            writer.writerow(record)
        text = buffer.getvalue()
        if path is not None:
            target = Path(path)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(text, encoding="utf-8")
        return text


class Sweep:
    """Expands a parameter grid over a base spec and executes it."""

    def __init__(self, base: SimulationSpec) -> None:
        self.base = base
        self._dimensions: Dict[str, List[Any]] = {}
        self._trials = 1
        self._explicit_jobs: Optional[List[Tuple[SimulationSpec, Dict[str, Any]]]] = None

    # -- construction -----------------------------------------------------------------

    @classmethod
    def from_specs(
        cls,
        jobs: Sequence[Tuple[SimulationSpec, Dict[str, Any]]],
    ) -> "Sweep":
        """A sweep over pre-expanded (spec, tags) jobs — for callers that need
        exact control over every spec (e.g. regenerating the paper's seeds)."""
        if not jobs:
            raise ValueError("a sweep needs at least one job")
        sweep = cls(jobs[0][0])
        sweep._explicit_jobs = [(spec, dict(tags)) for spec, tags in jobs]
        return sweep

    def over(self, **dimensions: Iterable[Any]) -> "Sweep":
        """Add grid dimensions: ``scenario``, spec fields, or workload params."""
        for name, values in dimensions.items():
            values = list(values)
            if not values:
                raise ValueError(f"sweep dimension {name!r} has no values")
            self._dimensions[name] = values
        return self

    def trials(self, count: int) -> "Sweep":
        if count <= 0:
            raise ValueError("trials must be positive")
        self._trials = count
        return self

    def observed(self, trace_dir: Optional[Union[str, Path]] = None) -> "Sweep":
        """A copy of this sweep with every job running under the ``repro.obs``
        tracer: each row's summary gains an ``observability`` key, and
        ``trace_dir`` (if given) collects one JSONL + Chrome-trace file pair
        per job, named by the job spec's content digest."""
        directory = str(trace_dir) if trace_dir is not None else None
        return Sweep.from_specs(
            [
                (replace(spec, observe=True, trace_dir=directory), tags)
                for spec, tags in self.jobs()
            ]
        )

    # -- expansion --------------------------------------------------------------------

    def _apply_dimension(
        self, spec: SimulationSpec, name: str, value: Any
    ) -> SimulationSpec:
        return apply_dimension(spec, name, value)

    @staticmethod
    def _tag_value(name: str, value: Any) -> Any:
        if isinstance(value, Scenario):
            return value.name
        return value

    def jobs(self) -> List[Tuple[SimulationSpec, Dict[str, Any]]]:
        """The fully expanded, deterministically seeded (spec, tags) list."""
        if self._explicit_jobs is not None:
            return [(spec, dict(tags)) for spec, tags in self._explicit_jobs]
        names = list(self._dimensions)
        grids = [self._dimensions[name] for name in names]
        jobs: List[Tuple[SimulationSpec, Dict[str, Any]]] = []
        for combo in itertools.product(*grids) if names else [()]:
            cell_spec = self.base
            tags: Dict[str, Any] = {}
            for name, value in zip(names, combo):
                cell_spec = self._apply_dimension(cell_spec, name, value)
                tags[name] = self._tag_value(name, value)
            for trial in range(self._trials):
                seed = derive_seed(
                    self.base.seed,
                    cell_spec.scenario.name,
                    cell_spec.workload,
                    tuple(sorted((k, repr(v)) for k, v in tags.items())),
                    trial,
                )
                trial_tags = dict(tags)
                trial_tags["trial"] = trial
                trial_tags["seed"] = seed
                jobs.append((cell_spec.with_seed(seed), trial_tags))
        return jobs

    def specs(self) -> List[SimulationSpec]:
        return [spec for spec, _tags in self.jobs()]

    # -- execution --------------------------------------------------------------------

    def run(
        self,
        workers: int = 1,
        keep_results: bool = False,
        checkpoint: Optional[Union[str, Path]] = None,
    ) -> SweepResult:
        """Execute every job; ``workers > 1`` uses a multiprocessing pool.

        Results are deterministic and identical across worker counts: each
        job's spec fully seeds its run, and rows keep the expansion order.
        ``keep_results`` attaches live SimulationResult objects to the rows
        (serial runs only — live results cannot cross process boundaries).

        ``checkpoint`` names a JSONL file keyed by the job list's content
        digest: every completed row is appended as it finishes, and a re-run
        against the same file executes only the rows the file is missing.
        Serial, parallel, and resumed runs all produce the same rows, so
        their exports are byte-identical.
        """
        jobs = self.jobs()
        if workers > 1 and keep_results:
            raise ValueError("keep_results requires a serial run (workers=1)")
        if checkpoint is not None:
            if keep_results:
                raise ValueError(
                    "keep_results cannot be combined with a checkpoint "
                    "(live results cannot be persisted)"
                )
            return self._run_checkpointed(jobs, workers, checkpoint)
        if workers > 1:
            with multiprocessing.Pool(processes=workers) as pool:
                raw_rows = pool.map(_run_job, jobs)
            rows = [SweepRow(tags=raw["tags"], summary=raw["summary"]) for raw in raw_rows]
        elif keep_results:
            # Live results keep their peers (and, transitively, the event
            # loop), so each trial gets a private Simulator.
            from .engine import run_simulation

            rows = []
            for spec, tags in jobs:
                result = run_simulation(spec)
                rows.append(SweepRow(tags=tags, summary=result.summary(), result=result))
        else:
            # Serial runs take the same warm path as a pool worker.
            rows = [
                SweepRow(tags=raw["tags"], summary=raw["summary"])
                for raw in map(_run_job, jobs)
            ]
        return SweepResult(rows=rows)

    def _run_checkpointed(
        self,
        jobs: List[Tuple[SimulationSpec, Dict[str, Any]]],
        workers: int,
        checkpoint: Union[str, Path],
    ) -> SweepResult:
        """Run only the rows the checkpoint file is missing, recording each
        completion incrementally (``imap`` streams parallel rows back in
        order, so an interrupted pool loses only in-flight cells)."""
        store = SweepCheckpoint.load(checkpoint, sweep_digest(jobs), len(jobs))
        store.begin()
        pending = [(index, jobs[index]) for index in store.missing()]
        if pending and workers > 1:
            with multiprocessing.Pool(processes=workers) as pool:
                for (index, (_spec, tags)), raw in zip(
                    pending, pool.imap(_run_job, [job for _index, job in pending])
                ):
                    store.record(index, raw["tags"], raw["summary"])
        elif pending:
            for index, (spec, tags) in pending:
                raw = _run_job((spec, tags))
                store.record(index, raw["tags"], raw["summary"])
        rows = []
        for index in range(len(jobs)):
            payload = store.row(index)
            rows.append(SweepRow(tags=payload["tags"], summary=payload["summary"]))
        return SweepResult(rows=rows)
