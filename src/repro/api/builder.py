"""The fluent builder: the front door of the facade.

    from repro.api import Simulation

    spec = (
        Simulation.builder()
        .scenario("semantic_mining")
        .workload("market", buys_per_set=4.0)
        .miners(3)
        .clients(8)
        .block_interval(13.0)
        .seed(42)
        .build()
    )
    result = Simulation(spec).run()

``build()`` validates everything eagerly — scenario and workload names are
resolved against the registries and the workload's parameters are checked by
constructing the plugin once — so a bad configuration fails at build time
with a precise error, not minutes into a sweep.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple, Union

from ..adversary import ADVERSARY_REGISTRY
from ..experiments.scenario import Scenario
from ..faults import FAULT_REGISTRY, build_fault
from ..net.topology import BandwidthModel, freeze_churn, resolve_topology
from .registry import SCENARIO_REGISTRY, WORKLOAD_REGISTRY
from .spec import MINER_POLICIES, SimulationSpec, freeze_params

__all__ = ["Simulation", "SimulationBuilder", "BuildError"]


class BuildError(ValueError):
    """A builder configuration that cannot produce a valid spec."""


class SimulationBuilder:
    """Accumulates configuration and produces an immutable SimulationSpec."""

    def __init__(self) -> None:
        self._scenario: Optional[Scenario] = None
        self._workload: str = "market"
        self._params: Dict[str, Any] = {}
        self._fields: Dict[str, Any] = {}
        self._overrides: Dict[str, str] = {}
        self._adversaries: List[Tuple[str, Tuple[Tuple[str, Any], ...]]] = []

    # -- what runs -----------------------------------------------------------------

    def scenario(self, scenario: Union[str, Scenario]) -> "SimulationBuilder":
        """Select the scenario by registry name or pass a Scenario instance."""
        if isinstance(scenario, Scenario):
            self._scenario = scenario
        else:
            self._scenario = SCENARIO_REGISTRY.get(scenario)
        return self

    def workload(self, name: str, **params: Any) -> "SimulationBuilder":
        """Select the workload by registry name, with its parameters."""
        if name not in WORKLOAD_REGISTRY:
            raise BuildError(
                f"unknown workload {name!r}; registered: {WORKLOAD_REGISTRY.names()}"
            )
        self._workload = name
        self._params = dict(params)
        return self

    def params(self, **params: Any) -> "SimulationBuilder":
        """Merge additional workload parameters."""
        self._params.update(params)
        return self

    def adversary(self, name: str, **params: Any) -> "SimulationBuilder":
        """Add an attack strategy by registry name; call repeatedly to stack."""
        if name not in ADVERSARY_REGISTRY:
            raise BuildError(
                f"unknown adversary {name!r}; registered: {ADVERSARY_REGISTRY.names()}"
            )
        self._adversaries.append((name, freeze_params(params)))
        return self

    # -- network shape -------------------------------------------------------------

    def miners(self, count: int) -> "SimulationBuilder":
        self._fields["num_miners"] = count
        return self

    def clients(self, count: int) -> "SimulationBuilder":
        self._fields["num_client_peers"] = count
        return self

    def block_interval(self, seconds: float, fixed: bool = False) -> "SimulationBuilder":
        self._fields["block_interval"] = seconds
        self._fields["fixed_block_interval"] = fixed
        return self

    def gossip(self, latency: float, jitter: Optional[float] = None) -> "SimulationBuilder":
        self._fields["gossip_latency"] = latency
        if jitter is not None:
            self._fields["gossip_jitter"] = jitter
        return self

    def transaction_loss(self, rate: float) -> "SimulationBuilder":
        self._fields["transaction_loss_rate"] = rate
        return self

    def topology(self, name: str, **params: Any) -> "SimulationBuilder":
        """Select the gossip graph by registry name, with builder params.

        ``full_mesh`` (the default when this is never called) preserves the
        legacy direct-broadcast behaviour byte for byte.
        """
        try:
            builder_class = resolve_topology(name)
            builder_class(**params)  # eager parameter validation
        except (TypeError, ValueError) as error:
            raise BuildError(str(error)) from error
        self._fields["topology"] = (name, tuple(sorted(params.items())))
        return self

    def bandwidth(self, bytes_per_second: float, **params: Any) -> "SimulationBuilder":
        """Enable per-link FIFO bandwidth at ``bytes_per_second``."""
        merged = {"bytes_per_second": bytes_per_second, **params}
        try:
            BandwidthModel(**merged)  # eager parameter validation
        except (TypeError, ValueError) as error:
            raise BuildError(str(error)) from error
        self._fields["bandwidth"] = tuple(sorted(merged.items()))
        return self

    def churn(self, *events) -> "SimulationBuilder":
        """Schedule churn events, e.g. ``.churn(("leave", 40.0, "client-3"),
        ("join", 90.0, "client-3"))``; call repeatedly to append."""
        existing = self._fields.get("churn", ())
        try:
            self._fields["churn"] = freeze_churn(tuple(existing) + tuple(events))
        except (TypeError, ValueError) as error:
            raise BuildError(str(error)) from error
        return self

    def fault(self, name: str, **params: Any) -> "SimulationBuilder":
        """Add a fault by registry name, e.g. ``.fault("drop", rate=0.2,
        target="block")`` or ``.fault("crash", peer="client-1", at=20.0)``;
        call repeatedly to stack.  Parameters are validated eagerly by
        constructing the fault once."""
        if name not in FAULT_REGISTRY:
            raise BuildError(
                f"unknown fault {name!r}; registered: {FAULT_REGISTRY.names()}"
            )
        try:
            build_fault(name, params)  # eager parameter validation
        except (TypeError, ValueError) as error:
            raise BuildError(
                f"invalid parameters for fault {name!r}: {error}"
            ) from error
        existing = self._fields.get("faults", ())
        self._fields["faults"] = tuple(existing) + ((name, freeze_params(params)),)
        return self

    def miner_order_jitter(self, seconds: float) -> "SimulationBuilder":
        self._fields["miner_order_jitter"] = seconds
        return self

    def miner_policy(self, policy: str) -> "SimulationBuilder":
        """Force a baseline ordering policy (one of MINER_POLICIES)."""
        if policy not in MINER_POLICIES:
            raise BuildError(
                f"unknown miner policy {policy!r}; expected one of {MINER_POLICIES}"
            )
        self._fields["miner_policy"] = policy
        return self

    def client_kind(self, peer_id: str, kind: str) -> "SimulationBuilder":
        """Override one peer's client software (mixed Sereth/Geth networks)."""
        self._overrides[peer_id] = kind
        return self

    def gas(
        self,
        block_gas_limit: Optional[int] = None,
        max_transactions_per_block: Optional[int] = None,
        transaction_gas_limit: Optional[int] = None,
    ) -> "SimulationBuilder":
        if block_gas_limit is not None:
            self._fields["block_gas_limit"] = block_gas_limit
        if max_transactions_per_block is not None:
            self._fields["max_transactions_per_block"] = max_transactions_per_block
        if transaction_gas_limit is not None:
            self._fields["transaction_gas_limit"] = transaction_gas_limit
        return self

    # -- run shape -----------------------------------------------------------------

    def seed(self, seed: int) -> "SimulationBuilder":
        self._fields["seed"] = seed
        return self

    def settle_blocks(self, count: int) -> "SimulationBuilder":
        self._fields["settle_blocks"] = count
        return self

    def max_duration(self, seconds: float) -> "SimulationBuilder":
        self._fields["max_duration"] = seconds
        return self

    def retention(self, retain_blocks: int) -> "SimulationBuilder":
        """Bound memory: keep only the newest ``retain_blocks`` blocks per
        chain (older history folds into a sealed ChainAnchor) and evict the
        apply-cache templates that slide out of the same window."""
        self._fields["retention"] = retain_blocks
        return self

    def metrics_window(
        self, seconds: float, spill_path: Optional[str] = None
    ) -> "SimulationBuilder":
        """Stream metrics: fold resolved rows into bounded per-label and
        per-``seconds``-window aggregates instead of whole-run row lists.
        ``spill_path`` additionally appends every resolved row as JSONL."""
        self._fields["metrics_window"] = seconds
        if spill_path is not None:
            self._fields["metrics_spill"] = spill_path
        return self

    def accounts(self, *labels: str) -> "SimulationBuilder":
        """Fund additional account labels at genesis (beyond the workload's
        own clients) — the accounts RPC callers spend from."""
        existing = self._fields.get("extra_accounts", ())
        self._fields["extra_accounts"] = tuple(existing) + tuple(labels)
        return self

    def observe(self, trace_dir: Optional[str] = None) -> "SimulationBuilder":
        """Enable the ``repro.obs`` tracer for this run: typed lifecycle
        events, phase timers, and a probe snapshot appear under the result
        summary's ``observability`` key.  ``trace_dir`` additionally writes
        the JSONL + Chrome-trace files there after the run."""
        self._fields["observe"] = True
        if trace_dir is not None:
            self._fields["trace_dir"] = trace_dir
        return self

    # -- terminal ------------------------------------------------------------------

    def build(self) -> SimulationSpec:
        """Validate and freeze the configuration into a SimulationSpec."""
        if self._scenario is None:
            raise BuildError(
                "no scenario selected; call .scenario(name) with one of "
                f"{SCENARIO_REGISTRY.names()}"
            )
        try:
            spec = SimulationSpec(
                scenario=self._scenario,
                workload=self._workload,
                workload_params=freeze_params(self._params),
                adversaries=tuple(self._adversaries),
                client_kind_overrides=tuple(sorted(self._overrides.items())),
                **self._fields,
            )
        except (TypeError, ValueError) as error:
            raise BuildError(str(error)) from error
        # Validate workload and adversary parameters eagerly by constructing
        # the plugins once.
        workload_class = WORKLOAD_REGISTRY.get(spec.workload)
        try:
            workload_class(spec, **spec.params)
        except (TypeError, ValueError) as error:
            raise BuildError(
                f"invalid parameters for workload {spec.workload!r}: {error}"
            ) from error
        for name, params in spec.adversaries:
            adversary_class = ADVERSARY_REGISTRY.get(name)
            try:
                adversary_class(spec, **dict(params))
            except (TypeError, ValueError) as error:
                raise BuildError(
                    f"invalid parameters for adversary {name!r}: {error}"
                ) from error
        return spec


class Simulation:
    """A runnable simulation over an immutable spec."""

    def __init__(self, spec: SimulationSpec) -> None:
        self.spec = spec

    @classmethod
    def builder(cls) -> SimulationBuilder:
        return SimulationBuilder()

    @classmethod
    def from_spec(cls, spec: SimulationSpec) -> "Simulation":
        return cls(spec)

    def with_seed(self, seed: int) -> "Simulation":
        return Simulation(replace(self.spec, seed=seed))

    def start(self):
        """Wire the network and begin block production (interactive use)."""
        from .engine import build_simulation

        return build_simulation(self.spec).start()

    def run(self):
        """Run the workload to completion and return the SimulationResult."""
        from .engine import run_simulation

        return run_simulation(self.spec)
