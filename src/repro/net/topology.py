"""Structured gossip topologies, per-link bandwidth, and scheduled churn.

Every simulation before this module was a full mesh with sampled one-way
latency: propagation was one hop, so the paper's propagation-dependent
claims had only been tested in a regime where gossip is trivially instant.
This module supplies the missing structure:

* :data:`TOPOLOGY_REGISTRY` — pluggable graph builders (``full_mesh``,
  ``random_k``, ``region_hub``, ``kademlia``) producing a deterministic
  :class:`Topology` (symmetric adjacency + per-edge latency scales) from an
  explicit ``random.Random`` stream, so the same seed always yields the
  same graph regardless of worker or process.
* :class:`BandwidthModel` — per-link serialisation delay with FIFO queuing
  (the queue state itself lives in :class:`repro.net.network.Network`),
  fed by the memoised ``wire_encoding()`` byte counts.
* :class:`ChurnPlan` — a frozen schedule of ``leave``/``join`` and
  ``partition``/``heal`` events the network applies from the event loop.

``full_mesh`` remains the default behaviour: the engine keeps the legacy
direct-broadcast path for it (every peer is one hop from the origin, so
flooding a complete graph only adds duplicate deliveries), which is also
what keeps the committed golden checksums byte-identical.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..registry import Registry, RegistryError

__all__ = [
    "Topology",
    "TopologyBuilder",
    "TOPOLOGY_REGISTRY",
    "register_topology",
    "topology_names",
    "resolve_topology",
    "FullMeshTopology",
    "RandomKTopology",
    "RegionHubTopology",
    "KademliaTopology",
    "BandwidthModel",
    "ChurnPlan",
    "freeze_topology",
    "freeze_bandwidth",
    "freeze_churn",
]


def edge_key(a: str, b: str) -> Tuple[str, str]:
    """The canonical (sorted) key of an undirected edge."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class Topology:
    """A built gossip graph: symmetric adjacency plus per-edge latency scales.

    ``adjacency`` maps every peer id to its sorted neighbour tuple;
    ``latency_scale`` multiplies the sampled latency on specific edges
    (canonical sorted-pair keys; absent edges scale by 1.0).
    """

    name: str
    adjacency: Mapping[str, Tuple[str, ...]]
    latency_scale: Mapping[Tuple[str, str], float] = field(default_factory=dict)

    def neighbors(self, peer_id: str) -> Tuple[str, ...]:
        return self.adjacency.get(peer_id, ())

    def scale_for(self, a: str, b: str) -> float:
        return self.latency_scale.get(edge_key(a, b), 1.0)

    @property
    def num_peers(self) -> int:
        return len(self.adjacency)

    @property
    def edge_count(self) -> int:
        return sum(len(neighbors) for neighbors in self.adjacency.values()) // 2

    @property
    def mean_degree(self) -> float:
        if not self.adjacency:
            return 0.0
        return 2.0 * self.edge_count / len(self.adjacency)

    def is_connected(self) -> bool:
        if not self.adjacency:
            return True
        start = next(iter(self.adjacency))
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in self.adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self.adjacency)

    def checksum(self) -> str:
        """sha256 of the canonical JSON rendering — the determinism witness."""
        payload = {
            "name": self.name,
            "adjacency": {peer: list(nbrs) for peer, nbrs in sorted(self.adjacency.items())},
            "latency_scale": {
                f"{a}|{b}": scale for (a, b), scale in sorted(self.latency_scale.items())
            },
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()


def _finalize(
    name: str,
    peer_ids: Sequence[str],
    edges: Iterable[Tuple[str, str]],
    latency_scale: Optional[Dict[Tuple[str, str], float]] = None,
) -> Topology:
    """Build a Topology from an edge set: symmetrize, sort, connect components.

    Connectivity repair is deterministic: components are ordered by their
    lexicographically smallest member and chained through those members, so
    a sparse draw can never silently strand a peer.
    """
    neighbors: Dict[str, set] = {peer_id: set() for peer_id in peer_ids}
    for a, b in edges:
        if a == b:
            continue
        neighbors[a].add(b)
        neighbors[b].add(a)

    # Union-find-free component walk (graphs here are small enough for BFS).
    unvisited = set(peer_ids)
    components: List[List[str]] = []
    for peer_id in peer_ids:
        if peer_id not in unvisited:
            continue
        component = []
        frontier = [peer_id]
        unvisited.discard(peer_id)
        while frontier:
            node = frontier.pop()
            component.append(node)
            for neighbor in neighbors[node]:
                if neighbor in unvisited:
                    unvisited.discard(neighbor)
                    frontier.append(neighbor)
        components.append(component)
    if len(components) > 1:
        anchors = sorted(min(component) for component in components)
        for first, second in zip(anchors, anchors[1:]):
            neighbors[first].add(second)
            neighbors[second].add(first)

    adjacency = {peer_id: tuple(sorted(neighbors[peer_id])) for peer_id in sorted(peer_ids)}
    return Topology(name=name, adjacency=adjacency, latency_scale=dict(latency_scale or {}))


class TopologyBuilder:
    """Base class: parameterised at construction, built per peer list."""

    name: str = ""

    def build(self, peer_ids: Sequence[str], rng: random.Random) -> Topology:
        raise NotImplementedError

    @classmethod
    def param_defaults(cls) -> Dict[str, Any]:
        """The builder's constructor parameters and defaults (for listings)."""
        signature = inspect.signature(cls.__init__)
        return {
            parameter.name: parameter.default
            for parameter in signature.parameters.values()
            if parameter.name != "self" and parameter.default is not inspect.Parameter.empty
        }

    @classmethod
    def summary(cls) -> str:
        doc = (cls.__doc__ or cls.name).strip().splitlines()[0]
        defaults = cls.param_defaults()
        if defaults:
            rendered = ", ".join(f"{key}={value!r}" for key, value in sorted(defaults.items()))
            return f"{doc} (params: {rendered})"
        return doc


TOPOLOGY_REGISTRY: Registry[type] = Registry("topology")
"""Registered :class:`TopologyBuilder` subclasses, keyed by ``name``."""


def register_topology(cls: type) -> type:
    """Class decorator: register a TopologyBuilder under its ``name``."""
    return TOPOLOGY_REGISTRY.register()(cls)


def topology_names() -> List[str]:
    return TOPOLOGY_REGISTRY.names()


def resolve_topology(name: str) -> type:
    """Look up a builder class; unknown names raise ``ValueError`` with the
    known-names list (the CLI- and spec-facing error contract)."""
    try:
        return TOPOLOGY_REGISTRY.get(name)
    except RegistryError:
        raise ValueError(
            f"unknown topology {name!r}; known topologies: {topology_names()}"
        ) from None


@register_topology
class FullMeshTopology(TopologyBuilder):
    """Every peer adjacent to every other — the legacy (and default) shape."""

    name = "full_mesh"

    def build(self, peer_ids: Sequence[str], rng: random.Random) -> Topology:
        edges = [
            (peer_ids[i], peer_ids[j])
            for i in range(len(peer_ids))
            for j in range(i + 1, len(peer_ids))
        ]
        return _finalize(self.name, peer_ids, edges)


@register_topology
class RandomKTopology(TopologyBuilder):
    """Approximately k-regular random graph on a connectivity ring."""

    name = "random_k"

    def __init__(self, k: int = 8) -> None:
        if k < 2:
            raise ValueError("random_k requires k >= 2 (the ring alone uses degree 2)")
        self.k = k

    def build(self, peer_ids: Sequence[str], rng: random.Random) -> Topology:
        n = len(peer_ids)
        k = min(self.k, max(n - 1, 0))
        edges = set()
        degree = {peer_id: 0 for peer_id in peer_ids}

        def add_edge(a: str, b: str) -> None:
            key = edge_key(a, b)
            if key in edges:
                return
            edges.add(key)
            degree[a] += 1
            degree[b] += 1

        # A ring guarantees connectivity before any random draw lands.
        if n > 1:
            for i in range(n):
                add_edge(peer_ids[i], peer_ids[(i + 1) % n])
        # Random fill toward degree k; bounded attempts keep the builder
        # deterministic-and-terminating even on tiny or saturated graphs.
        target_edges = (n * k) // 2
        attempts = 0
        while len(edges) < target_edges and attempts < 50 * max(target_edges, 1):
            attempts += 1
            a = peer_ids[rng.randrange(n)]
            b = peer_ids[rng.randrange(n)]
            if a == b or degree[a] >= k or degree[b] >= k:
                continue
            add_edge(a, b)
        return _finalize(self.name, peer_ids, edges)


@register_topology
class RegionHubTopology(TopologyBuilder):
    """Fast intra-region meshes joined by slow inter-region hub links."""

    name = "region_hub"

    def __init__(self, regions: int = 4, slow_factor: float = 4.0) -> None:
        if regions < 1:
            raise ValueError("region_hub requires at least one region")
        if slow_factor < 1.0:
            raise ValueError("slow_factor scales hub latency up; must be >= 1.0")
        self.regions = regions
        self.slow_factor = slow_factor

    def assign_regions(self, peer_ids: Sequence[str]) -> List[List[str]]:
        """Round-robin assignment, which spreads miners across regions."""
        regions: List[List[str]] = [[] for _ in range(self.regions)]
        for index, peer_id in enumerate(peer_ids):
            regions[index % self.regions].append(peer_id)
        return [region for region in regions if region]

    def build(self, peer_ids: Sequence[str], rng: random.Random) -> Topology:
        regions = self.assign_regions(peer_ids)
        edges = []
        latency_scale: Dict[Tuple[str, str], float] = {}
        hubs = [region[0] for region in regions]
        for region in regions:
            for i in range(len(region)):
                for j in range(i + 1, len(region)):
                    edges.append((region[i], region[j]))
        for i in range(len(hubs)):
            for j in range(i + 1, len(hubs)):
                edges.append((hubs[i], hubs[j]))
                latency_scale[edge_key(hubs[i], hubs[j])] = self.slow_factor
        return _finalize(self.name, peer_ids, edges, latency_scale)


@register_topology
class KademliaTopology(TopologyBuilder):
    """XOR-metric bucket neighbours over hashed 64-bit node ids."""

    name = "kademlia"

    ID_BITS = 64

    def __init__(self, bucket_size: int = 3) -> None:
        if bucket_size < 1:
            raise ValueError("kademlia bucket_size must be >= 1")
        self.bucket_size = bucket_size

    @classmethod
    def node_id(cls, peer_id: str) -> int:
        digest = hashlib.sha256(peer_id.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def build(self, peer_ids: Sequence[str], rng: random.Random) -> Topology:
        node_ids = {peer_id: self.node_id(peer_id) for peer_id in peer_ids}
        edges = set()
        for peer_id in peer_ids:
            own = node_ids[peer_id]
            buckets: Dict[int, List[Tuple[int, str]]] = {}
            for other in peer_ids:
                if other == peer_id:
                    continue
                distance = own ^ node_ids[other]
                bucket = distance.bit_length() - 1
                buckets.setdefault(bucket, []).append((distance, other))
            for bucket_members in buckets.values():
                bucket_members.sort()
                for _distance, other in bucket_members[: self.bucket_size]:
                    edges.add(edge_key(peer_id, other))
        return _finalize(self.name, peer_ids, edges)


# -- bandwidth ---------------------------------------------------------------------


class BandwidthModel:
    """Per-link serialisation delay; FIFO queue state lives in the Network.

    A message of ``size`` bytes occupies its directed link for
    ``size / bytes_per_second`` seconds; the network serialises messages on
    the same link (departure = max(now, link_free_at)), so a burst of blocks
    down one pipe queues rather than teleports.  ``per_link`` overrides the
    rate on specific directed links.
    """

    DEFAULT_BYTES_PER_SECOND = 1_250_000.0  # 10 Mbit/s

    def __init__(
        self,
        bytes_per_second: float = DEFAULT_BYTES_PER_SECOND,
        per_link: Sequence[Tuple[str, str, float]] = (),
    ) -> None:
        if bytes_per_second <= 0:
            raise ValueError("bytes_per_second must be positive")
        self.bytes_per_second = float(bytes_per_second)
        self.per_link: Dict[Tuple[str, str], float] = {}
        for source, destination, rate in per_link:
            if rate <= 0:
                raise ValueError("per-link rates must be positive")
            self.per_link[(source, destination)] = float(rate)

    def rate(self, source: str, destination: str) -> float:
        return self.per_link.get((source, destination), self.bytes_per_second)

    def serialisation_delay(self, source: str, destination: str, size: int) -> float:
        return size / self.rate(source, destination)


# -- churn -------------------------------------------------------------------------


CHURN_KINDS = ("leave", "join", "partition", "heal")


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled membership/partition change."""

    kind: str
    time: float
    peer_id: Optional[str] = None
    groups: Tuple[Tuple[str, ...], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in CHURN_KINDS:
            raise ValueError(f"unknown churn event kind {self.kind!r}; expected one of {CHURN_KINDS}")
        if self.time < 0:
            raise ValueError("churn events cannot be scheduled before t=0")
        if self.kind in ("leave", "join") and not self.peer_id:
            raise ValueError(f"{self.kind!r} churn events need a peer_id")
        if self.kind == "partition" and not self.groups:
            raise ValueError("partition events need at least one peer group")


class ChurnPlan:
    """A frozen, time-sorted schedule of churn events."""

    def __init__(self, events: Sequence[ChurnEvent]) -> None:
        self.events: Tuple[ChurnEvent, ...] = tuple(
            sorted(events, key=lambda event: (event.time, CHURN_KINDS.index(event.kind)))
        )

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def from_events(cls, events: Sequence[Tuple[Any, ...]]) -> "ChurnPlan":
        """Build from frozen spec tuples: ``("leave", t, peer)``,
        ``("join", t, peer)``, ``("partition", t, (group, ...))``, ``("heal", t)``."""
        parsed = []
        for entry in events:
            if not entry:
                raise ValueError("empty churn event")
            kind = entry[0]
            if kind in ("leave", "join"):
                _, time, peer_id = entry
                parsed.append(ChurnEvent(kind=kind, time=float(time), peer_id=peer_id))
            elif kind == "partition":
                _, time, groups = entry
                parsed.append(
                    ChurnEvent(
                        kind=kind,
                        time=float(time),
                        groups=tuple(tuple(group) for group in groups),
                    )
                )
            elif kind == "heal":
                _, time = entry
                parsed.append(ChurnEvent(kind=kind, time=float(time)))
            else:
                raise ValueError(
                    f"unknown churn event kind {kind!r}; expected one of {CHURN_KINDS}"
                )
        return cls(parsed)


# -- spec canonicalizers -----------------------------------------------------------


def freeze_topology(topology: Any) -> Optional[Tuple[str, Tuple[Tuple[str, Any], ...]]]:
    """Canonicalize a topology request into ``(name, frozen-params)``.

    Accepts ``None``, a bare name string, ``(name, params-dict)``, or an
    already-frozen entry; the name is validated against the registry so an
    unknown topology string fails at spec-construction time with the
    known-names list.
    """
    if topology is None:
        return None
    if isinstance(topology, str):
        name, params = topology, ()
    else:
        name, params = topology
    if isinstance(params, dict):
        params = tuple(sorted(params.items()))
    resolve_topology(name)  # ValueError on unknown names
    return (name, tuple(params))


def freeze_bandwidth(bandwidth: Any) -> Optional[Tuple[Tuple[str, Any], ...]]:
    """Canonicalize a bandwidth request into a frozen params tuple."""
    if bandwidth is None:
        return None
    if isinstance(bandwidth, (int, float)):
        bandwidth = {"bytes_per_second": float(bandwidth)}
    if isinstance(bandwidth, dict):
        frozen = []
        for key in sorted(bandwidth):
            value = bandwidth[key]
            if key == "per_link":
                value = tuple(tuple(link) for link in value)
            frozen.append((key, value))
        return tuple(frozen)
    return tuple(tuple(item) for item in bandwidth)


def freeze_churn(churn: Any) -> Tuple[Tuple[Any, ...], ...]:
    """Canonicalize churn events into nested frozen tuples (and validate)."""
    if not churn:
        return ()
    frozen = []
    for entry in churn:
        entry = tuple(entry)
        if entry and entry[0] == "partition":
            kind, time, groups = entry
            entry = (kind, time, tuple(tuple(group) for group in groups))
        frozen.append(entry)
    ChurnPlan.from_events(frozen)  # ValueError on malformed events
    return tuple(frozen)
