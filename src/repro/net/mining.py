"""The block production process: who mines the next block and when.

Proof-of-work is modelled as a race whose winner is drawn with probability
proportional to hash power and whose interval follows the configured block
interval model.  The winning miner assembles a block from *its own* pool
(with its own ordering policy — this is where semantic mining plugs in) and
broadcasts it; every peer validates by replay before importing.

Forks are not modelled: exactly one winner is drawn per interval, which is
equivalent to a network whose block propagation is fast relative to the
block interval (true of the paper's private testbed).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, MutableSequence, Optional, Sequence, Tuple

from ..chain.block import Block
from ..consensus.interval import BlockIntervalModel, PoissonInterval
from ..consensus.miner import Miner, MinerConfig
from ..consensus.policies import FeeArrivalPolicy, OrderingPolicy
from ..crypto.addresses import Address, address_from_label
from ..obs import runtime as _obs
from .network import Network
from .peer import Peer
from .sim import Simulator

__all__ = ["MinerHandle", "BlockProductionProcess"]


@dataclass
class MinerHandle:
    """One mining peer participating in block production."""

    peer: Peer
    miner: Miner
    hash_power: float = 1.0

    @property
    def policy_name(self) -> str:
        return self.miner.policy.name


class BlockProductionProcess:
    """Drives block production on the shared simulator."""

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        interval_model: Optional[BlockIntervalModel] = None,
        seed: int = 0,
        history_limit: Optional[int] = None,
    ) -> None:
        if history_limit is not None and history_limit < 1:
            raise ValueError("history_limit must be at least 1 block")
        self.simulator = simulator
        self.network = network
        self.interval_model = interval_model or PoissonInterval(seed=seed)
        self._rng = random.Random(seed)
        self._miners: List[MinerHandle] = []
        self._running = False
        self.blocks_produced = 0
        # The log pins every produced block (and, through the wire memo, its
        # encoding), so bounded-memory runs window it to the newest
        # ``history_limit`` entries; the default keeps the full run.
        self.block_log: MutableSequence[Tuple[float, str, Block]] = (
            deque(maxlen=history_limit) if history_limit is not None else []
        )
        self.on_block: Optional[Callable[[Block, MinerHandle], None]] = None

    # -- configuration -----------------------------------------------------------------

    def register_miner(
        self,
        peer: Peer,
        policy: Optional[OrderingPolicy] = None,
        miner_address: Optional[Address] = None,
        hash_power: float = 1.0,
        config: Optional[MinerConfig] = None,
    ) -> MinerHandle:
        """Make ``peer`` a miner with the given ordering policy and hash power."""
        if hash_power <= 0:
            raise ValueError("hash power must be positive")
        address = miner_address or address_from_label(f"miner/{peer.peer_id}")
        miner = Miner(
            address=address,
            chain=peer.chain,
            pool=peer.pool,
            policy=policy or FeeArrivalPolicy(),
            config=config,
        )
        handle = MinerHandle(peer=peer, miner=miner, hash_power=hash_power)
        self._miners.append(handle)
        return handle

    def miners(self) -> List[MinerHandle]:
        return list(self._miners)

    # -- production loop -----------------------------------------------------------------

    def start(self) -> None:
        """Begin producing blocks; the first arrives one interval from now."""
        if not self._miners:
            raise ValueError("no miners registered")
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        if not self._running:
            return
        delay = self.interval_model.next_interval()
        self.simulator.schedule_in(delay, self._produce)

    def _pick_winner(self) -> MinerHandle:
        weights = [handle.hash_power for handle in self._miners]
        return self._rng.choices(self._miners, weights=weights, k=1)[0]

    def _produce(self) -> None:
        if not self._running:
            return
        winner = self._pick_winner()
        timestamp = self.simulator.now
        block, _ = winner.miner.produce_block(timestamp=timestamp, nonce=self.blocks_produced)
        self.blocks_produced += 1
        tracer = _obs.TRACER
        if tracer is not None:
            tracer.event(
                "block.build",
                peer=winner.peer.peer_id,
                block=block.hash,
                number=block.number,
                txs=len(block.transactions),
                policy=winner.policy_name,
            )
            for position, transaction in enumerate(block.transactions):
                tracer.event(
                    "tx.include",
                    peer=winner.peer.peer_id,
                    tx=transaction.hash,
                    block=block.hash,
                    number=block.number,
                    position=position,
                )
        self.block_log.append((timestamp, winner.peer.peer_id, block))
        self.network.broadcast_block(winner.peer, block)
        if self.on_block is not None:
            self.on_block(block, winner)
        self._schedule_next()
