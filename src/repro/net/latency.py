"""Latency models for gossip delivery between peers.

The Sereth view quality "is subject to network synchronization" (Section
II-C): if TxPool gossip is slow or impaired, a peer's HMS view lags the true
concurrent history and more transactions fail.  The ablation A2 sweeps these
models.
"""

from __future__ import annotations

import random
from typing import Optional, Protocol

def _seeded_rng(seed: Optional[int]) -> random.Random:
    """An RNG for one model instance.

    ``seed=None`` draws fresh OS entropy, so two models built without an
    explicit seed never share a stream.  (The old default of ``seed=0`` made
    every unseeded instance replay the *same* sequence — a silent correlation
    between supposedly independent links.)  Reproducible runs must thread a
    spec-derived seed, as :class:`repro.api.engine.SimulationHandle` does via
    :class:`~repro.api.seeding.SeedPlan`.
    """
    return random.Random(seed)

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "NormalLatency",
    "ImpairedLatency",
]


class LatencyModel(Protocol):
    """Samples a one-way delivery delay between two peers."""

    def sample(self, source_id: str, destination_id: str) -> float:
        ...


class ConstantLatency:
    """Every delivery takes exactly ``delay`` seconds."""

    def __init__(self, delay: float = 0.05) -> None:
        if delay < 0:
            raise ValueError("latency cannot be negative")
        self.delay = delay

    def sample(self, source_id: str, destination_id: str) -> float:
        return self.delay


class UniformLatency:
    """Deliveries take a uniform random time in [low, high] seconds."""

    def __init__(
        self, low: float = 0.02, high: float = 0.2, seed: Optional[int] = None
    ) -> None:
        if low < 0 or high < low:
            raise ValueError("require 0 <= low <= high")
        self.low = low
        self.high = high
        self._rng = _seeded_rng(seed)

    def sample(self, source_id: str, destination_id: str) -> float:
        return self._rng.uniform(self.low, self.high)


class NormalLatency:
    """Gaussian latency with a floor, modelling a typical WAN distribution."""

    def __init__(
        self,
        mean: float = 0.1,
        stddev: float = 0.03,
        minimum: float = 0.005,
        seed: Optional[int] = None,
    ) -> None:
        if mean < 0 or stddev < 0 or minimum < 0:
            raise ValueError("latency parameters cannot be negative")
        self.mean = mean
        self.stddev = stddev
        self.minimum = minimum
        self._rng = _seeded_rng(seed)

    def sample(self, source_id: str, destination_id: str) -> float:
        return max(self.minimum, self._rng.gauss(self.mean, self.stddev))


class ImpairedLatency:
    """Wraps another model, adding a fixed impairment on selected links.

    Used by the gossip-impairment ablation: traffic to/from the listed peer
    ids suffers ``extra_delay`` additional seconds, modelling a Sereth peer
    whose view of the TxPool is systematically behind.
    """

    def __init__(self, base: LatencyModel, impaired_peers: set, extra_delay: float) -> None:
        if extra_delay < 0:
            raise ValueError("extra delay cannot be negative")
        self.base = base
        self.impaired_peers = set(impaired_peers)
        self.extra_delay = extra_delay

    def sample(self, source_id: str, destination_id: str) -> float:
        delay = self.base.sample(source_id, destination_id)
        if source_id in self.impaired_peers or destination_id in self.impaired_peers:
            delay += self.extra_delay
        return delay
