"""Discrete-event network simulation: simulator, latency, peers, gossip, mining."""

from .latency import (
    ConstantLatency,
    ImpairedLatency,
    LatencyModel,
    NormalLatency,
    UniformLatency,
)
from .mining import BlockProductionProcess, MinerHandle
from .network import Network, NetworkStats
from .peer import GETH_CLIENT, Peer, PeerStats, SERETH_CLIENT
from .sim import ScheduledEvent, Simulator

__all__ = [
    "ConstantLatency",
    "ImpairedLatency",
    "LatencyModel",
    "NormalLatency",
    "UniformLatency",
    "BlockProductionProcess",
    "MinerHandle",
    "Network",
    "NetworkStats",
    "GETH_CLIENT",
    "SERETH_CLIENT",
    "Peer",
    "PeerStats",
    "ScheduledEvent",
    "Simulator",
]
