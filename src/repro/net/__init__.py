"""Discrete-event network simulation: simulator, latency, topology, peers,
gossip, bandwidth, churn, and mining."""

from .latency import (
    ConstantLatency,
    ImpairedLatency,
    LatencyModel,
    NormalLatency,
    UniformLatency,
)
from .mining import BlockProductionProcess, MinerHandle
from .network import Network, NetworkStats
from .peer import (
    GETH_CLIENT,
    IMPORT_DUPLICATE,
    IMPORT_IMPORTED,
    IMPORT_ORPHANED,
    IMPORT_REJECTED,
    Peer,
    PeerStats,
    SERETH_CLIENT,
)
from .sim import ScheduledEvent, Simulator
from .topology import (
    BandwidthModel,
    ChurnPlan,
    TOPOLOGY_REGISTRY,
    Topology,
    TopologyBuilder,
    register_topology,
    resolve_topology,
    topology_names,
)

__all__ = [
    "ConstantLatency",
    "ImpairedLatency",
    "LatencyModel",
    "NormalLatency",
    "UniformLatency",
    "BlockProductionProcess",
    "MinerHandle",
    "Network",
    "NetworkStats",
    "GETH_CLIENT",
    "SERETH_CLIENT",
    "IMPORT_DUPLICATE",
    "IMPORT_IMPORTED",
    "IMPORT_ORPHANED",
    "IMPORT_REJECTED",
    "Peer",
    "PeerStats",
    "ScheduledEvent",
    "Simulator",
    "BandwidthModel",
    "ChurnPlan",
    "TOPOLOGY_REGISTRY",
    "Topology",
    "TopologyBuilder",
    "register_topology",
    "resolve_topology",
    "topology_names",
]
