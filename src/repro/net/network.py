"""The gossip network connecting peers.

Transactions and blocks are broadcast to every other peer with a sampled
one-way latency.  Message loss can be injected per message type to model the
paper's observation that "transactions sent may be lost due to network
failures, memory limitations or peers not replaying them".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..chain.block import Block
from ..chain.transaction import Transaction
from ..chain.wire import wire_encoding
from .latency import ConstantLatency, LatencyModel
from .peer import Peer
from .sim import Simulator

__all__ = ["NetworkStats", "Network"]


@dataclass
class NetworkStats:
    """Counters about gossip traffic.

    Byte counters measure what a real devp2p network would have shipped:
    the wire encoding is computed once per artefact (see
    :func:`repro.chain.wire.wire_encoding`) and counted once per scheduled
    delivery hop — the origin's own immediate block import is not a hop.
    """

    transactions_broadcast: int = 0
    transaction_deliveries: int = 0
    transactions_dropped: int = 0
    blocks_broadcast: int = 0
    block_deliveries: int = 0
    blocks_dropped: int = 0
    transaction_bytes: int = 0
    block_bytes: int = 0


class Network:
    """A fully connected gossip network over a shared simulator."""

    def __init__(
        self,
        simulator: Simulator,
        latency: Optional[LatencyModel] = None,
        block_latency: Optional[LatencyModel] = None,
        transaction_loss_rate: float = 0.0,
        block_loss_rate: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 <= transaction_loss_rate < 1.0 or not 0.0 <= block_loss_rate < 1.0:
            raise ValueError("loss rates must be in [0, 1)")
        self.simulator = simulator
        self.latency = latency or ConstantLatency(0.05)
        self.block_latency = block_latency or self.latency
        self.transaction_loss_rate = transaction_loss_rate
        self.block_loss_rate = block_loss_rate
        self.stats = NetworkStats()
        self._peers: Dict[str, Peer] = {}
        # seed=None draws fresh OS entropy; reproducible runs thread a
        # spec-derived seed (SeedPlan.network) through here.
        self._rng = random.Random(seed)

    # -- membership -----------------------------------------------------------------

    def add_peer(self, peer: Peer) -> Peer:
        if peer.peer_id in self._peers:
            raise ValueError(f"duplicate peer id {peer.peer_id!r}")
        self._peers[peer.peer_id] = peer
        peer.network = self
        return peer

    def peers(self) -> List[Peer]:
        return list(self._peers.values())

    def peer(self, peer_id: str) -> Peer:
        return self._peers[peer_id]

    def __len__(self) -> int:
        return len(self._peers)

    # -- gossip -----------------------------------------------------------------------

    def broadcast_transaction(self, origin: Peer, transaction: Transaction) -> None:
        """Deliver ``transaction`` to every other peer after a sampled latency.

        Zero-copy: every neighbour receives the *same* frozen transaction
        object (peers must never mutate gossiped artefacts); the wire bytes
        are memoised per object and only their size is accounted per hop.
        """
        self.stats.transactions_broadcast += 1
        wire_size = len(wire_encoding(transaction))
        for peer in self._peers.values():
            if peer is origin:
                continue
            if self.transaction_loss_rate and self._rng.random() < self.transaction_loss_rate:
                self.stats.transactions_dropped += 1
                continue
            delay = self.latency.sample(origin.peer_id, peer.peer_id)
            self.stats.transaction_bytes += wire_size
            self._schedule_transaction_delivery(peer, transaction, delay)

    def _schedule_transaction_delivery(
        self, peer: Peer, transaction: Transaction, delay: float
    ) -> None:
        def deliver() -> None:
            self.stats.transaction_deliveries += 1
            peer.receive_transaction(transaction, self.simulator.now)

        self.simulator.schedule_in(delay, deliver)

    def broadcast_block(self, origin: Optional[Peer], block: Block) -> None:
        """Deliver ``block`` to every peer (including the origin, immediately).

        Zero-copy, like :meth:`broadcast_transaction`: one frozen block
        object for every neighbour, one memoised wire encoding per block.
        """
        self.stats.blocks_broadcast += 1
        wire_size = len(wire_encoding(block))
        for peer in self._peers.values():
            if origin is not None and peer is origin:
                # The miner imports its own block with no network delay.
                peer.receive_block(block)
                continue
            if self.block_loss_rate and self._rng.random() < self.block_loss_rate:
                self.stats.blocks_dropped += 1
                continue
            delay = self.block_latency.sample(
                origin.peer_id if origin is not None else "network", peer.peer_id
            )
            self.stats.block_bytes += wire_size
            self._schedule_block_delivery(peer, block, delay)

    def _schedule_block_delivery(self, peer: Peer, block: Block, delay: float) -> None:
        def deliver() -> None:
            self.stats.block_deliveries += 1
            peer.receive_block(block)

        self.simulator.schedule_in(delay, deliver)
