"""The gossip network connecting peers.

Two wire modes share this class:

* **Direct broadcast** (the default, and the only mode before the topology
  subsystem existed): every transaction and block goes straight from the
  origin to every other peer with a sampled one-way latency.  This is the
  behaviour the committed golden checksums cover, so its code path — RNG
  draw order included — is preserved exactly.
* **Topology flood** (when :meth:`install_topology` has wired an adjacency):
  messages travel edge by edge, store-and-forward.  A peer forwards an
  artefact to its neighbours (except the one it came from) on *first*
  receipt only — deliveries are deduplicated by object hash — so a flood
  terminates after each node has relayed once.

Message loss can be injected per message type to model the paper's
observation that "transactions sent may be lost due to network failures,
memory limitations or peers not replaying them".  On top of latency, an
optional :class:`~repro.net.topology.BandwidthModel` adds FIFO serialisation
delay per directed link (a burst of blocks down one pipe queues rather than
teleports), and churn state (offline peers, partitions) gates sends at the
moment they are scheduled — in-flight messages still deliver unless the
receiver itself has gone offline.

A :class:`repro.faults.FaultInjector` armed via :meth:`Network.install_faults`
additionally gets one decision per delivery hop (drop / duplicate / extra
delay / corrupt-then-reject) plus the :meth:`crash_peer` / :meth:`restart_peer`
callbacks; its decisions draw from their own spec-derived streams, never from
this module's RNG, so the clean path's draw order — and the golden checksums —
are untouched.  Fault drops land in the existing ``*_dropped`` counters (they
are message loss) and are additionally attributed by kind in the injector's
own counters.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set, Tuple, Union

from ..chain.block import Block
from ..chain.transaction import Transaction
from ..chain.wire import wire_encoding
from ..core.percentiles import percentile
from ..obs import runtime as _obs
from .latency import ConstantLatency, LatencyModel
from .peer import IMPORT_DUPLICATE, IMPORT_IMPORTED, IMPORT_ORPHANED, Peer
from .sim import Simulator
from .topology import BandwidthModel, ChurnPlan, Topology, edge_key

__all__ = ["NetworkStats", "Network"]

# Nominal one-hop latency for post-fault anti-entropy offers.  Fixed rather
# than sampled so the heal round consumes no RNG state: a faulted run's event
# schedule stays a pure function of its seed plan.
_HEAL_OFFER_DELAY = 0.05


@dataclass
class NetworkStats:
    """Counters about gossip traffic.

    Byte counters measure what a real devp2p network would have shipped:
    the wire encoding is computed once per artefact (see
    :func:`repro.chain.wire.wire_encoding`) and counted once per scheduled
    delivery hop — the origin's own immediate block import is not a hop.
    ``*_dropped`` counts stochastic loss-model drops; ``*_dropped_link``
    counts churn casualties (offline peers, severed partitions).
    """

    transactions_broadcast: int = 0
    transaction_deliveries: int = 0
    transactions_dropped: int = 0
    transactions_dropped_link: int = 0
    blocks_broadcast: int = 0
    block_deliveries: int = 0
    blocks_dropped: int = 0
    blocks_dropped_link: int = 0
    block_duplicates: int = 0
    blocks_orphaned: int = 0
    sync_requests: int = 0
    sync_blocks: int = 0
    sync_pruned_misses: int = 0
    transaction_bytes: int = 0
    block_bytes: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain JSON-ready dict with sorted keys (the
        shape the ``network`` observability probe reports)."""
        return {
            "block_bytes": self.block_bytes,
            "block_deliveries": self.block_deliveries,
            "block_duplicates": self.block_duplicates,
            "blocks_broadcast": self.blocks_broadcast,
            "blocks_dropped": self.blocks_dropped,
            "blocks_dropped_link": self.blocks_dropped_link,
            "blocks_orphaned": self.blocks_orphaned,
            "sync_blocks": self.sync_blocks,
            "sync_pruned_misses": self.sync_pruned_misses,
            "sync_requests": self.sync_requests,
            "transaction_bytes": self.transaction_bytes,
            "transaction_deliveries": self.transaction_deliveries,
            "transactions_broadcast": self.transactions_broadcast,
            "transactions_dropped": self.transactions_dropped,
            "transactions_dropped_link": self.transactions_dropped_link,
        }


class Network:
    """A gossip network over a shared simulator (full mesh unless a
    topology is installed)."""

    def __init__(
        self,
        simulator: Simulator,
        latency: Optional[LatencyModel] = None,
        block_latency: Optional[LatencyModel] = None,
        transaction_loss_rate: float = 0.0,
        block_loss_rate: float = 0.0,
        seed: Optional[int] = None,
        bandwidth: Optional[BandwidthModel] = None,
        history_limit: Optional[int] = None,
    ) -> None:
        if not 0.0 <= transaction_loss_rate < 1.0 or not 0.0 <= block_loss_rate < 1.0:
            raise ValueError("loss rates must be in [0, 1)")
        if history_limit is not None and history_limit < 1:
            raise ValueError("history_limit must be at least 1 block")
        self.simulator = simulator
        self.latency = latency or ConstantLatency(0.05)
        self.block_latency = block_latency or self.latency
        self.transaction_loss_rate = transaction_loss_rate
        self.block_loss_rate = block_loss_rate
        self.bandwidth = bandwidth
        self.history_limit = history_limit
        """Bound per-block bookkeeping (flood dedup sets, block birth times,
        propagation samples) to roughly this many recent blocks.  ``None``
        (the default) keeps everything for the whole run — the exact
        behaviour the golden-gated summaries were recorded against; the
        engine sets it to ``spec.retention`` so a retained run's network
        bookkeeping is windowed like its chains."""
        self.stats = NetworkStats()
        self._peers: Dict[str, Peer] = {}
        # seed=None draws fresh OS entropy; reproducible runs thread a
        # spec-derived seed (SeedPlan.network) through here.
        self._rng = random.Random(seed)

        # Topology flood state (inert until install_topology is called).
        self.topology: Optional[Topology] = None
        self._adjacency: Optional[Dict[str, Tuple[str, ...]]] = None
        self._latency_scale: Dict[Tuple[str, str], float] = {}
        self._seen_blocks: Dict[str, Set[bytes]] = {}
        self._seen_order: Dict[str, Deque[bytes]] = {}
        """Per-peer insertion order of ``_seen_blocks`` entries, maintained
        only under ``history_limit`` so the dedup sets can evict oldest-first."""
        # Churn state (inert until a churn call flips _churn_active).
        self._churn_active = False
        self._offline: Set[str] = set()
        self._partition_of: Optional[Dict[str, int]] = None
        self.churn_log: List[Tuple[float, str, Any]] = []
        # FIFO bandwidth queues: directed link -> time the pipe frees up.
        self._link_free_at: Dict[Tuple[str, str], float] = {}
        # Propagation measurement + ancestor-sync bookkeeping.
        self._block_born: Dict[bytes, float] = {}
        # Under a history limit the samples become a trailing window (a
        # steady-state network's delay distribution is stationary, so the
        # window is as representative as the full-run list it replaces).
        self._propagation_samples: Union[List[float], Deque[float]] = (
            deque(maxlen=32 * history_limit) if history_limit is not None else []
        )
        self._sync_inflight: Dict[str, float] = {}
        # Fault injection (inert until install_faults is called): with no
        # injector armed, every send seam takes a single dead branch — the
        # golden-gated zero-cost path, exactly like the tracer hook.
        self._faults = None

    # -- membership -----------------------------------------------------------------

    def add_peer(self, peer: Peer) -> Peer:
        if peer.peer_id in self._peers:
            raise ValueError(f"duplicate peer id {peer.peer_id!r}")
        self._peers[peer.peer_id] = peer
        peer.network = self
        return peer

    def peers(self) -> List[Peer]:
        return list(self._peers.values())

    def peer(self, peer_id: str) -> Peer:
        return self._peers[peer_id]

    def __len__(self) -> int:
        return len(self._peers)

    # -- topology -------------------------------------------------------------------

    def install_topology(self, topology: Topology) -> None:
        """Switch gossip from direct broadcast to flooding along ``topology``.

        The adjacency must cover every current peer — a peer outside the
        graph would silently never hear anything.
        """
        missing = [peer_id for peer_id in self._peers if peer_id not in topology.adjacency]
        if missing:
            raise ValueError(f"topology is missing peers: {missing}")
        self.topology = topology
        self._adjacency = {
            peer_id: topology.adjacency[peer_id] for peer_id in topology.adjacency
        }
        self._latency_scale = dict(topology.latency_scale)

    # -- churn ----------------------------------------------------------------------

    def set_offline(self, peer_id: str, offline: bool = True) -> None:
        """Take a peer off (or back onto) the network.  It keeps its local
        state — a rejoining peer catches up via ancestor sync when the next
        block orphans on it."""
        self._churn_active = True
        if offline:
            self._offline.add(peer_id)
        else:
            self._offline.discard(peer_id)

    def set_partition(self, groups) -> None:
        """Sever links between peer groups.  Peers not named in any group
        share one implicit extra group (so partitioning off a subset is
        just ``set_partition([subset])``)."""
        self._churn_active = True
        mapping: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for peer_id in group:
                mapping[peer_id] = index
        self._partition_of = mapping

    def heal_partition(self) -> None:
        self._partition_of = None

    def schedule_churn(self, plan: ChurnPlan) -> None:
        """Apply ``plan``'s events from the event loop at their times."""
        self._churn_active = True
        for event in plan.events:
            self.simulator.schedule_at(
                event.time, lambda event=event: self._apply_churn(event)
            )

    def _apply_churn(self, event) -> None:
        if event.kind == "leave":
            self.set_offline(event.peer_id, True)
            detail: Any = event.peer_id
        elif event.kind == "join":
            self.set_offline(event.peer_id, False)
            detail = event.peer_id
        elif event.kind == "partition":
            self.set_partition(event.groups)
            detail = event.groups
        else:  # heal
            self.heal_partition()
            detail = None
        self.churn_log.append((self.simulator.now, event.kind, detail))
        tracer = _obs.TRACER
        if tracer is not None:
            tracer.event("churn", kind=event.kind, detail=detail)

    # -- fault injection --------------------------------------------------------------

    def install_faults(self, injector) -> None:
        """Arm a :class:`repro.faults.FaultInjector` on the gossip seams.

        Message faults are consulted once per scheduled delivery hop (direct
        broadcast and topology flood alike); crash faults call back into
        :meth:`crash_peer` / :meth:`restart_peer` from the event loop.
        """
        self._faults = injector

    def crash_peer(self, peer_id: str) -> None:
        """Kill ``peer_id``: offline *and* total state loss, unlike churn's
        ``leave`` (which keeps local state).  The network's own per-peer
        bookkeeping dies with the process — dedup sets (a reborn peer has
        seen nothing) and sync throttles — so nothing remembers state across
        the death."""
        peer = self._peers[peer_id]
        self.set_offline(peer_id, True)
        self._seen_blocks.pop(peer_id, None)
        self._seen_order.pop(peer_id, None)
        self._sync_inflight.pop(peer_id, None)
        peer.restart()

    def restart_peer(self, peer_id: str) -> None:
        """Bring a crashed peer back online.  Its state was wiped at crash
        time; it reconverges from genesis-or-anchor via the ordinary path —
        the next gossiped block orphans on it and triggers a range sync."""
        self.set_offline(peer_id, False)

    def heal_partitions(self) -> int:
        """One anti-entropy push round: offer the best head to every lagging
        online peer through the ordinary delivery path.

        Gossip alone cannot heal a run whose *final* blocks were dropped or
        corrupted — nothing arrives afterwards to orphan on the laggard and
        trigger a range sync.  Real clients close that gap by pulling
        (periodic status exchange); this models one such round.  The pushed
        head orphans on each laggard, whose range sync then fills the gap
        from the best peer.  Deliveries use a fixed nominal delay — no RNG
        draw — and bypass the fault seams (the engine calls this only after
        fault windows close).  Returns the number of offers scheduled."""
        online = [
            peer
            for peer_id, peer in self._peers.items()
            if peer_id not in self._offline
        ]
        if not online:
            return 0
        best = max(
            online,
            key=lambda peer: (peer.chain.height, peer.chain.head.hash, peer.peer_id),
        )
        head = best.chain.head
        if head.number == 0:
            return 0
        wire_size = len(wire_encoding(head))
        offered = 0
        for peer in online:
            if peer.chain.head.hash == head.hash:
                continue
            # The laggard may have seen (and orphaned) this head already with
            # its one allowed sync request spent on a stale provider; clear
            # both so the re-offer reaches import and resyncs from ``best``.
            self._seen_blocks.get(peer.peer_id, set()).discard(head.hash)
            self._sync_inflight.pop(peer.peer_id, None)
            self.stats.block_bytes += wire_size
            self._schedule_block_delivery(
                best.peer_id, peer, head, wire_size, _HEAL_OFFER_DELAY, sync=True
            )
            offered += 1
        return offered

    def _link_up(self, source_id: Optional[str], destination_id: str) -> bool:
        if destination_id in self._offline:
            return False
        if source_id is None:
            return True
        if source_id in self._offline:
            return False
        if self._partition_of is not None:
            if self._partition_of.get(source_id, -1) != self._partition_of.get(
                destination_id, -1
            ):
                return False
        return True

    # -- link timing ----------------------------------------------------------------

    def _link_delay(
        self,
        source_id: str,
        destination_id: str,
        wire_size: int,
        latency_model: LatencyModel,
    ) -> float:
        """Sampled latency, scaled per edge, plus FIFO serialisation delay."""
        delay = latency_model.sample(source_id, destination_id)
        if self._latency_scale:
            scale = self._latency_scale.get(edge_key(source_id, destination_id))
            if scale is not None:
                delay *= scale
        if self.bandwidth is not None:
            now = self.simulator.now
            link = (source_id, destination_id)
            serialisation = self.bandwidth.serialisation_delay(
                source_id, destination_id, wire_size
            )
            departure = max(now, self._link_free_at.get(link, now))
            self._link_free_at[link] = departure + serialisation
            delay = (departure - now) + serialisation + delay
        return delay

    # -- transaction gossip -----------------------------------------------------------

    def broadcast_transaction(self, origin: Peer, transaction: Transaction) -> None:
        """Gossip ``transaction`` from ``origin``.

        Zero-copy: every receiver gets the *same* frozen transaction object
        (peers must never mutate gossiped artefacts); the wire bytes are
        memoised per object and only their size is accounted per hop.
        """
        self.stats.transactions_broadcast += 1
        if self._churn_active and origin.peer_id in self._offline:
            return
        wire_size = len(wire_encoding(transaction))
        if self._adjacency is not None:
            self._flood_transaction(origin.peer_id, None, transaction, wire_size)
            return
        for peer in self._peers.values():
            if peer is origin:
                continue
            if self._churn_active and not self._link_up(origin.peer_id, peer.peer_id):
                self.stats.transactions_dropped_link += 1
                continue
            if self.transaction_loss_rate and self._rng.random() < self.transaction_loss_rate:
                self.stats.transactions_dropped += 1
                continue
            self._send_transaction(origin.peer_id, peer, transaction, wire_size)

    def _flood_transaction(
        self, from_id: str, exclude_id: Optional[str], transaction: Transaction, wire_size: int
    ) -> None:
        for neighbor_id in self._adjacency.get(from_id, ()):
            if neighbor_id == exclude_id:
                continue
            peer = self._peers.get(neighbor_id)
            if peer is None:
                continue
            if self._churn_active and not self._link_up(from_id, neighbor_id):
                self.stats.transactions_dropped_link += 1
                continue
            if self.transaction_loss_rate and self._rng.random() < self.transaction_loss_rate:
                self.stats.transactions_dropped += 1
                continue
            self._send_transaction(from_id, peer, transaction, wire_size)

    def _send_transaction(
        self, sender_id: str, peer: Peer, transaction: Transaction, wire_size: int
    ) -> None:
        """One transaction hop: fault gate, link delay, byte accounting,
        scheduled delivery.  Fault decisions come from the injector's own
        seeded streams — never from ``self._rng`` — so the legacy loss and
        latency draw order is identical with faults on or off."""
        effect = None
        faults = self._faults
        if faults is not None:
            now = self.simulator.now
            # Inline window gate: outside every fault window the seam call is
            # provably a no-op (inactive faults never draw), so skip it.
            if faults.window_start <= now < faults.window_until:
                effect = faults.on_message("tx", sender_id, peer.peer_id, now)
        if effect is not None and effect.drop:
            self.stats.transactions_dropped += 1
            return
        delay = self._link_delay(sender_id, peer.peer_id, wire_size, self.latency)
        corrupt = False
        if effect is not None:
            delay += effect.extra_delay
            corrupt = effect.corrupt
        self.stats.transaction_bytes += wire_size
        self._schedule_transaction_delivery(
            sender_id, peer, transaction, wire_size, delay, corrupt=corrupt
        )
        if effect is not None and effect.duplicate_gap is not None:
            # The duplicated copy ships real bytes too, trailing the first.
            self.stats.transaction_bytes += wire_size
            self._schedule_transaction_delivery(
                sender_id,
                peer,
                transaction,
                wire_size,
                delay + effect.duplicate_gap,
                corrupt=corrupt,
            )

    def _schedule_transaction_delivery(
        self,
        sender_id: str,
        peer: Peer,
        transaction: Transaction,
        wire_size: int,
        delay: float,
        corrupt: bool = False,
    ) -> None:
        def deliver() -> None:
            if self._churn_active and peer.peer_id in self._offline:
                self.stats.transactions_dropped_link += 1
                return
            if corrupt:
                # Truncated in flight: the frame crossed the wire (bytes were
                # accounted at send) but fails to decode, so the receiver
                # discards it before pool admission — and never relays it.
                return
            self.stats.transaction_deliveries += 1
            accepted = peer.receive_transaction(transaction, self.simulator.now)
            tracer = _obs.TRACER
            if tracer is not None:
                tracer.event(
                    "gossip.tx",
                    peer=peer.peer_id,
                    sender=sender_id,
                    tx=transaction.hash,
                    accepted=accepted,
                )
            # Store-and-forward: relay on first admission only, never back
            # along the edge the transaction arrived on.
            if accepted and self._adjacency is not None:
                self._flood_transaction(peer.peer_id, sender_id, transaction, wire_size)

        self.simulator.schedule_in(delay, deliver)

    # -- block gossip -----------------------------------------------------------------

    def _record_block_born(self, block_hash: bytes) -> None:
        """Note when ``block_hash`` first hit the wire (propagation birth time).

        Under a history limit only the newest entries are kept — a delivery
        racing in behind the window simply contributes no propagation sample,
        exactly like a block that was already pruned from the chains.
        """
        self._block_born.setdefault(block_hash, self.simulator.now)
        if self.history_limit is not None:
            while len(self._block_born) > 4 * self.history_limit:
                self._block_born.pop(next(iter(self._block_born)))

    def _mark_seen(self, peer_id: str, block_hash: bytes) -> None:
        """Record ``peer_id`` having seen ``block_hash`` for flood dedup.

        Under a history limit each peer's dedup set is windowed to the newest
        ``history_limit`` hashes; an evicted hash redelivered much later is
        re-imported (and deduplicated by the chain itself) instead of pinning
        every hash for the whole run.
        """
        seen = self._seen_blocks.setdefault(peer_id, set())
        if block_hash in seen:
            return
        seen.add(block_hash)
        if self.history_limit is None:
            return
        order = self._seen_order.setdefault(peer_id, deque())
        order.append(block_hash)
        while len(order) > self.history_limit:
            seen.discard(order.popleft())

    def broadcast_block(self, origin: Optional[Peer], block: Block) -> None:
        """Gossip ``block`` from ``origin`` (which imports it immediately).

        Zero-copy, like :meth:`broadcast_transaction`: one frozen block
        object for every receiver, one memoised wire encoding per block.
        """
        self.stats.blocks_broadcast += 1
        self._record_block_born(block.hash)
        wire_size = len(wire_encoding(block))
        if self._adjacency is not None and origin is not None:
            # The miner imports its own block with no network delay.
            self._mark_seen(origin.peer_id, block.hash)
            origin.import_block(block)
            if not (self._churn_active and origin.peer_id in self._offline):
                self._flood_block(origin.peer_id, None, block, wire_size)
            return
        origin_id = origin.peer_id if origin is not None else None
        for peer in self._peers.values():
            if origin is not None and peer is origin:
                # The miner imports its own block with no network delay.
                peer.receive_block(block)
                continue
            if self._churn_active and not self._link_up(origin_id, peer.peer_id):
                self.stats.blocks_dropped_link += 1
                continue
            if self.block_loss_rate and self._rng.random() < self.block_loss_rate:
                self.stats.blocks_dropped += 1
                continue
            self._send_block(
                origin_id,
                origin_id if origin_id is not None else "network",
                peer,
                block,
                wire_size,
            )

    def _flood_block(
        self, from_id: str, exclude_id: Optional[str], block: Block, wire_size: int
    ) -> None:
        for neighbor_id in self._adjacency.get(from_id, ()):
            if neighbor_id == exclude_id:
                continue
            peer = self._peers.get(neighbor_id)
            if peer is None:
                continue
            if self._churn_active and not self._link_up(from_id, neighbor_id):
                self.stats.blocks_dropped_link += 1
                continue
            if self.block_loss_rate and self._rng.random() < self.block_loss_rate:
                self.stats.blocks_dropped += 1
                continue
            self._send_block(from_id, from_id, peer, block, wire_size)

    def _send_block(
        self,
        sender_id: Optional[str],
        delay_source: str,
        peer: Peer,
        block: Block,
        wire_size: int,
    ) -> None:
        """One block hop: fault gate, link delay, byte accounting, scheduled
        delivery.  ``delay_source`` differs from ``sender_id`` only on the
        legacy origin-less broadcast ("network").  Fault decisions never
        touch ``self._rng`` (see :meth:`_send_transaction`)."""
        effect = None
        faults = self._faults
        if faults is not None:
            now = self.simulator.now
            # Same inline window gate as the transaction seam.
            if faults.window_start <= now < faults.window_until:
                effect = faults.on_message("block", delay_source, peer.peer_id, now)
        if effect is not None and effect.drop:
            self.stats.blocks_dropped += 1
            return
        delay = self._link_delay(delay_source, peer.peer_id, wire_size, self.block_latency)
        corrupt = False
        if effect is not None:
            delay += effect.extra_delay
            corrupt = effect.corrupt
        self.stats.block_bytes += wire_size
        self._schedule_block_delivery(
            sender_id, peer, block, wire_size, delay, corrupt=corrupt
        )
        if effect is not None and effect.duplicate_gap is not None:
            self.stats.block_bytes += wire_size
            self._schedule_block_delivery(
                sender_id,
                peer,
                block,
                wire_size,
                delay + effect.duplicate_gap,
                corrupt=corrupt,
            )

    def _schedule_block_delivery(
        self,
        sender_id: Optional[str],
        peer: Peer,
        block: Block,
        wire_size: int,
        delay: float,
        sync: bool = False,
        corrupt: bool = False,
    ) -> None:
        def deliver() -> None:
            self._deliver_block(sender_id, peer, block, wire_size, sync=sync, corrupt=corrupt)

        self.simulator.schedule_in(delay, deliver)

    def _deliver_block(
        self,
        sender_id: Optional[str],
        peer: Peer,
        block: Block,
        wire_size: int,
        sync: bool = False,
        corrupt: bool = False,
    ) -> None:
        if self._churn_active and peer.peer_id in self._offline:
            self.stats.blocks_dropped_link += 1
            return
        if corrupt:
            # Decode failure at the receiver: discarded before dedup, import,
            # and relay — so a later clean copy of the same block still lands
            # normally, and an all-corrupt hop set heals via the orphan →
            # range-sync path when the next block arrives.
            return
        self.stats.block_deliveries += 1
        tracer = _obs.TRACER
        if tracer is not None:
            tracer.event(
                "gossip.block",
                peer=peer.peer_id,
                sender=sender_id,
                block=block.hash,
                number=block.number,
                sync=sync,
            )
        seen = self._seen_blocks.setdefault(peer.peer_id, set())
        if block.hash in seen:
            # Dedup by object hash: a block the peer already has is dropped
            # here, before any validation replay.
            self.stats.block_duplicates += 1
            if (
                self._adjacency is not None
                and sender_id is not None
                and block.number > peer.chain.height
                and peer.chain.block_by_hash(block.hash) is None
            ):
                # Still orphaned on redelivery: the first sync attempt went
                # to whichever neighbour flooded the block first, which after
                # a partition heals may be just as far behind.  Each redundant
                # delivery is a fresh chance to sync from a better provider.
                self._request_ancestors(peer, sender_id, block)
            return
        self._mark_seen(peer.peer_id, block.hash)
        status, imported = peer.import_block(block)
        if status == IMPORT_ORPHANED:
            self.stats.blocks_orphaned += 1
            if sender_id is not None:
                self._request_ancestors(peer, sender_id, block)
        elif status == IMPORT_IMPORTED and not sync:
            now = self.simulator.now
            for imported_block in imported:
                born = self._block_born.get(imported_block.hash)
                if born is not None:
                    self._propagation_samples.append(now - born)
        if self._adjacency is not None and not sync and status != IMPORT_DUPLICATE:
            # Store-and-forward on first receipt, whatever the local import
            # verdict: a block this peer cannot use yet may still be exactly
            # what its neighbours are waiting for.
            self._flood_block(peer.peer_id, sender_id, block, wire_size)

    # -- ancestor sync ------------------------------------------------------------------

    def _request_ancestors(self, requester: Peer, provider_id: str, upto: Block) -> None:
        """Fetch the blocks between ``requester``'s head and an orphan from
        the neighbour that sent it (range sync, devp2p style).  One request
        is in flight per requester at a time, so latency-reordered orphans
        do not trigger a request storm."""
        now = self.simulator.now
        if self._sync_inflight.get(requester.peer_id, -1.0) > now:
            return
        provider = self._peers.get(provider_id)
        if provider is None:
            return
        if self._churn_active and not self._link_up(requester.peer_id, provider_id):
            return
        start = requester.chain.height + 1
        end = min(upto.number - 1, provider.chain.height)
        if end < start:
            return
        if start < provider.chain.earliest_block_number:
            # Retention pruned the provider's history below the requester's
            # head: nothing it could serve would connect, so don't burn a
            # request (another, less-pruned neighbour may still answer).
            self.stats.sync_pruned_misses += 1
            return
        self.stats.sync_requests += 1
        tracer = _obs.TRACER
        if tracer is not None:
            tracer.event(
                "sync.range",
                peer=requester.peer_id,
                provider=provider_id,
                start=start,
                end=end,
            )
        # The request itself crosses the link once; responses stream back
        # through the same FIFO pipe as any other block.
        request_delay = self._link_delay(requester.peer_id, provider_id, 64, self.latency)
        latest = now
        for number in range(start, end + 1):
            ancestor = provider.chain.block_by_number(number)
            ancestor_size = len(wire_encoding(ancestor))
            delay = request_delay + self._link_delay(
                provider_id, requester.peer_id, ancestor_size, self.block_latency
            )
            self.stats.block_bytes += ancestor_size
            self.stats.sync_blocks += 1
            self._schedule_block_delivery(
                provider_id, requester, ancestor, ancestor_size, delay, sync=True
            )
            latest = max(latest, now + delay)
        self._sync_inflight[requester.peer_id] = latest

    # -- measurement --------------------------------------------------------------------

    def propagation_samples(self) -> List[float]:
        """Per-import block propagation delays (origin's own import excluded)."""
        return list(self._propagation_samples)

    def propagation_summary(self) -> Dict[str, Any]:
        """A JSON-ready digest of propagation behaviour for this run."""
        samples = sorted(self._propagation_samples)
        peer_count = len(self._peers)
        if self.topology is not None:
            edges = self.topology.edge_count
            mean_degree = self.topology.mean_degree
            topology_name = self.topology.name
        else:
            edges = peer_count * (peer_count - 1) // 2
            mean_degree = float(peer_count - 1) if peer_count else 0.0
            topology_name = "full_mesh"
        stats = self.stats
        return {
            "topology": topology_name,
            "peers": peer_count,
            "edges": edges,
            "mean_degree": mean_degree,
            "block_deliveries": stats.block_deliveries,
            "block_duplicates": stats.block_duplicates,
            "blocks_orphaned": stats.blocks_orphaned,
            "orphan_rate": (
                stats.blocks_orphaned / stats.block_deliveries
                if stats.block_deliveries
                else 0.0
            ),
            "sync_requests": stats.sync_requests,
            "sync_blocks": stats.sync_blocks,
            "propagation_samples": len(samples),
            "block_propagation_p50": percentile(samples, 0.50, method="nearest_index", presorted=True),
            "block_propagation_p95": percentile(samples, 0.95, method="nearest_index", presorted=True),
            "transaction_deliveries": stats.transaction_deliveries,
            "transaction_bytes": stats.transaction_bytes,
            "block_bytes": stats.block_bytes,
            "links_dropped": stats.transactions_dropped_link + stats.blocks_dropped_link,
        }
