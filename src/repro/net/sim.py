"""Discrete-event simulator: the clock every peer, miner, and client shares.

The paper's phenomena are entirely timing-structural — submission intervals,
gossip delays, block intervals, and the order things land in the pool — so a
single-threaded event loop reproduces them faithfully and deterministically
(see DESIGN.md §2 on why this substitution is sound for this paper).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

__all__ = ["Simulator", "ScheduledEvent"]

Callback = Callable[[], None]


@dataclass(order=True)
class ScheduledEvent:
    """An event in the queue; ordering is (time, sequence number)."""

    time: float
    sequence: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the callback from firing when the event is popped."""
        self.cancelled = True


class Simulator:
    """A minimal, deterministic discrete-event loop."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: List[ScheduledEvent] = []
        self._sequence = itertools.count()
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def reset(self, start_time: float = 0.0) -> None:
        """Drain the event heap and rewind to a just-constructed state.

        Warm sweep workers reuse one Simulator across trials; after a reset
        the instance is indistinguishable from ``Simulator(start_time)`` —
        same clock, empty queue, sequence numbers restarting at zero — so a
        reused simulator reproduces a fresh one's event order exactly.
        """
        self._now = start_time
        self._queue.clear()
        self._sequence = itertools.count()
        self.events_processed = 0

    # -- scheduling -----------------------------------------------------------

    def schedule_at(self, time: float, callback: Callback) -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule an event in the past ({time} < {self._now})")
        event = ScheduledEvent(time=time, sequence=next(self._sequence), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay: float, callback: Callback) -> ScheduledEvent:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self._now + delay, callback)

    # -- running ---------------------------------------------------------------

    def step(self) -> bool:
        """Process the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self.events_processed += 1
            return True
        return False

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Run events with time <= ``end_time``; returns how many were processed."""
        processed = 0
        while True:
            if max_events is not None and processed >= max_events:
                return processed
            next_event = self._peek()
            if next_event is None or next_event.time > end_time:
                break
            self.step()
            processed += 1
        # No more events at or before end_time: advance the clock to it.
        self._now = max(self._now, end_time)
        return processed

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the queue drains (or the event cap is hit)."""
        processed = 0
        while self._queue and processed < max_events:
            if self.step():
                processed += 1
        return processed

    def run_while(self, condition: Callable[[], bool], max_events: int = 10_000_000) -> int:
        """Run while ``condition()`` holds and events remain."""
        processed = 0
        while self._queue and condition() and processed < max_events:
            if self.step():
                processed += 1
        return processed

    # -- introspection ------------------------------------------------------------

    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    def _peek(self) -> Optional[ScheduledEvent]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None
