"""Peers: the nodes of the simulated Ethereum network.

A peer owns a full chain copy, a TxPool, and a contract execution engine.
The difference between a "Geth" peer and a "Sereth" peer is exactly what the
paper describes: the Sereth peer additionally runs the HMS/RAA machinery —
an RAA provider wired to its *own* pool and state — while speaking the same
protocol on the wire, which is why the two interoperate on one network.

Gossip invariants (the zero-copy contract): transactions and blocks arriving
over the network are frozen objects shared with every other peer.  A peer
may keep references to them (pool entries, chain storage) but must NEVER
mutate them — a peer that wants a variant transaction builds a new object.
A peer's own world state is always a private copy-on-write fork, so local
view calls and replays never leak into a neighbour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..chain.apply_cache import BlockApplyCache
from ..chain.block import Block
from ..chain.chain import Blockchain
from ..chain.errors import ChainError
from ..chain.executor import BlockContext
from ..chain.genesis import GenesisConfig
from ..chain.transaction import Transaction
from ..core.hms.process import HMSConfig
from ..core.raa.provider import HMSRAAProvider, RAAProviderRegistry, SerethStorageLayout
from ..crypto.addresses import Address
from ..evm.engine import CallResult, ExecutionEngine
from ..evm.registry import ContractRegistry, default_registry
from ..obs import runtime as _obs
from ..txpool.pool import TxPool

__all__ = [
    "PeerStats",
    "Peer",
    "IMPORT_IMPORTED",
    "IMPORT_DUPLICATE",
    "IMPORT_ORPHANED",
    "IMPORT_REJECTED",
]

GETH_CLIENT = "geth"
SERETH_CLIENT = "sereth"

IMPORT_IMPORTED = "imported"
IMPORT_DUPLICATE = "duplicate"
IMPORT_ORPHANED = "orphaned"
IMPORT_REJECTED = "rejected"


@dataclass
class PeerStats:
    """Counters a peer keeps about its own behaviour."""

    transactions_submitted: int = 0
    transactions_received: int = 0
    transactions_duplicate: int = 0
    blocks_imported: int = 0
    blocks_rejected: int = 0
    blocks_duplicate: int = 0
    blocks_orphaned: int = 0
    calls_served: int = 0


class Peer:
    """One node: chain + pool + engine (+ optionally HMS/RAA)."""

    def __init__(
        self,
        peer_id: str,
        genesis: GenesisConfig,
        client_kind: str = GETH_CLIENT,
        registry: Optional[ContractRegistry] = None,
        pool_max_size: Optional[int] = None,
        apply_cache: Optional[BlockApplyCache] = None,
        retain_blocks: Optional[int] = None,
    ) -> None:
        if client_kind not in (GETH_CLIENT, SERETH_CLIENT):
            raise ValueError(f"unknown client kind {client_kind!r}")
        self.peer_id = peer_id
        self.client_kind = client_kind
        # Construction inputs are kept so restart() can rebuild the node's
        # process state from scratch (crash faults = total state loss).
        self._registry = registry or default_registry()
        self._genesis = genesis
        self._pool_max_size = pool_max_size
        self._apply_cache = apply_cache
        self._retain_blocks = retain_blocks
        self.engine = ExecutionEngine(registry=self._registry)
        self.chain = Blockchain(
            self.engine, genesis, apply_cache=apply_cache, retain_blocks=retain_blocks
        )
        self.pool = TxPool(max_size=pool_max_size, owner=peer_id)
        self.stats = PeerStats()
        self.restarts = 0
        self.network = None  # set by Network.add_peer
        self._raa_registry: Optional[RAAProviderRegistry] = None
        self._hms_providers: Dict[Address, HMSRAAProvider] = {}
        self._hms_configs: List[Tuple[Address, bytes, Optional[SerethStorageLayout]]] = []
        self._seen_transactions: set = set()
        # Orphan buffer for flood gossip: blocks whose ancestors have not
        # arrived yet, keyed by the parent hash they are waiting for.
        self._orphans: Dict[bytes, Block] = {}

    MAX_ORPHANS = 256

    # -- identity -------------------------------------------------------------------

    @property
    def is_sereth(self) -> bool:
        return self.client_kind == SERETH_CLIENT

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Peer({self.peer_id!r}, {self.client_kind}, height={self.chain.height})"

    # -- HMS / RAA wiring ---------------------------------------------------------------

    def install_hms(
        self,
        contract_address: Address,
        set_selector: bytes,
        layout: Optional[SerethStorageLayout] = None,
    ) -> HMSRAAProvider:
        """Attach an HMS-backed RAA provider for a watched contract.

        Only meaningful on Sereth peers; calling it on a Geth peer raises, to
        keep experiment configurations honest.
        """
        if not self.is_sereth:
            raise ValueError(f"peer {self.peer_id} runs the unmodified client; cannot install HMS")
        if self._raa_registry is None:
            self._raa_registry = RAAProviderRegistry()
            self.engine.raa_provider = self._raa_registry
        config = HMSConfig(contract_address=contract_address, set_selector=set_selector)
        provider = HMSRAAProvider(
            config=config,
            pool_supplier=self.pool.transactions_with_arrival,
            state_supplier=lambda: self.chain.state,
            layout=layout,
        )
        self._raa_registry.register(contract_address, provider)
        self._hms_providers[contract_address] = provider
        self._hms_configs.append((contract_address, set_selector, layout))
        return provider

    def hms_provider(self, contract_address: Address) -> Optional[HMSRAAProvider]:
        return self._hms_providers.get(contract_address)

    def override_raa_provider(self, contract_address: Address, provider: object) -> None:
        """Replace the RAA provider answering for one contract on this peer.

        The hook adversarial data services (and tests) use to interpose on
        the peer's reads; HMS must already be installed so the registry and
        the engine wiring exist.
        """
        if self._raa_registry is None:
            raise ValueError(
                f"peer {self.peer_id} has no RAA registry; install HMS before overriding"
            )
        self._raa_registry.register(contract_address, provider)

    # -- crash/restart --------------------------------------------------------------------

    def restart(self) -> None:
        """Rebuild this node's process state from genesis: total state loss.

        What a crash destroys: chain, pool, seen-transaction dedup, orphan
        buffer, counters.  What survives: the node's *configuration* — its
        client software (and therefore which contracts HMS watches), which
        is reinstalled against the fresh pool and chain, exactly as a real
        node restarting from its config file would.  Reconvergence is the
        caller's problem: the network delivers the next block, the fresh
        chain orphans it, and range sync backfills the gap (or, under
        provider retention, as much of it as any neighbour still serves).
        """
        self.engine = ExecutionEngine(registry=self._registry)
        self.chain = Blockchain(
            self.engine,
            self._genesis,
            apply_cache=self._apply_cache,
            retain_blocks=self._retain_blocks,
        )
        self.pool = TxPool(max_size=self._pool_max_size, owner=self.peer_id)
        self.stats = PeerStats()
        self._seen_transactions = set()
        self._orphans = {}
        self.restarts += 1
        hms_configs = self._hms_configs
        self._hms_configs = []
        self._raa_registry = None
        self._hms_providers = {}
        for contract_address, set_selector, layout in hms_configs:
            self.install_hms(contract_address, set_selector, layout=layout)

    # -- transaction handling -------------------------------------------------------------

    def submit_transaction(self, transaction: Transaction, now: float) -> bool:
        """Accept a transaction from a local client and gossip it."""
        accepted = self._admit(transaction, now)
        tracer = _obs.TRACER
        if tracer is not None:
            tracer.event(
                "tx.submit",
                peer=self.peer_id,
                tx=transaction.hash,
                nonce=transaction.nonce,
                accepted=accepted,
            )
        if accepted:
            self.stats.transactions_submitted += 1
            if self.network is not None:
                self.network.broadcast_transaction(self, transaction)
        return accepted

    def receive_transaction(self, transaction: Transaction, now: float) -> bool:
        """Accept a transaction arriving over gossip."""
        accepted = self._admit(transaction, now)
        if accepted:
            self.stats.transactions_received += 1
        else:
            self.stats.transactions_duplicate += 1
        return accepted

    def _admit(self, transaction: Transaction, now: float) -> bool:
        if transaction.hash in self._seen_transactions:
            return False
        if self.chain.transaction_is_committed(transaction.hash):
            return False
        self._seen_transactions.add(transaction.hash)
        return self.pool.add(transaction, arrival_time=now)

    # -- block handling --------------------------------------------------------------------

    def receive_block(self, block: Block) -> bool:
        """Validate and import a block, then prune the pool.

        A block already on the chain is dropped by hash before any
        validation replay (gossip redundantly re-delivers blocks; importing
        one twice would be rejected anyway, but counting it as a rejection
        hides real validation failures).
        """
        if self.chain.block_by_hash(block.hash) is not None:
            self.stats.blocks_duplicate += 1
            return False
        tracer = _obs.TRACER
        start = perf_counter() if tracer is not None else 0.0
        try:
            self.chain.add_block(block)
        except ChainError as error:
            self.stats.blocks_rejected += 1
            if tracer is not None:
                tracer.phase("block_import", start)
                tracer.event(
                    "block.reject",
                    peer=self.peer_id,
                    block=block.hash,
                    number=block.number,
                    error=str(error),
                )
            return False
        self.stats.blocks_imported += 1
        self.pool.remove_committed(block)
        self.pool.drop_stale(self.chain.state)
        if tracer is not None:
            tracer.phase("block_import", start)
            tracer.event(
                "block.import",
                peer=self.peer_id,
                block=block.hash,
                number=block.number,
                txs=len(block.transactions),
            )
        return True

    def import_block(self, block: Block) -> Tuple[str, List[Block]]:
        """Import with orphan buffering: the flood-gossip entry point.

        Returns ``(status, imported)`` where status is one of
        ``IMPORT_IMPORTED`` / ``IMPORT_DUPLICATE`` / ``IMPORT_ORPHANED`` /
        ``IMPORT_REJECTED`` and ``imported`` lists every block actually
        appended — the delivered one plus any buffered orphans it unlocked.
        A block whose ancestors have not arrived yet (multi-hop floods and
        partition heals deliver out of order) waits in a bounded buffer
        keyed by the parent hash it needs.
        """
        if self.chain.block_by_hash(block.hash) is not None:
            self.stats.blocks_duplicate += 1
            return (IMPORT_DUPLICATE, [])
        if block.number > self.chain.height + 1:
            self._buffer_orphan(block)
            return (IMPORT_ORPHANED, [])
        if not self.receive_block(block):
            return (IMPORT_REJECTED, [])
        imported = [block]
        while True:
            child = self._orphans.pop(self.chain.head.hash, None)
            if child is None:
                break
            if not self.receive_block(child):
                break
            imported.append(child)
        return (IMPORT_IMPORTED, imported)

    def _buffer_orphan(self, block: Block) -> None:
        self.stats.blocks_orphaned += 1
        tracer = _obs.TRACER
        if tracer is not None:
            tracer.event(
                "block.orphan",
                peer=self.peer_id,
                block=block.hash,
                number=block.number,
                height=self.chain.height,
            )
        self._orphans[block.header.parent_hash] = block
        while len(self._orphans) > self.MAX_ORPHANS:
            # Evict the orphan farthest in the future — the least likely to
            # become importable before a range sync refreshes everything.
            farthest = max(self._orphans, key=lambda parent: self._orphans[parent].number)
            del self._orphans[farthest]

    # -- client-facing API ---------------------------------------------------------------------

    def head_context(self, now: Optional[float] = None) -> BlockContext:
        """Block context representing "the next block" for local calls."""
        head = self.chain.head
        return BlockContext(
            number=head.number + 1,
            timestamp=now if now is not None else head.timestamp,
            miner=head.header.miner,
            gas_limit=head.header.gas_limit,
            difficulty=head.header.difficulty,
        )

    def call_contract(
        self,
        contract_address: Address,
        function_name: str,
        arguments: Sequence[object],
        caller: Address,
        now: Optional[float] = None,
        allow_raa: bool = True,
    ) -> CallResult:
        """Evaluate a view/pure function against this peer's local state.

        On a Sereth peer with HMS installed, RAA-augmentable arguments are
        filled with the READ-UNCOMMITTED view; on a Geth peer the arguments
        pass through unchanged.
        """
        self.stats.calls_served += 1
        return self.engine.call(
            self.chain.state,
            contract_address,
            function_name,
            arguments,
            caller=caller,
            block=self.head_context(now),
            allow_raa=allow_raa,
        )

    def next_nonce(self, address: Address) -> int:
        """The nonce a client should use next: account nonce plus pending txs."""
        pending = self.pool.pending_by_sender().get(address, [])
        base = self.chain.state.get_nonce(address)
        nonces = {entry.nonce for entry in pending}
        nonce = base
        while nonce in nonces:
            nonce += 1
        return nonce
