"""Result analysis: summary statistics, confidence intervals, rendering, persistence."""

from .persistence import (
    experiment_result_to_dict,
    figure2_result_to_dict,
    load_json,
    save_json,
)
from .plotting import ascii_chart, format_percentage, format_table
from .stats import SummaryStats, confidence_interval, moving_average, summarize

__all__ = [
    "experiment_result_to_dict",
    "figure2_result_to_dict",
    "load_json",
    "save_json",
    "ascii_chart",
    "format_percentage",
    "format_table",
    "SummaryStats",
    "confidence_interval",
    "moving_average",
    "summarize",
]
