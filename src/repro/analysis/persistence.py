"""Result persistence: save and reload experiment results as JSON.

Sweeps take minutes at paper scale, so the harness can write its results to
disk and the analysis/plotting steps can re-run without re-simulating.  The
format is plain JSON with hex-encoded byte fields, so results are diffable
and usable outside Python.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..core.metrics import ThroughputReport
from ..experiments.figure2 import Figure2Result
from ..experiments.runner import ExperimentResult

__all__ = [
    "experiment_result_to_dict",
    "figure2_result_to_dict",
    "save_json",
    "load_json",
]


def _jsonable(value: Any) -> Any:
    """Recursively convert values into JSON-encodable equivalents."""
    if isinstance(value, bytes):
        return "0x" + value.hex()
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(asdict(value))
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def experiment_result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """Flatten one market-experiment result into a JSON-ready dictionary."""
    return {
        "scenario": result.config.scenario.name,
        "config": {
            "buys_per_set": result.config.buys_per_set,
            "num_buys": result.config.num_buys,
            "submission_interval": result.config.submission_interval,
            "block_interval": result.config.block_interval,
            "num_buyers": result.config.num_buyers,
            "num_miners": result.config.num_miners,
            "gossip_latency": result.config.gossip_latency,
            "miner_order_jitter": result.config.miner_order_jitter,
            "seed": result.config.seed,
        },
        "contract": "0x" + result.contract.hex(),
        "blocks_produced": result.blocks_produced,
        "simulated_seconds": result.simulated_seconds,
        "buy_report": _jsonable(result.buy_report.as_dict()),
        "set_report": _jsonable(result.set_report.as_dict()),
        "efficiency": result.efficiency,
    }


def figure2_result_to_dict(result: Figure2Result) -> Dict[str, Any]:
    """Flatten a Figure 2 sweep (per-point means, CIs, and raw trials)."""
    return {
        "ratios": list(result.config.ratios),
        "trials": result.config.trials,
        "num_buys": result.config.num_buys,
        "scenarios": [scenario.name for scenario in result.config.scenarios],
        "points": [
            {
                "scenario": point.scenario,
                "ratio": point.ratio,
                "efficiencies": point.efficiencies,
                "mean": point.stats.mean,
                "stddev": point.stats.stddev,
                "confidence_halfwidth": point.stats.confidence_halfwidth,
            }
            for point in result.points
        ],
    }


def save_json(data: Union[Dict[str, Any], List[Any]], path: Union[str, Path]) -> Path:
    """Write ``data`` to ``path`` as pretty-printed JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(_jsonable(data), indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return target


def load_json(path: Union[str, Path]) -> Any:
    """Read JSON previously written by :func:`save_json`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
