"""Terminal-friendly rendering of experiment results (tables and ASCII charts).

The benchmark harness has no plotting stack (offline environment), so the
figures are emitted as aligned tables plus a coarse ASCII chart — enough to
see the shape Figure 2 reports: which scenario wins, by what factor, and how
the gap changes with the read/write ratio.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["format_table", "ascii_chart", "format_percentage"]


def format_percentage(value: float) -> str:
    return f"{100.0 * value:5.1f}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned plain-text table."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[column]) for column, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[column] for column in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[column]) for column, cell in enumerate(row)))
    return "\n".join(lines)


def ascii_chart(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[str],
    height: int = 12,
    y_max: float = 1.0,
    title: Optional[str] = None,
) -> str:
    """Render one or more series (values in [0, y_max]) as an ASCII chart.

    Each series gets a distinct marker; collisions show the marker of the
    series listed last.
    """
    if height < 3:
        raise ValueError("chart height must be at least 3")
    markers = "ox*+#@%&"
    columns = len(x_labels)
    grid = [[" "] * columns for _ in range(height)]
    legend = []
    for series_index, (name, values) in enumerate(series.items()):
        marker = markers[series_index % len(markers)]
        legend.append(f"{marker} = {name}")
        for column, value in enumerate(values[:columns]):
            clamped = min(max(value, 0.0), y_max)
            row = height - 1 - int(round((clamped / y_max) * (height - 1)))
            grid[row][column] = marker
    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        level = y_max * (height - 1 - row_index) / (height - 1)
        lines.append(f"{level:5.2f} | " + "  ".join(row))
    lines.append("      +-" + "---" * columns)
    lines.append("        " + "  ".join(label[:2].rjust(2) for label in x_labels))
    lines.append("        (" + ", ".join(legend) + ")")
    return "\n".join(lines)
