"""Summary statistics for experiment sweeps.

Figure 2's lines are "smoothed averages of the points shown, with the shaded
areas representing the 90 percent confidence interval"; these helpers
compute the per-point mean, the confidence half-width (Student-t for the
small trial counts used here), and a simple moving-average smoother.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = ["SummaryStats", "summarize", "confidence_interval", "moving_average"]

# Two-sided Student-t critical values for 90% confidence, indexed by degrees
# of freedom (1..30).  Falls back to the normal value (1.645) beyond that.
_T_90 = {
    1: 6.314, 2: 2.920, 3: 2.353, 4: 2.132, 5: 2.015, 6: 1.943, 7: 1.895,
    8: 1.860, 9: 1.833, 10: 1.812, 11: 1.796, 12: 1.782, 13: 1.771, 14: 1.761,
    15: 1.753, 16: 1.746, 17: 1.740, 18: 1.734, 19: 1.729, 20: 1.725,
    21: 1.721, 22: 1.717, 23: 1.714, 24: 1.711, 25: 1.708, 26: 1.706,
    27: 1.703, 28: 1.701, 29: 1.699, 30: 1.697,
}
_Z_90 = 1.645


@dataclass(frozen=True)
class SummaryStats:
    """Mean, spread, and a 90% confidence half-width over repeated trials."""

    count: int
    mean: float
    stddev: float
    minimum: float
    maximum: float
    confidence_halfwidth: float

    @property
    def low(self) -> float:
        return self.mean - self.confidence_halfwidth

    @property
    def high(self) -> float:
        return self.mean + self.confidence_halfwidth


def _t_critical(degrees_of_freedom: int) -> float:
    if degrees_of_freedom <= 0:
        return 0.0
    return _T_90.get(degrees_of_freedom, _Z_90)


def summarize(values: Sequence[float]) -> SummaryStats:
    """Summarize a set of repeated measurements."""
    data = [float(value) for value in values]
    if not data:
        raise ValueError("cannot summarize an empty sequence")
    count = len(data)
    mean = sum(data) / count
    if count > 1:
        variance = sum((value - mean) ** 2 for value in data) / (count - 1)
        stddev = math.sqrt(variance)
        halfwidth = _t_critical(count - 1) * stddev / math.sqrt(count)
    else:
        stddev = 0.0
        halfwidth = 0.0
    return SummaryStats(
        count=count,
        mean=mean,
        stddev=stddev,
        minimum=min(data),
        maximum=max(data),
        confidence_halfwidth=halfwidth,
    )


def confidence_interval(values: Sequence[float]) -> tuple:
    """The (low, high) 90% confidence interval for the mean of ``values``."""
    stats = summarize(values)
    return stats.low, stats.high


def moving_average(values: Sequence[float], window: int = 3) -> List[float]:
    """Centered moving average with edge shrinking (Figure 2's line smoothing)."""
    if window <= 0:
        raise ValueError("window must be positive")
    data = [float(value) for value in values]
    if not data:
        return []
    half = window // 2
    smoothed: List[float] = []
    for index in range(len(data)):
        start = max(0, index - half)
        end = min(len(data), index + half + 1)
        smoothed.append(sum(data[start:end]) / (end - start))
    return smoothed
