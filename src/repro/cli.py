"""Command-line interface for running the paper's experiments via ``repro.api``.

The generic experiment commands drive any experiment registered in
:data:`repro.api.experiment.EXPERIMENT_REGISTRY` through the shared
``plan -> execute -> analyze -> check_claims -> export`` lifecycle::

    repro run figure2 --workers 4 --export out/
    repro run attack_matrix --smoke --checkpoint matrix.jsonl
    repro run ablation --set name=gossip --trials 2
    repro claims figure2                      # claim gates only (exit != 0 on failure)
    repro trace figure2 --smoke --trace-out traces/   # repro.obs tracer + hot phases
    repro serve --port 8547 --workers 4       # simulator-as-a-service JSON-RPC facade
    repro loadgen --smoke --url http://127.0.0.1:8547   # measured tail latency + gates
    repro list                                # every registry, one line per entry

``--checkpoint FILE`` makes the sweep resumable: completed cells append to a
JSONL file keyed by the grid's digest, and a re-run executes only the
missing cells (byte-identical exports either way).  ``--set NAME=VALUE``
overrides experiment knobs: a comma list replaces a sweep dimension, a
scalar lands on the base spec.

The historical per-experiment subcommands remain as thin wrappers::

    repro figure2 --ratios 1 2 10 20 --trials 2 --workers 4
    repro market --scenario semantic_mining --ratio 2
    repro sequential | frontrunning | oracle | ablation --name miner_fraction
    repro attack-matrix --adversaries displacement insertion --workers 4
    repro sweep --workload market --scenarios geth_unmodified semantic_mining \
        --over buys_per_set=1,2,10 --trials 2 --workers 4 --csv out.csv
    repro list [--adversaries|--topologies]

Every subcommand resolves scenarios, workloads, adversaries, and
experiments through the :mod:`repro.api` registries and executes through
the facade's engine.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Sequence

from .analysis.plotting import format_percentage, format_table
from .api import (
    CheckpointMismatchError,
    ExperimentOptions,
    Simulation,
    Sweep,
    execute_plan,
    format_hot_phase_table,
    plan_experiment,
)
from .experiments.attack_matrix import (
    DEFAULT_ADVERSARIES,
    DEFAULT_DEFENSES,
    HMS_DEFENSE,
    AttackMatrixConfig,
    run_attack_matrix,
)
from .experiments.ablations import (
    sweep_block_interval,
    sweep_gossip_impairment,
    sweep_semantic_miner_fraction,
    sweep_submission_interval,
)
from .experiments.claims import check_headline_claims
from .experiments.figure2 import Figure2Config, run_figure2
from .experiments.frontrunning import FrontrunningConfig, run_frontrunning_experiment
from .experiments.reporting import emit_block
from .experiments.runner import ExperimentConfig
from .experiments.scenario import GETH_UNMODIFIED, SCENARIOS
from .experiments.sequential import SequentialHistoryConfig, run_sequential_history
from .oracle.comparison import OracleComparisonConfig, run_raa_vs_oracle

__all__ = ["main", "build_parser"]


def _add_run_options(
    parser: argparse.ArgumentParser,
    *,
    smoke: bool = True,
    workers: bool = True,
    seed: bool = True,
    overrides: bool = True,
    trials: bool = False,
    checkpoint: bool = False,
    export: bool = False,
) -> None:
    """The run-option vocabulary every executing subcommand shares.

    ``run``/``claims``/``trace``/``serve``/``loadgen`` all take some subset
    of these flags; declaring them here keeps names, defaults, and help
    text identical everywhere instead of drifting per-subcommand copies.
    """
    if smoke:
        parser.add_argument("--smoke", action="store_true", help="run the reduced CI-sized grid")
    if workers:
        parser.add_argument("--workers", type=int, default=1, help="parallel worker processes")
    if seed:
        parser.add_argument("--seed", type=int, default=None, help="root seed (default: the experiment's)")
    if trials:
        parser.add_argument("--trials", type=int, default=None, help="trials per grid cell")
    if overrides:
        parser.add_argument(
            "--set",
            dest="overrides",
            nargs="*",
            default=[],
            metavar="NAME=VALUE",
            help="overrides; comma lists become sweep dimensions "
            "(e.g. --set buys_per_set=1,2,10 name=gossip)",
        )
    if checkpoint:
        parser.add_argument(
            "--checkpoint",
            default=None,
            help="JSONL checkpoint file: completed cells are recorded as they "
            "finish, and a re-run executes only the missing ones",
        )
    if export:
        parser.add_argument(
            "--export", dest="export_dir", default=None, help="write JSON/CSV/Markdown/claims artifacts here"
        )


def _experiment_options(
    arguments: argparse.Namespace, *, smoke: Optional[bool] = None
) -> ExperimentOptions:
    """Build :class:`ExperimentOptions` from flags `_add_run_options` declared."""
    return ExperimentOptions(
        workers=getattr(arguments, "workers", 1),
        smoke=getattr(arguments, "smoke", False) if smoke is None else smoke,
        seed=getattr(arguments, "seed", None),
        trials=getattr(arguments, "trials", None),
        checkpoint=getattr(arguments, "checkpoint", None),
        overrides=_parse_overrides(getattr(arguments, "overrides", [])),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'Read-Uncommitted Transactions for "
        "Smart Contract Performance' (ICDCS 2019).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run", help="run any registered experiment through the generic lifecycle"
    )
    run.add_argument("experiment", help="registered experiment name (see `repro list --experiments`)")
    _add_run_options(run, trials=True, checkpoint=True, export=True)
    run.add_argument("--no-claims", action="store_true", help="skip the claim gates (always exit 0)")

    claims = subparsers.add_parser(
        "claims", help="evaluate an experiment's claim gates (smoke grid by default)"
    )
    claims.add_argument("experiment", help="registered experiment name")
    claims.add_argument("--full", action="store_true", help="run the full grid instead of the smoke grid")
    _add_run_options(claims, smoke=False)

    trace = subparsers.add_parser(
        "trace",
        help="run an experiment's grid under the repro.obs tracer and rank hot phases",
    )
    trace.add_argument("experiment", help="registered experiment name (see `repro list --experiments`)")
    _add_run_options(trace, trials=True)
    trace.add_argument(
        "--trace-out",
        dest="trace_out",
        default=None,
        help="directory collecting one JSONL + Chrome-trace file pair per job "
        "(open the .trace.json in Perfetto or chrome://tracing)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the persistent simulator-as-a-service JSON-RPC facade "
        "(POST JSON-RPC to /rpc, GET /healthz)",
    )
    _add_run_options(serve, smoke=False, seed=False, overrides=False)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8547, help="bind port (0: ephemeral)")
    serve.add_argument(
        "--idle-timeout",
        dest="idle_timeout",
        type=float,
        default=300.0,
        help="evict sessions idle this many seconds (<= 0 disables eviction)",
    )
    serve.add_argument(
        "--retention",
        type=int,
        default=64,
        help="default per-session chain retention in blocks, applied to specs "
        "that set none (<= 0: sessions keep unbounded history)",
    )
    serve.add_argument("--max-sessions", dest="max_sessions", type=int, default=64)
    serve.add_argument(
        "--trace-out",
        dest="trace_out",
        default=None,
        help="directory where shutdown writes the request-lifecycle trace "
        "(service.jsonl + service.trace.json) and a probe snapshot",
    )
    serve.add_argument(
        "--persist",
        dest="persist_dir",
        default=None,
        metavar="DIR",
        help="journal state-changing requests to DIR/requests.jsonl "
        "(fsynced per request) so a killed server can be resumed",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="replay the --persist journal on startup, rebuilding every "
        "journaled session byte-identically before serving",
    )

    loadgen = subparsers.add_parser(
        "loadgen",
        help="drive closed/open-loop load against a service and measure tail latency",
    )
    _add_run_options(loadgen, workers=False)
    loadgen.add_argument(
        "--url", default=None, help="server URL (default: spawn an in-process server)"
    )
    loadgen.add_argument("--clients", type=int, default=4, help="concurrent load clients")
    loadgen.add_argument(
        "--requests", type=int, default=25, help="requests per client per loop mode"
    )
    loadgen.add_argument("--mode", choices=["closed", "open", "both"], default="both")
    loadgen.add_argument("--arrival", choices=["regular", "poisson", "bursty"], default="regular")
    loadgen.add_argument(
        "--rate", type=float, default=50.0, help="open-loop arrivals per second per client"
    )
    loadgen.add_argument("--mix", default="market", help="session mix (see repro.service.loadgen)")
    loadgen.add_argument("--output", default=None, help="write the BENCH-shaped JSON report here")
    loadgen.add_argument(
        "--p95-ceiling",
        dest="p95_ceiling",
        type=float,
        default=2000.0,
        help="--smoke gate: fail if any mode's p95 exceeds this many ms",
    )

    figure2 = subparsers.add_parser("figure2", help="run the Figure 2 ratio sweep")
    figure2.add_argument("--ratios", type=float, nargs="+", default=[1.0, 2.0, 4.0, 10.0, 20.0])
    figure2.add_argument("--trials", type=int, default=2)
    figure2.add_argument("--num-buys", type=int, default=100)
    figure2.add_argument("--seed", type=int, default=11)
    figure2.add_argument("--workers", type=int, default=1, help="parallel worker processes")

    market = subparsers.add_parser("market", help="run one market experiment data point")
    market.add_argument("--scenario", choices=sorted(SCENARIOS), default="sereth_client")
    market.add_argument("--ratio", type=float, default=2.0, help="buys per set")
    market.add_argument("--num-buys", type=int, default=100)
    market.add_argument("--block-interval", type=float, default=13.0)
    market.add_argument("--seed", type=int, default=0)

    sequential = subparsers.add_parser("sequential", help="run the sequential-history experiment")
    sequential.add_argument("--pairs", type=int, default=25)
    sequential.add_argument("--seed", type=int, default=0)

    frontrunning = subparsers.add_parser("frontrunning", help="run the frontrunning experiment")
    frontrunning.add_argument(
        "--victim-read-mode", choices=["read_committed", "read_uncommitted"],
        default="read_uncommitted",
    )
    frontrunning.add_argument("--buys", type=int, default=40)
    frontrunning.add_argument("--seed", type=int, default=0)

    oracle = subparsers.add_parser("oracle", help="compare RAA against a conventional oracle")
    oracle.add_argument("--queries", type=int, default=10)
    oracle.add_argument("--seed", type=int, default=0)

    ablation = subparsers.add_parser("ablation", help="run one of the ablation sweeps")
    ablation.add_argument(
        "--name",
        choices=["miner_fraction", "gossip", "submission_interval", "block_interval"],
        required=True,
    )
    ablation.add_argument("--trials", type=int, default=2)
    ablation.add_argument("--workers", type=int, default=1)

    attack_matrix = subparsers.add_parser(
        "attack-matrix", help="run every adversary against every defense configuration"
    )
    attack_matrix.add_argument(
        "--adversaries",
        nargs="+",
        default=list(DEFAULT_ADVERSARIES),
        help="registered adversary names to run as matrix rows",
    )
    attack_matrix.add_argument(
        "--defenses",
        nargs="+",
        default=list(DEFAULT_DEFENSES),
        help="scenario names to run as defense columns",
    )
    attack_matrix.add_argument("--buys", type=int, default=20, help="victim buys per cell")
    attack_matrix.add_argument(
        "--reprice-interval",
        type=float,
        default=None,
        help="owner repricing period (moving-market regime for delay attacks); "
        "default: one opening set only, the paper's V-B market",
    )
    attack_matrix.add_argument("--trials", type=int, default=1)
    attack_matrix.add_argument("--workers", type=int, default=1)
    attack_matrix.add_argument("--seed", type=int, default=11)
    attack_matrix.add_argument("--no-control", action="store_true", help="skip the adversary-free control row")
    attack_matrix.add_argument("--json", dest="json_path", default=None, help="write cells as JSON")

    sweep = subparsers.add_parser(
        "sweep", help="run an arbitrary scenario x parameter grid through repro.api"
    )
    sweep.add_argument("--workload", default="market", help="registered workload name")
    sweep.add_argument(
        "--scenarios", nargs="+", default=["geth_unmodified", "sereth_client", "semantic_mining"]
    )
    sweep.add_argument(
        "--over",
        nargs="*",
        default=[],
        metavar="NAME=V1,V2,...",
        help="extra grid dimensions, e.g. buys_per_set=1,2,10 block_interval=5,13",
    )
    sweep.add_argument("--trials", type=int, default=1)
    sweep.add_argument("--workers", type=int, default=1)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--json", dest="json_path", default=None, help="write rows as JSON")
    sweep.add_argument("--csv", dest="csv_path", default=None, help="write rows as CSV")

    listing = subparsers.add_parser(
        "list",
        help="list registered scenarios, workloads, adversaries, topologies, "
        "and experiments",
    )
    listing.add_argument(
        "--scenarios",
        action="store_true",
        help="show only the registered scenarios",
    )
    listing.add_argument(
        "--workloads",
        action="store_true",
        help="show only the registered workloads",
    )
    listing.add_argument(
        "--adversaries",
        action="store_true",
        help="show only the registered attack strategies",
    )
    listing.add_argument(
        "--experiments",
        action="store_true",
        help="show only the registered experiments and their claim gates",
    )
    listing.add_argument(
        "--topologies",
        action="store_true",
        help="show only the registered gossip topologies",
    )
    listing.add_argument(
        "--probes",
        action="store_true",
        help="show only the registered observability probes",
    )
    return parser


def _convert_token(token: str) -> Any:
    for cast in (int, float):
        try:
            return cast(token)
        except ValueError:
            continue
    lowered = token.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    return token


def _parse_overrides(pairs: Sequence[str]) -> Dict[str, Any]:
    """Parse ``--set NAME=VALUE`` overrides; ``V1,V2,...`` becomes a list."""
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad --set override {pair!r}; expected NAME=VALUE")
        name, _, raw = pair.partition("=")
        if "," in raw:
            overrides[name] = [_convert_token(token) for token in raw.split(",") if token]
        else:
            overrides[name] = _convert_token(raw)
    return overrides


def _emit_claims(checks) -> None:
    rows = [
        [check.claim[:58], check.paper_value, check.measured_value, "yes" if check.holds else "NO"]
        for check in checks
    ]
    if rows:
        emit_block("Claim gates", format_table(["claim", "paper", "measured", "holds"], rows))
    else:
        emit_block("Claim gates", "(this experiment declares no claims)")


def _plan_experiment(command: str, name: str, options: ExperimentOptions):
    """Resolve and plan an experiment, rendering plan-time problems (unknown
    name, bad override) as usage errors.  Execution errors are *not*
    wrapped — a bug deep in a sweep deserves its traceback."""
    try:
        return plan_experiment(name, options)
    except (KeyError, TypeError, ValueError) as error:
        message = error.args[0] if error.args else error
        raise SystemExit(f"repro {command}: {message}")


def _command_run(arguments: argparse.Namespace) -> int:
    options = _experiment_options(arguments)
    experiment, options, sweep = _plan_experiment("run", arguments.experiment, options)
    try:
        run = execute_plan(experiment, options, sweep)
    except CheckpointMismatchError as error:
        raise SystemExit(f"repro run: {error}")
    emit_block(
        f"{experiment.name} — {experiment.description} "
        f"({len(run.frame)} rows{', smoke grid' if arguments.smoke else ''})",
        run.export_frame().to_markdown().rstrip("\n"),
    )
    _emit_claims(run.claim_checks)
    if arguments.export_dir:
        paths = run.export(arguments.export_dir)
        emit_block(
            "Artifacts",
            "\n".join(f"{kind}: {path}" for kind, path in sorted(paths.items())),
        )
    if arguments.no_claims:
        return 0
    return 0 if run.passed else 1


def _command_claims(arguments: argparse.Namespace) -> int:
    options = _experiment_options(arguments, smoke=not arguments.full)
    experiment, options, sweep = _plan_experiment("claims", arguments.experiment, options)
    run = execute_plan(experiment, options, sweep)
    _emit_claims(run.claim_checks)
    return 0 if run.passed else 1


def _command_trace(arguments: argparse.Namespace) -> int:
    options = _experiment_options(arguments)
    experiment, options, sweep = _plan_experiment("trace", arguments.experiment, options)
    result = sweep.observed(arguments.trace_out).run(workers=options.workers)
    summaries = [row.summary for row in result.rows]
    emit_block(
        f"{experiment.name} — hot phases over {len(result)} traced runs"
        f"{' (smoke grid)' if arguments.smoke else ''}",
        format_hot_phase_table(summaries).rstrip("\n"),
    )
    event_totals: Dict[str, int] = {}
    for summary in summaries:
        for kind, count in summary.get("observability", {}).get("event_counts", {}).items():
            event_totals[kind] = event_totals.get(kind, 0) + count
    emit_block(
        "Lifecycle events (all runs)",
        format_table(
            ["event", "count"],
            [[kind, event_totals[kind]] for kind in sorted(event_totals)],
        )
        if event_totals
        else "(no events recorded)",
    )
    if arguments.trace_out:
        from pathlib import Path

        files = sorted(str(path) for path in Path(arguments.trace_out).glob("trace_*"))
        emit_block(
            f"Trace files in {arguments.trace_out}",
            "\n".join(files) if files else "(none written)",
        )
    return 0


def _command_figure2(arguments: argparse.Namespace) -> int:
    config = Figure2Config(
        ratios=tuple(arguments.ratios),
        trials=arguments.trials,
        num_buys=arguments.num_buys,
        base=ExperimentConfig(scenario=GETH_UNMODIFIED, seed=arguments.seed),
    )
    keep_results = arguments.workers <= 1
    result = run_figure2(config, keep_results=keep_results, workers=arguments.workers)
    emit_block("Figure 2 — transaction efficiency vs buy:set ratio", result.as_table())
    emit_block("Figure 2 — chart", result.as_chart())
    checks = check_headline_claims(result)
    rows = [[c.claim[:58], c.paper_value, c.measured_value, "yes" if c.holds else "NO"] for c in checks]
    emit_block("Headline claims", format_table(["claim", "paper", "measured", "holds"], rows))
    return 0 if all(check.holds for check in checks) else 1


def _command_market(arguments: argparse.Namespace) -> int:
    spec = (
        Simulation.builder()
        .scenario(arguments.scenario)
        .workload("market", buys_per_set=arguments.ratio, num_buys=arguments.num_buys)
        .block_interval(arguments.block_interval)
        .seed(arguments.seed)
        .build()
    )
    result = Simulation(spec).run()
    buy_report = result.report()
    set_report = result.reports["set"]
    rows = [
        ["scenario", arguments.scenario],
        ["buys_per_set", arguments.ratio],
        ["seed", arguments.seed],
        ["efficiency", result.efficiency],
        ["buys_successful", buy_report.successful],
        ["buys_committed", buy_report.committed],
        ["sets_successful", set_report.successful],
        ["sets_committed", set_report.committed],
        ["blocks", result.blocks_produced],
        ["simulated_seconds", result.simulated_seconds],
    ]
    emit_block(
        f"Market experiment — {arguments.scenario} at {arguments.ratio:g} buys/set",
        format_table(["metric", "value"], rows),
    )
    return 0


def _command_sequential(arguments: argparse.Namespace) -> int:
    result = run_sequential_history(
        SequentialHistoryConfig(num_pairs=arguments.pairs, seed=arguments.seed)
    )
    emit_block(
        "Sequential history",
        f"committed={result.report.committed} successful={result.report.successful} "
        f"efficiency={result.efficiency:.3f} (paper: 1.0)",
    )
    return 0 if result.efficiency == 1.0 else 1


def _command_frontrunning(arguments: argparse.Namespace) -> int:
    result = run_frontrunning_experiment(
        FrontrunningConfig(
            num_victim_buys=arguments.buys,
            victim_read_mode=arguments.victim_read_mode,
            seed=arguments.seed,
        )
    )
    emit_block(
        f"Frontrunning — victim reads {arguments.victim_read_mode}",
        format_table(
            ["metric", "value"],
            [
                ["victim buys", result.victim_buys],
                ["filled at observed terms", result.filled_at_observed_terms],
                ["rejected", result.rejected],
                ["attacks launched", result.attacks_launched],
                ["overpaid fills", result.overpaid],
                ["audit clean", result.audit_clean],
            ],
        ),
    )
    return 0 if result.overpaid == 0 else 1


def _command_oracle(arguments: argparse.Namespace) -> int:
    result = run_raa_vs_oracle(OracleComparisonConfig(num_queries=arguments.queries, seed=arguments.seed))
    emit_block(
        "RAA vs conventional oracle",
        format_table(
            ["path", "mean data latency (s)"],
            [
                ["RAA (local view call)", f"{result.mean_raa_latency:.4f}"],
                ["oracle round trip", f"{result.mean_oracle_latency:.1f}"],
            ],
        ),
    )
    return 0


def _command_ablation(arguments: argparse.Namespace) -> int:
    sweeps = {
        "miner_fraction": lambda: sweep_semantic_miner_fraction(
            trials=arguments.trials, workers=arguments.workers
        ),
        "gossip": lambda: sweep_gossip_impairment(
            trials=arguments.trials, workers=arguments.workers
        ),
        "submission_interval": lambda: sweep_submission_interval(
            trials=arguments.trials, workers=arguments.workers
        ),
        "block_interval": lambda: sweep_block_interval(
            trials=arguments.trials, workers=arguments.workers
        ),
    }
    result = sweeps[arguments.name]()
    rows = [
        [point.scenario, f"{point.parameter:g}", format_percentage(point.mean_efficiency)]
        for point in result.points
    ]
    emit_block(
        f"Ablation — {result.name}",
        format_table(["scenario", result.parameter_name, "efficiency"], rows),
    )
    return 0


def _command_attack_matrix(arguments: argparse.Namespace) -> int:
    try:
        config = AttackMatrixConfig(
            adversaries=tuple(arguments.adversaries),
            defenses=tuple(arguments.defenses),
            num_victim_buys=arguments.buys,
            reprice_interval=arguments.reprice_interval,
            trials=arguments.trials,
            include_control=not arguments.no_control,
            seed=arguments.seed,
        )
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        raise SystemExit(f"repro attack-matrix: {message}")
    result = run_attack_matrix(config, workers=arguments.workers)
    if arguments.json_path:
        import json
        from pathlib import Path

        target = Path(arguments.json_path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    emit_block(
        f"Attack matrix — {len(config.adversaries)} adversaries x "
        f"{len(config.defenses)} defenses, {config.num_victim_buys} victim buys/cell",
        format_table(
            ["adversary", "defense", "attempts", "successes", "profit", "harm", "harm%", "latency", "overpaid"],
            result.as_rows(),
        ),
    )
    verdicts = [
        ["mark-bound offers held everywhere (overpaid == 0)", "yes" if result.structurally_sound else "NO"],
    ]
    headline_cell_ran = (
        "displacement" in config.adversaries and HMS_DEFENSE in config.defenses
    )
    verdicts.append(
        [
            f"displacement harmless under {HMS_DEFENSE} (Section V-B)",
            ("yes" if result.hms_protected else "NO")
            if headline_cell_ran
            else "n/a (cell not in grid)",
        ]
    )
    emit_block("Verdicts", format_table(["claim", "holds"], verdicts))
    return 0 if result.hms_protected and result.structurally_sound else 1


def _parse_dimensions(pairs: Sequence[str]) -> Dict[str, List[Any]]:
    """Parse ``name=v1,v2,...`` grid dimensions (numbers where possible)."""

    def convert(token: str) -> Any:
        for cast in (int, float):
            try:
                return cast(token)
            except ValueError:
                continue
        return token

    dimensions: Dict[str, List[Any]] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad --over dimension {pair!r}; expected NAME=V1,V2,...")
        name, _, values = pair.partition("=")
        dimensions[name] = [convert(token) for token in values.split(",") if token]
    return dimensions


def _command_sweep(arguments: argparse.Namespace) -> int:
    try:
        base = (
            Simulation.builder()
            .scenario(arguments.scenarios[0])
            .workload(arguments.workload)
            .seed(arguments.seed)
            .build()
        )
        sweep = Sweep(base).over(scenario=list(arguments.scenarios))
        dimensions = _parse_dimensions(arguments.over)
        if dimensions:
            sweep = sweep.over(**dimensions)
        sweep = sweep.trials(arguments.trials)
        sweep.jobs()  # expand eagerly so grid-value errors surface here
    except (KeyError, TypeError, ValueError) as error:
        # Registry misses and bad grid values should read as usage errors,
        # not tracebacks.
        message = error.args[0] if error.args else error
        raise SystemExit(f"repro sweep: {message}")
    result = sweep.run(workers=arguments.workers)
    if arguments.json_path:
        result.to_json(arguments.json_path)
    if arguments.csv_path:
        result.to_csv(arguments.csv_path)
    table_rows = [
        [
            str(row.tags.get("scenario", "")),
            ", ".join(
                f"{key}={value}"
                for key, value in row.tags.items()
                if key not in ("scenario", "seed")
            ),
            "-" if row.efficiency is None else format_percentage(row.efficiency),
        ]
        for row in result.rows
    ]
    emit_block(
        f"Sweep — {arguments.workload} ({len(result)} runs, {arguments.workers} workers)",
        format_table(["scenario", "cell", "efficiency"], table_rows),
    )
    return 0


def _command_serve(arguments: argparse.Namespace) -> int:
    from .service import ServiceConfig, ServiceServer

    idle_timeout = arguments.idle_timeout if arguments.idle_timeout > 0 else None
    retention = arguments.retention if arguments.retention > 0 else None
    if arguments.resume and arguments.persist_dir is None:
        raise SystemExit("--resume requires --persist DIR (the journal to replay)")
    server = ServiceServer(
        ServiceConfig(
            host=arguments.host,
            port=arguments.port,
            workers=arguments.workers,
            idle_timeout=idle_timeout,
            retention_default=retention,
            max_sessions=arguments.max_sessions,
            trace_dir=arguments.trace_out,
            persist_dir=arguments.persist_dir,
            resume=arguments.resume,
        )
    )
    server.start()
    persisted = (
        f" persist={arguments.persist_dir}" if arguments.persist_dir else ""
    )
    emit_block(
        "repro service",
        f"serving at {server.url} (POST JSON-RPC 2.0 to {server.url}/rpc)\n"
        f"workers={arguments.workers} idle_timeout={idle_timeout} "
        f"retention_default={retention} max_sessions={arguments.max_sessions}"
        f"{persisted}\n"
        "stop with Ctrl-C or the service.shutdown RPC method",
    )
    try:
        server.wait()
    except KeyboardInterrupt:
        server.shutdown()
    return 0


def _command_loadgen(arguments: argparse.Namespace) -> int:
    from pathlib import Path

    from .service import (
        LoadgenConfig,
        ServiceConfig,
        ServiceServer,
        format_report,
        run_loadgen,
        write_bench,
    )

    server: Optional[ServiceServer] = None
    try:
        url = arguments.url
        if url is None:
            server = ServiceServer(
                ServiceConfig(port=0, workers=4, idle_timeout=None)
            ).start()
            url = server.url
        fields: Dict[str, Any] = {
            "url": url,
            "clients": arguments.clients,
            "requests_per_client": arguments.requests,
            "mode": arguments.mode,
            "arrival": arguments.arrival,
            "rate": arguments.rate,
            "mix": arguments.mix,
            "seed": arguments.seed if arguments.seed is not None else 0,
            "smoke": arguments.smoke,
            "p95_ceiling_ms": arguments.p95_ceiling,
        }
        for name, value in _parse_overrides(arguments.overrides).items():
            if name not in fields:
                raise SystemExit(
                    f"repro loadgen: unknown --set field {name!r}; known: {sorted(fields)}"
                )
            fields[name] = value
        try:
            config = LoadgenConfig(**fields)
        except ValueError as error:
            raise SystemExit(f"repro loadgen: {error}")
        report = run_loadgen(config)
        emit_block("Load generator", format_report(report))
        if arguments.output:
            write_bench(report, Path(arguments.output))
            emit_block("Bench", f"wrote {arguments.output}")
        if arguments.smoke:
            return 0 if report["passed"] else 1
        return 0
    finally:
        if server is not None:
            server.shutdown()


def _command_list(arguments: argparse.Namespace) -> int:
    from .service.catalog import registry_catalog

    catalog = registry_catalog()
    titles = {
        "scenarios": "Registered scenarios",
        "workloads": "Registered workloads",
        "adversaries": "Registered adversaries",
        "topologies": "Registered topologies",
        "experiments": "Registered experiments",
        "probes": "Registered probes",
    }

    def lines(section: str) -> str:
        rendered = "\n".join(
            f"{entry['name']}  ({entry['description']})" for entry in catalog[section]
        )
        return rendered or "(none registered)"

    selected = [section for section in titles if getattr(arguments, section, False)]
    for section in selected or titles:
        emit_block(titles[section], lines(section))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    arguments = build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "claims": _command_claims,
        "trace": _command_trace,
        "figure2": _command_figure2,
        "market": _command_market,
        "sequential": _command_sequential,
        "frontrunning": _command_frontrunning,
        "oracle": _command_oracle,
        "ablation": _command_ablation,
        "attack-matrix": _command_attack_matrix,
        "sweep": _command_sweep,
        "serve": _command_serve,
        "loadgen": _command_loadgen,
        "list": _command_list,
    }
    return handlers[arguments.command](arguments)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
