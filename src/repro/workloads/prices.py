"""Price processes driving the ``set`` transactions of the market workload.

"The price changes frequently and unpredictably due to market dynamics"
(Section II-F).  Two seeded processes are provided: a bounded random walk
(the default, resembling a traded asset) and a uniform re-draw (maximally
unpredictable).  Both are deterministic under a seed so every experiment is
repeatable.
"""

from __future__ import annotations

import random
from typing import Iterator, Protocol

__all__ = ["PriceProcess", "RandomWalkPrices", "UniformPrices", "ConstantPrices"]


class PriceProcess(Protocol):
    """Yields successive prices for the price setter."""

    def next_price(self) -> int:
        ...


class RandomWalkPrices:
    """A bounded integer random walk: price moves by ±[1, max_step] each set."""

    def __init__(
        self,
        initial: int = 100,
        max_step: int = 5,
        minimum: int = 1,
        maximum: int = 10_000,
        seed: int = 0,
    ) -> None:
        if initial < minimum or initial > maximum:
            raise ValueError("initial price must lie within [minimum, maximum]")
        if max_step <= 0:
            raise ValueError("max_step must be positive")
        self.current = initial
        self.max_step = max_step
        self.minimum = minimum
        self.maximum = maximum
        self._rng = random.Random(seed)

    def next_price(self) -> int:
        step = self._rng.randint(1, self.max_step)
        if self._rng.random() < 0.5:
            step = -step
        self.current = min(self.maximum, max(self.minimum, self.current + step))
        return self.current


class UniformPrices:
    """Each set draws an independent uniform price in [minimum, maximum]."""

    def __init__(self, minimum: int = 1, maximum: int = 1_000, seed: int = 0) -> None:
        if minimum > maximum:
            raise ValueError("minimum must not exceed maximum")
        self.minimum = minimum
        self.maximum = maximum
        self._rng = random.Random(seed)

    def next_price(self) -> int:
        return self._rng.randint(self.minimum, self.maximum)


class ConstantPrices:
    """The price never changes — useful for sanity tests (every buy should succeed)."""

    def __init__(self, price: int = 100) -> None:
        self.price = price

    def next_price(self) -> int:
        return self.price
