"""Arrival processes: when workload events (buys, queries) are submitted.

The paper submits buys at a fixed one-second interval; real client traffic
is rarely that regular.  These processes generate submission times for a
given number of events so experiments can explore regular, Poisson, and
bursty arrivals (the submission-interval ablation uses the regular process;
the others are available for sensitivity studies).
"""

from __future__ import annotations

import random
from typing import List, Protocol

__all__ = [
    "ArrivalProcess",
    "RegularArrivals",
    "PoissonArrivals",
    "BurstyArrivals",
]


class ArrivalProcess(Protocol):
    """Generates the submission times for ``count`` events starting at ``start``."""

    def times(self, count: int, start: float) -> List[float]:
        ...


class RegularArrivals:
    """One event every ``interval`` seconds — the paper's submission pattern."""

    def __init__(self, interval: float = 1.0) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval

    def times(self, count: int, start: float) -> List[float]:
        if count < 0:
            raise ValueError("count must be non-negative")
        return [start + index * self.interval for index in range(count)]


class PoissonArrivals:
    """Exponentially distributed gaps with the given mean (memoryless clients)."""

    def __init__(self, mean_interval: float = 1.0, seed: int = 0) -> None:
        if mean_interval <= 0:
            raise ValueError("mean interval must be positive")
        self.mean_interval = mean_interval
        self._rng = random.Random(seed)

    def times(self, count: int, start: float) -> List[float]:
        if count < 0:
            raise ValueError("count must be non-negative")
        current = start
        times: List[float] = []
        for _ in range(count):
            current += self._rng.expovariate(1.0 / self.mean_interval)
            times.append(current)
        return times


class BurstyArrivals:
    """Events arrive in bursts: ``burst_size`` events packed tightly, then a gap.

    Models the thundering-herd pattern of the paper's motivating example
    ("if 100 orders are received at the published price near the start of a
    block interval"): many clients react to the same price publication at
    nearly the same time.
    """

    def __init__(
        self,
        burst_size: int = 10,
        gap: float = 10.0,
        spread: float = 0.5,
        seed: int = 0,
    ) -> None:
        if burst_size <= 0:
            raise ValueError("burst size must be positive")
        if gap <= 0 or spread < 0:
            raise ValueError("gap must be positive and spread non-negative")
        self.burst_size = burst_size
        self.gap = gap
        self.spread = spread
        self._rng = random.Random(seed)

    def times(self, count: int, start: float) -> List[float]:
        if count < 0:
            raise ValueError("count must be non-negative")
        times: List[float] = []
        burst_start = start
        emitted = 0
        while emitted < count:
            for _ in range(min(self.burst_size, count - emitted)):
                offset = self._rng.uniform(0.0, self.spread) if self.spread else 0.0
                times.append(burst_start + offset)
                emitted += 1
            burst_start += self.gap
        return sorted(times)
