"""Workload generators: arrival processes, price processes, and the market workload."""

from .arrivals import ArrivalProcess, BurstyArrivals, PoissonArrivals, RegularArrivals
from .market import BUY_LABEL, MarketWorkload, MarketWorkloadConfig, SET_LABEL
from .prices import ConstantPrices, PriceProcess, RandomWalkPrices, UniformPrices

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "PoissonArrivals",
    "RegularArrivals",
    "BUY_LABEL",
    "SET_LABEL",
    "MarketWorkload",
    "MarketWorkloadConfig",
    "ConstantPrices",
    "PriceProcess",
    "RandomWalkPrices",
    "UniformPrices",
]
