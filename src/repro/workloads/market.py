"""The dynamic-pricing market workload of the paper's evaluation (Section V).

Reproduces the experimental shape exactly: each data point is 100 ``buy``
transactions submitted at a fixed interval (one second in the paper), with
the ``set`` transactions "evenly spaced over the processing of the buys";
the number of sets is varied to sweep the buy:set ratio from 1:1 to 20:1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..clients.market import Buyer, PriceSetter
from ..core.metrics import MetricsCollector
from ..net.sim import Simulator
from .prices import PriceProcess, RandomWalkPrices

__all__ = ["MarketWorkloadConfig", "MarketWorkload"]

BUY_LABEL = "buy"
SET_LABEL = "set"


@dataclass
class MarketWorkloadConfig:
    """Shape of one Figure-2 data point."""

    num_buys: int = 100
    buys_per_set: float = 1.0
    """The READ-UNCOMMITTED/WRITE ratio of Figure 2 (1.0 = 1:1 … 20.0 = 20:1)."""
    submission_interval: float = 1.0
    """Seconds between successive buy submissions (the paper used one second)."""
    start_time: float = 30.0
    """When the first buy is submitted; must leave room for the contract
    deployment and the opening price to be committed."""
    initial_price: int = 100
    warmup_sets: int = 1
    """Sets submitted before trading opens (the opening price)."""

    def __post_init__(self) -> None:
        if self.num_buys <= 0:
            raise ValueError("num_buys must be positive")
        if self.buys_per_set <= 0:
            raise ValueError("buys_per_set must be positive")
        if self.submission_interval <= 0:
            raise ValueError("submission_interval must be positive")

    @property
    def num_sets(self) -> int:
        """Number of price changes during the buy window."""
        return max(1, round(self.num_buys / self.buys_per_set))

    @property
    def buy_window(self) -> float:
        """Seconds spanned by the buy submissions."""
        return self.num_buys * self.submission_interval


class MarketWorkload:
    """Schedules the buy/set submission events onto a simulator."""

    def __init__(
        self,
        config: MarketWorkloadConfig,
        setter: PriceSetter,
        buyers: Sequence[Buyer],
        metrics: MetricsCollector,
        prices: Optional[PriceProcess] = None,
    ) -> None:
        if not buyers:
            raise ValueError("at least one buyer is required")
        self.config = config
        self.setter = setter
        self.buyers = list(buyers)
        self.metrics = metrics
        self.prices = prices or RandomWalkPrices(initial=config.initial_price)
        self.buy_times: List[float] = []
        self.set_times: List[float] = []

    # -- scheduling --------------------------------------------------------------------

    def schedule(self, simulator: Simulator, deploy_time: float = 0.2) -> None:
        """Schedule every workload event onto ``simulator``.

        ``deploy_time`` is when the opening price transactions go out; the
        Sereth contract itself is deployed by the experiment runner before
        this workload is scheduled.
        """
        config = self.config
        # Opening price(s), submitted well before trading so they commit first.
        for warmup_index in range(config.warmup_sets):
            at = deploy_time + 0.1 * (warmup_index + 1)
            simulator.schedule_at(at, self._make_set_event(config.initial_price))

        # Buys: one every submission_interval, buyers round-robin.
        for buy_index in range(config.num_buys):
            at = config.start_time + buy_index * config.submission_interval
            buyer = self.buyers[buy_index % len(self.buyers)]
            self.buy_times.append(at)
            simulator.schedule_at(at, self._make_buy_event(buyer))

        # Sets: evenly spaced over the processing of the buys.
        spacing = config.buy_window / config.num_sets
        for set_index in range(config.num_sets):
            # Offset by half a spacing so sets interleave the buys rather than
            # coinciding with the first one.
            at = config.start_time + (set_index + 0.5) * spacing
            self.set_times.append(at)
            simulator.schedule_at(at, self._make_set_event(None))

    @property
    def end_of_submissions(self) -> float:
        """Time of the last scheduled submission."""
        last_buy = self.config.start_time + self.config.buy_window
        return max([last_buy] + self.set_times + self.buy_times)

    # -- event factories -----------------------------------------------------------------

    def _make_set_event(self, fixed_price: Optional[int]):
        def fire() -> None:
            price = fixed_price if fixed_price is not None else self.prices.next_price()
            transaction = self.setter.set_price(price)
            self.metrics.watch(transaction, SET_LABEL, submitted_at=transaction.submitted_at)

        return fire

    def _make_buy_event(self, buyer: Buyer):
        def fire() -> None:
            transaction = buyer.buy()
            self.metrics.watch(transaction, BUY_LABEL, submitted_at=transaction.submitted_at)

        return fire
