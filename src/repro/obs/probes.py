"""The counter/gauge probe registry behind ``obs.snapshot()``.

A *probe* is a named zero-argument callable returning a flat, JSON-ready
dict with sorted keys.  The registry subsumes the engine's scattered
``*_stats()`` surfaces: the old free functions still exist (they are now
thin wrappers the probes call), but one ``snapshot()`` reads them all.

Two scopes exist:

* **process-global probes** live here and read process-wide counters
  (the keccak digest cache, the wire-encoding memo, live CoW state
  instances).  They are registered at import time via lazy imports so
  this module never drags the chain/crypto stack in eagerly;
* **per-trial probes** (this run's network counters, propagation
  percentiles, head-state RSS) are registered on the active
  :class:`~repro.obs.tracer.Tracer` by the engine, and appear merged into
  ``Tracer.snapshot()`` alongside the global ones.

``register_probe`` is public API — the README's "registering a custom
probe" walkthrough targets exactly this function.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

__all__ = ["register_probe", "unregister_probe", "probe_names", "snapshot"]

ProbeFn = Callable[[], Dict[str, Any]]

_REGISTRY: Dict[str, ProbeFn] = {}


def register_probe(name: str, probe: ProbeFn) -> None:
    """Register (or replace) the process-global probe ``name``.

    ``probe`` must return a JSON-serialisable dict; it is called lazily,
    only when someone snapshots, so it may be arbitrarily cheap to
    register and moderately expensive to read.
    """
    if not name:
        raise ValueError("probe name must be non-empty")
    _REGISTRY[name] = probe


def unregister_probe(name: str) -> None:
    """Remove a probe registered with :func:`register_probe` (missing ok)."""
    _REGISTRY.pop(name, None)


def probe_names() -> List[str]:
    """All registered process-global probe names, sorted."""
    return sorted(_REGISTRY)


def snapshot() -> Dict[str, Dict[str, Any]]:
    """Read every registered probe: ``{name: {counter: value, ...}}``.

    Names and each probe's keys come back sorted, so the snapshot
    round-trips through ``json.dumps`` byte-stably.
    """
    return {
        name: {key: reading[key] for key in sorted(reading)}
        for name, reading in ((name, _REGISTRY[name]()) for name in sorted(_REGISTRY))
    }


# -- built-in probes: the pre-existing *_stats() surfaces, adopted ----------------


def _wire_cache_probe() -> Dict[str, Any]:
    """Wire-encoding memo occupancy and hit/miss counters."""
    from ..chain.wire import wire_cache_stats

    return wire_cache_stats()


def _hash_cache_probe() -> Dict[str, Any]:
    """Keccak LRU cache hit/miss counters."""
    from ..crypto.keccak import hash_cache_stats

    return hash_cache_stats()


def _live_state_probe() -> Dict[str, Any]:
    """Live AccountState instances (the retention window's working set)."""
    from ..chain.state import live_state_stats

    return live_state_stats()


register_probe("wire_cache", _wire_cache_probe)
register_probe("hash_cache", _hash_cache_probe)
register_probe("live_state", _live_state_probe)
