"""``repro.obs`` — unified tracing, probe registry, and profiling hooks.

Three layers, cheapest first:

* :mod:`repro.obs.runtime` — the process-global ``TRACER`` slot every
  instrumented call site checks (one branch when tracing is off);
* :mod:`repro.obs.tracer` — the per-trial :class:`Tracer` recording typed
  events and phase spans, exportable as JSONL and Chrome-trace JSON;
* :mod:`repro.obs.probes` — the counter/gauge registry subsuming the
  engine's scattered ``*_stats()`` surfaces behind one ``snapshot()``;
* :mod:`repro.obs.profile` — folding per-trial phase timings into a
  sweep-wide ranked hot-phase table.

Enable per run with ``SimulationBuilder.observe(...)`` /
``SimulationSpec(observe=True, trace_dir=...)``, or for a whole planned
grid with ``repro trace <experiment>``.
"""

from .probes import probe_names, register_probe, snapshot, unregister_probe
from .profile import fold_phases, format_hot_phase_table, hot_phase_frame
from .runtime import activate, active_tracer, deactivate
from .tracer import EVENT_KINDS, PHASES, Tracer

# NOTE: runtime.TRACER is deliberately not re-exported — a from-import here
# would freeze its import-time value.  Hot paths read ``runtime.TRACER`` as a
# module attribute; everyone else uses ``active_tracer()``.

__all__ = [
    "EVENT_KINDS",
    "PHASES",
    "Tracer",
    "activate",
    "active_tracer",
    "deactivate",
    "fold_phases",
    "format_hot_phase_table",
    "hot_phase_frame",
    "probe_names",
    "register_probe",
    "snapshot",
    "unregister_probe",
]
