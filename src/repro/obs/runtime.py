"""The one-branch hot path of the observability layer.

Every instrumented call site in the engine pays exactly one module-attribute
load plus one ``is not None`` check when tracing is off::

    from ..obs import runtime as obs

    tracer = obs.TRACER
    if tracer is not None:
        tracer.event("pool.admit", ...)

This module therefore imports *nothing* from the rest of the package — the
chain, network, and pool modules import it, and any dependency in the other
direction would be a cycle.

Exactly one tracer can be active per process at a time, which matches how
trials actually execute: the engine activates its per-trial tracer while a
traced simulation runs (sweep workers run one trial at a time) and
deactivates it in the run's ``finally``.  Activation is last-wins; the
default state — and the state every untraced run leaves behind — is
``TRACER is None``.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["TRACER", "activate", "deactivate", "active_tracer"]

TRACER: Optional[object] = None
"""The process-wide active tracer, or ``None`` (tracing off, the default)."""


def activate(tracer: object) -> None:
    """Install ``tracer`` as the process-wide active tracer (last wins)."""
    global TRACER
    TRACER = tracer


def deactivate() -> None:
    """Return the process to the untraced (zero-cost) state."""
    global TRACER
    TRACER = None


def active_tracer() -> Optional[object]:
    """The active tracer, if any (for callers outside the hot path)."""
    return TRACER
