"""The per-trial Tracer: typed events, phase spans, and their exporters.

One :class:`Tracer` records everything one simulation trial observed:

* **typed events** — a closed vocabulary (:data:`EVENT_KINDS`) covering the
  transaction lifecycle (submit → gossip hop → pool admit/replace/evict →
  block include → receipt), the block lifecycle (build/import/reject/orphan/
  range-sync), churn, fault injections, and adversary decisions.  Each event carries the
  simulation clock (deterministic) and a monotonic wall clock (not);
* **phase spans** — lightweight timers around the engine's hot phases
  (:data:`PHASES`): block assembly, import, validation replay, transaction
  application, trie commitment, wire encoding, and metrics folding.

Events and spans share one sequence counter, so the merged, seq-ordered
stream is a total order of everything the trial did — and, wall-time fields
aside, that stream is a pure function of the spec (the property
``tests/obs/test_trace_determinism.py`` locks in).

Exports: :meth:`Tracer.to_jsonl` (one JSON object per line, seq-ordered)
and :meth:`Tracer.to_chrome_trace` (the Chrome trace-event format, openable
in ``chrome://tracing`` or https://ui.perfetto.dev — events on a sim-time
process, phase spans on a wall-time process, since the two clocks do not
share an axis).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from .probes import snapshot as _global_snapshot

__all__ = ["EVENT_KINDS", "PHASES", "Tracer"]

EVENT_KINDS = frozenset(
    {
        "tx.submit",
        "tx.include",
        "tx.receipt",
        "gossip.tx",
        "gossip.block",
        "pool.admit",
        "pool.replace",
        "pool.evict",
        "block.build",
        "block.import",
        "block.reject",
        "block.orphan",
        "sync.range",
        "churn",
        "adversary.attack",
        # Fault injection (emitted by repro.faults.FaultInjector).
        "fault.inject",
        "fault.crash",
        "fault.restart",
        # Service-facade request lifecycle (emitted by repro.service.server).
        "rpc.request",
        "rpc.error",
        "session.create",
        "session.close",
        "session.evict",
    }
)
"""The typed event vocabulary.  A closed set: a typo'd kind at a call site
is a bug the first traced test run should catch, not a new silent stream."""

PHASES = (
    "mine",
    "block_import",
    "validate",
    "state_apply",
    "trie_commit",
    "gossip_encode",
    "metrics_fold",
)
"""Every instrumented phase timer, hottest-loop first.  ``validate`` only
fires when the block-apply cache misses (tampered blocks, divergent
lineages); all others occur on every default run."""

_MICROS = 1_000_000  # Chrome trace timestamps are microseconds.


def _jsonable_value(value: Any) -> Any:
    """Render one event-field value JSON-ready (hashes become hex strings)."""
    if isinstance(value, bytes):
        return "0x" + value.hex()
    if isinstance(value, (list, tuple)):
        return [_jsonable_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable_value(item) for key, item in value.items()}
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


class Tracer:
    """Structured event + phase recorder for one simulation trial."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        max_events: int = 1_000_000,
    ) -> None:
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._wall_origin = time.perf_counter()
        self._seq = 0
        self.max_events = max_events
        self.dropped_events = 0
        # Events: (seq, kind, sim_time, wall_time, args)
        self._events: List[Tuple[int, str, float, float, Dict[str, Any]]] = []
        # Spans:  (seq, phase, sim_time, wall_start, wall_duration)
        self._spans: List[Tuple[int, str, float, float, float]] = []
        self._phase_totals: Dict[str, List[float]] = {}  # phase -> [calls, seconds]
        self._probes: Dict[str, Callable[[], Dict[str, Any]]] = {}
        self._final_snapshot: Optional[Dict[str, Dict[str, Any]]] = None

    # -- recording ----------------------------------------------------------------

    def event(self, kind: str, **fields: Any) -> None:
        """Record one typed event at the current sim/wall time.

        Field values are stored as passed and sanitized lazily at export —
        every call site hands in a fresh kwargs dict of (effectively)
        immutable values, so recording stays a tuple append on the hot path.
        """
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown trace event kind {kind!r}; expected one of {sorted(EVENT_KINDS)}"
            )
        if len(self._events) >= self.max_events:
            self.dropped_events += 1
            return
        self._seq += 1
        self._events.append(
            (self._seq, kind, self._clock(), time.perf_counter() - self._wall_origin, fields)
        )

    def phase(self, name: str, wall_start: float) -> None:
        """Close a phase span opened at ``wall_start`` (a ``perf_counter()``).

        Call sites sample ``time.perf_counter()`` themselves before the
        phase body (only when a tracer is active) and hand it in here after,
        so the untraced path never touches the clock.
        """
        end = time.perf_counter()
        self._seq += 1
        self._spans.append(
            (self._seq, name, self._clock(), wall_start - self._wall_origin, end - wall_start)
        )
        total = self._phase_totals.get(name)
        if total is None:
            self._phase_totals[name] = [1, end - wall_start]
        else:
            total[0] += 1
            total[1] += end - wall_start

    # -- probes -------------------------------------------------------------------

    def register_probe(self, name: str, probe: Callable[[], Dict[str, Any]]) -> None:
        """Attach a per-trial probe (e.g. this run's network counters)."""
        self._probes[name] = probe

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Every probe's current reading: process-global probes from the
        registry plus this trial's own, merged under sorted names."""
        readings = dict(_global_snapshot())
        for name in sorted(self._probes):
            readings[name] = _jsonable_value(self._probes[name]())
        return {name: readings[name] for name in sorted(readings)}

    def finalize(self) -> None:
        """Freeze the probe snapshot (called by the engine before the
        per-trial caches are cleared, so counters are still meaningful)."""
        self._final_snapshot = self.snapshot()

    # -- digests ------------------------------------------------------------------

    def event_counts(self) -> Dict[str, int]:
        """Deterministic per-kind event counts, sorted by kind."""
        counts: Dict[str, int] = {}
        for _seq, kind, _sim, _wall, _args in self._events:
            counts[kind] = counts.get(kind, 0) + 1
        return {kind: counts[kind] for kind in sorted(counts)}

    def phase_totals(self) -> Dict[str, Dict[str, float]]:
        """Aggregated ``{phase: {calls, wall_seconds}}``, sorted by phase."""
        return {
            name: {"calls": self._phase_totals[name][0], "wall_seconds": self._phase_totals[name][1]}
            for name in sorted(self._phase_totals)
        }

    def summary(self) -> Dict[str, Any]:
        """The JSON-ready digest ``SimulationResult.summary()`` embeds under
        its (emit-only-when-enabled) ``observability`` key."""
        return {
            "events": len(self._events),
            "dropped_events": self.dropped_events,
            "event_counts": self.event_counts(),
            "phases": self.phase_totals(),
            "probes": self._final_snapshot if self._final_snapshot is not None else self.snapshot(),
        }

    # -- exports ------------------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """The merged event + span stream, seq-ordered, as plain dicts."""
        rows: List[Dict[str, Any]] = []
        for seq, kind, sim_time, wall_time, args in self._events:
            rows.append(
                {
                    "seq": seq,
                    "kind": kind,
                    "sim_time": round(sim_time, 9),
                    "wall_time": wall_time,
                    "args": {key: _jsonable_value(value) for key, value in args.items()},
                }
            )
        for seq, name, sim_time, wall_start, wall_duration in self._spans:
            rows.append(
                {
                    "seq": seq,
                    "kind": "phase",
                    "phase": name,
                    "sim_time": round(sim_time, 9),
                    "wall_start": wall_start,
                    "wall_duration": wall_duration,
                }
            )
        rows.sort(key=lambda row: row["seq"])
        return rows

    def to_jsonl(self) -> str:
        """One JSON object per line; strip the ``wall_*`` keys to get the
        deterministic event sequence the determinism tests compare."""
        return "".join(
            json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
            for row in self.records()
        )

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The run as Chrome trace-event JSON (``chrome://tracing``/Perfetto).

        Two trace "processes" because the run has two clocks: pid 1 plots
        the typed events on the *simulation* clock (one thread per actor),
        pid 2 plots the phase spans on the *wall* clock.
        """
        trace_events: List[Dict[str, Any]] = [
            {"ph": "M", "pid": 1, "tid": 0, "name": "process_name", "args": {"name": "sim-time events"}},
            {"ph": "M", "pid": 2, "tid": 0, "name": "process_name", "args": {"name": "wall-time phases"}},
            {"ph": "M", "pid": 2, "tid": 1, "name": "thread_name", "args": {"name": "phases"}},
        ]
        actor_tids: Dict[str, int] = {}
        for seq, kind, sim_time, _wall_time, args in self._events:
            actor = str(args.get("peer") or args.get("to") or args.get("adversary") or "sim")
            tid = actor_tids.get(actor)
            if tid is None:
                tid = actor_tids[actor] = len(actor_tids) + 1
                trace_events.append(
                    {"ph": "M", "pid": 1, "tid": tid, "name": "thread_name", "args": {"name": actor}}
                )
            trace_events.append(
                {
                    "ph": "i",
                    "ts": sim_time * _MICROS,
                    "pid": 1,
                    "tid": tid,
                    "name": kind,
                    "cat": kind.split(".", 1)[0],
                    "s": "t",
                    "args": dict(
                        {key: _jsonable_value(value) for key, value in args.items()},
                        seq=seq,
                    ),
                }
            )
        for seq, name, sim_time, wall_start, wall_duration in self._spans:
            trace_events.append(
                {
                    "ph": "X",
                    "ts": wall_start * _MICROS,
                    "dur": wall_duration * _MICROS,
                    "pid": 2,
                    "tid": 1,
                    "name": name,
                    "cat": "phase",
                    "args": {"seq": seq, "sim_time": sim_time},
                }
            )
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write(self, directory: Union[str, Path], stem: str) -> Dict[str, Path]:
        """Write ``<stem>.jsonl`` and ``<stem>.trace.json`` under ``directory``."""
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        jsonl_path = target / f"{stem}.jsonl"
        chrome_path = target / f"{stem}.trace.json"
        jsonl_path.write_text(self.to_jsonl(), encoding="utf-8")
        chrome_path.write_text(
            json.dumps(self.to_chrome_trace(), sort_keys=True) + "\n", encoding="utf-8"
        )
        return {"jsonl": jsonl_path, "chrome": chrome_path}
