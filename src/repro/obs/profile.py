"""Folding per-trial phase timings into a sweep-wide hot-phase table.

Each traced trial's ``summary()["observability"]["phases"]`` holds
``{phase: {calls, wall_seconds}}``.  :func:`fold_phases` sums those maps
across a sweep's rows; :func:`hot_phase_frame` turns the fold into a
:class:`~repro.api.frame.ResultFrame` ranked by total wall time — the
table that names the next optimisation targets with data instead of
ad-hoc profiler runs.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping

__all__ = ["fold_phases", "hot_phase_frame", "format_hot_phase_table"]


def fold_phases(summaries: Iterable[Mapping[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Sum ``{phase: {calls, wall_seconds}}`` across trial summaries.

    Accepts either full ``SimulationResult.summary()`` dicts (phases are
    pulled from their ``observability`` key) or bare observability dicts.
    Untraced rows (no observability key) simply contribute nothing.
    """
    totals: Dict[str, List[float]] = {}
    for summary in summaries:
        obs = summary.get("observability", summary)
        for phase, timing in (obs.get("phases") or {}).items():
            total = totals.setdefault(phase, [0, 0.0])
            total[0] += timing.get("calls", 0)
            total[1] += timing.get("wall_seconds", 0.0)
    return {
        phase: {"calls": totals[phase][0], "wall_seconds": totals[phase][1]}
        for phase in sorted(totals)
    }


def hot_phase_frame(summaries: Iterable[Mapping[str, Any]]) -> "Any":
    """Rank the folded phases hottest-first as a ``ResultFrame``.

    Columns: ``phase``, ``calls``, ``wall_seconds``, ``share`` (fraction of
    all instrumented wall time), ``us_per_call``.
    """
    from ..api.frame import ResultFrame

    folded = fold_phases(summaries)
    grand_total = sum(timing["wall_seconds"] for timing in folded.values())
    records = [
        {
            "phase": phase,
            "calls": timing["calls"],
            "wall_seconds": round(timing["wall_seconds"], 6),
            "share": round(timing["wall_seconds"] / grand_total, 4) if grand_total else 0.0,
            "us_per_call": round(1e6 * timing["wall_seconds"] / timing["calls"], 2)
            if timing["calls"]
            else 0.0,
        }
        for phase, timing in folded.items()
    ]
    records.sort(key=lambda row: (-row["wall_seconds"], row["phase"]))
    return ResultFrame.from_records(records)


def format_hot_phase_table(summaries: Iterable[Mapping[str, Any]]) -> str:
    """The hot-phase ranking as a printable markdown table."""
    frame = hot_phase_frame(summaries)
    if not len(frame):
        return "(no phase timings recorded — was tracing enabled?)"
    return frame.to_markdown()
