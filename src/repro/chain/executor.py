"""Execution interface between the chain layer and the contract engine.

The blockchain applies transactions through a :class:`TransactionExecutor`;
the concrete implementation lives in :mod:`repro.evm.engine`.  Keeping the
interface here avoids a circular dependency and lets tests substitute
simple executors (e.g. value-transfer-only) when contract semantics are not
under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..crypto.addresses import Address, ZERO_ADDRESS
from .receipt import Receipt
from .state import WorldState
from .transaction import Transaction

__all__ = ["BlockContext", "TransactionExecutor", "ValueTransferExecutor"]


@dataclass(frozen=True)
class BlockContext:
    """Block-level execution environment visible to contracts."""

    number: int
    timestamp: float
    miner: Address = ZERO_ADDRESS
    gas_limit: int = 8_000_000
    difficulty: int = 1


class TransactionExecutor(Protocol):
    """Anything that can apply a transaction to a world state."""

    def execute(
        self, state: WorldState, transaction: Transaction, block: BlockContext
    ) -> Receipt:
        """Apply ``transaction`` to ``state`` and return its receipt.

        Implementations must leave ``state`` unchanged (other than nonce and
        gas payment) when the transaction fails, and must never raise for a
        transaction that is structurally valid: failures are reported in the
        receipt so the transaction is still *included* in the block.
        """
        ...


class ValueTransferExecutor:
    """Minimal executor handling only plain value transfers.

    Used by chain-layer unit tests; the full contract engine is
    :class:`repro.evm.engine.ExecutionEngine`.
    """

    def execute(
        self, state: WorldState, transaction: Transaction, block: BlockContext
    ) -> Receipt:
        intrinsic = transaction.intrinsic_gas()
        fee = intrinsic * transaction.gas_price
        sender_balance = state.get_balance(transaction.sender)
        if transaction.nonce != state.get_nonce(transaction.sender):
            return Receipt(
                transaction_hash=transaction.hash,
                success=False,
                gas_used=0,
                error="nonce mismatch",
            )
        state.increment_nonce(transaction.sender)
        if sender_balance < transaction.value + fee or intrinsic > transaction.gas_limit:
            return Receipt(
                transaction_hash=transaction.hash,
                success=False,
                gas_used=min(intrinsic, transaction.gas_limit),
                error="insufficient balance or gas",
            )
        state.subtract_balance(transaction.sender, transaction.value + fee)
        if transaction.to is not None:
            state.add_balance(transaction.to, transaction.value)
        state.add_balance(block.miner, fee)
        return Receipt(
            transaction_hash=transaction.hash,
            success=True,
            gas_used=intrinsic,
        )
