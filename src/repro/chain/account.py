"""Account records for the world state.

An account is either externally owned (EOA: has a nonce and balance) or a
contract account (additionally holds code — here, the registered contract
class name — and a storage mapping of 32-byte slots to 32-byte values).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..crypto.addresses import Address
from ..crypto.keccak import keccak256
from ..encoding.rlp import rlp_encode

__all__ = ["Account", "StorageSlot"]

StorageSlot = bytes
"""A 32-byte storage key."""


@dataclass
class Account:
    """Mutable account state stored in the :class:`~repro.chain.state.WorldState`."""

    nonce: int = 0
    balance: int = 0
    code: Optional[str] = None
    storage: Dict[StorageSlot, bytes] = field(default_factory=dict)

    @property
    def is_contract(self) -> bool:
        """True if this account holds contract code."""
        return self.code is not None

    def copy(self) -> "Account":
        """Return a deep copy (storage dict included, encoding memos not)."""
        return Account(
            nonce=self.nonce,
            balance=self.balance,
            code=self.code,
            storage=dict(self.storage),
        )

    def drop_encoding_cache(self) -> None:
        """Invalidate the memoised RLP encoding before a mutation.

        :meth:`WorldState.touch` calls this on every account it hands out
        for writing; accounts shared between copy-on-write states are never
        mutated, which is what makes the memo safe.
        """
        self.__dict__.pop("_encoded", None)
        self.__dict__.pop("_storage_root", None)

    def storage_root(self) -> bytes:
        """Deterministic commitment to the account's storage contents."""
        cached = self.__dict__.get("_storage_root")
        if cached is None:
            items = sorted(self.storage.items())
            cached = keccak256(rlp_encode([[key, value] for key, value in items]))
            self.__dict__["_storage_root"] = cached
        return cached

    def encode(self) -> bytes:
        """RLP-encode the account for inclusion in the state root (memoised;
        the memo is dropped whenever the account is touched for mutation)."""
        cached = self.__dict__.get("_encoded")
        if cached is None:
            code_hash = keccak256(self.code.encode("utf-8")) if self.code else keccak256(b"")
            cached = rlp_encode([self.nonce, self.balance, self.storage_root(), code_hash])
            self.__dict__["_encoded"] = cached
        return cached

    def get_storage(self, slot: StorageSlot) -> bytes:
        """Read a storage slot; absent slots read as 32 zero bytes."""
        return self.storage.get(slot, b"\x00" * 32)

    def set_storage(self, slot: StorageSlot, value: bytes) -> None:
        """Write a storage slot.  Writing all-zero deletes the slot."""
        if len(slot) != 32 or len(value) != 32:
            raise ValueError("storage slots and values must be 32 bytes")
        self.drop_encoding_cache()
        if value == b"\x00" * 32:
            self.storage.pop(slot, None)
        else:
            self.storage[slot] = value
