"""Transaction receipts and event logs.

Receipts record the outcome of executing a transaction inside a block.  The
paper's central observation is that *failed* transactions are still included
in the block (they consume space and raw throughput) but make no state
change; the receipt's ``success`` flag is what the state-throughput metric
counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..crypto.addresses import Address
from ..crypto.keccak import keccak256
from ..encoding.rlp import rlp_encode

__all__ = ["LogEntry", "Receipt"]


@dataclass(frozen=True)
class LogEntry:
    """An event emitted by a contract during execution."""

    address: Address
    topics: Tuple[bytes, ...]
    data: bytes = b""

    def encode(self) -> bytes:
        return rlp_encode([self.address, list(self.topics), self.data])


@dataclass
class Receipt:
    """Execution outcome of one transaction within a block."""

    transaction_hash: bytes
    success: bool
    gas_used: int
    logs: List[LogEntry] = field(default_factory=list)
    error: Optional[str] = None
    return_data: bytes = b""
    block_number: Optional[int] = None
    transaction_index: Optional[int] = None
    block_timestamp: Optional[float] = None

    def encode(self) -> bytes:
        """RLP-encode the consensus-relevant receipt fields."""
        return rlp_encode(
            [
                self.transaction_hash,
                1 if self.success else 0,
                self.gas_used,
                [entry.encode() for entry in self.logs],
            ]
        )

    @property
    def failed(self) -> bool:
        return not self.success


def receipts_root(receipts: List[Receipt]) -> bytes:
    """Merkle Patricia trie root over the block's receipts (keyed by index)."""
    from .trie import ordered_trie_root

    return ordered_trie_root([receipt.encode() for receipt in receipts])
