"""Transactions: signed messages that may change ledger state.

A transaction mirrors the Ethereum format: (nonce, gas_price, gas_limit,
to, value, data) plus the sender.  Real Ethereum recovers the sender from an
ECDSA signature; we attach the sender directly and derive a deterministic
pseudo-signature over the canonical fields so that tampering with calldata
after signing is detectable — this is what enforces the paper's RAA
restriction (RAA cannot modify the arguments of a transaction, only of a
pure/view call).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crypto.addresses import Address, is_address
from ..crypto.keccak import keccak256
from ..encoding.hexutil import to_hex
from ..encoding.rlp import rlp_encode
from .errors import InvalidTransaction

__all__ = ["Transaction", "sign_transaction"]

_SIGNATURE_DOMAIN = b"repro/tx-signature/"


def _canonical_fields(
    sender: Address,
    nonce: int,
    to: Optional[Address],
    value: int,
    gas_price: int,
    gas_limit: int,
    data: bytes,
) -> list:
    return [sender, nonce, to if to is not None else b"", value, gas_price, gas_limit, data]


def sign_transaction(
    sender: Address,
    nonce: int,
    to: Optional[Address],
    value: int,
    gas_price: int,
    gas_limit: int,
    data: bytes,
) -> bytes:
    """Produce the deterministic pseudo-signature over the canonical fields."""
    payload = rlp_encode(_canonical_fields(sender, nonce, to, value, gas_price, gas_limit, data))
    return keccak256(_SIGNATURE_DOMAIN, sender, payload)


@dataclass(frozen=True)
class Transaction:
    """An immutable blockchain transaction.

    ``submitted_at`` is simulation metadata (seconds on the discrete-event
    clock when the originating client created the transaction); it is not
    part of the signed payload or the hash, mirroring how real networks
    carry no trustworthy submission timestamp.
    """

    sender: Address
    nonce: int
    to: Optional[Address]
    value: int = 0
    gas_price: int = 1
    gas_limit: int = 100_000
    data: bytes = b""
    signature: bytes = b""
    submitted_at: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if not is_address(self.sender):
            raise InvalidTransaction("transaction sender must be a 20-byte address")
        if self.to is not None and not is_address(self.to):
            raise InvalidTransaction("transaction recipient must be a 20-byte address or None")
        if self.nonce < 0:
            raise InvalidTransaction("transaction nonce must be non-negative")
        if self.value < 0:
            raise InvalidTransaction("transaction value must be non-negative")
        if self.gas_price < 0 or self.gas_limit <= 0:
            raise InvalidTransaction("gas price must be >= 0 and gas limit > 0")
        if not self.signature:
            object.__setattr__(
                self,
                "signature",
                sign_transaction(
                    self.sender, self.nonce, self.to, self.value,
                    self.gas_price, self.gas_limit, self.data,
                ),
            )

    @property
    def hash(self) -> bytes:
        """Keccak-256 hash of the RLP-encoded canonical fields + signature.

        Cached after first computation: transactions are immutable and their
        hashes are looked up constantly (pool membership, receipts, metrics).
        """
        cached = self.__dict__.get("_cached_hash")
        if cached is not None:
            return cached
        fields = _canonical_fields(
            self.sender, self.nonce, self.to, self.value,
            self.gas_price, self.gas_limit, self.data,
        )
        digest = keccak256(rlp_encode(fields + [self.signature]))
        object.__setattr__(self, "_cached_hash", digest)
        return digest

    @property
    def is_contract_creation(self) -> bool:
        return self.to is None

    @property
    def selector(self) -> bytes:
        """The first four bytes of calldata (empty if no calldata)."""
        return self.data[:4]

    def signature_is_valid(self) -> bool:
        """Check that the signature covers the current field values.

        A transaction whose calldata was altered after signing (e.g. by an
        RAA provider overstepping its bounds) fails this check and is
        rejected by validating peers.
        """
        expected = sign_transaction(
            self.sender, self.nonce, self.to, self.value,
            self.gas_price, self.gas_limit, self.data,
        )
        return self.signature == expected

    def intrinsic_gas(self) -> int:
        """Gas charged before execution: base cost plus calldata bytes."""
        from .gas import GasSchedule

        schedule = GasSchedule()
        zero_bytes = self.data.count(0)
        nonzero_bytes = len(self.data) - zero_bytes
        return (
            schedule.tx_base
            + zero_bytes * schedule.calldata_zero_byte
            + nonzero_bytes * schedule.calldata_nonzero_byte
        )

    def with_data(self, data: bytes) -> "Transaction":
        """Return a copy with different calldata but the *original* signature.

        Used by tests/experiments that model a malicious or buggy client
        mutating a signed transaction; the result fails signature validation.
        """
        return Transaction(
            sender=self.sender,
            nonce=self.nonce,
            to=self.to,
            value=self.value,
            gas_price=self.gas_price,
            gas_limit=self.gas_limit,
            data=data,
            signature=self.signature,
            submitted_at=self.submitted_at,
        )

    def short_hash(self) -> str:
        """First 8 hex characters of the hash, for logs and traces."""
        return self.hash.hex()[:8]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        to_text = to_hex(self.to)[:10] if self.to is not None else "CREATE"
        return (
            f"Transaction(hash={self.short_hash()}, sender={to_hex(self.sender)[:10]}, "
            f"nonce={self.nonce}, to={to_text}, value={self.value})"
        )
