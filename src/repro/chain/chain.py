"""The blockchain: an append-only list of validated blocks plus current state.

Each peer in the simulated network holds its own ``Blockchain`` instance.
Appending a block received from the network triggers *block validation* —
the peer replays every transaction against its own copy of the parent state
and checks that the announced state/transaction/receipt roots match
(Section II-D of the paper).  A block whose replay diverges is rejected.

History is unbounded by default.  With ``retain_blocks=N`` the chain keeps
only the newest N blocks in memory: older blocks (and their receipts) are
evicted and folded into a sealed :class:`ChainAnchor` — a commitment to the
pruned prefix (number, hash, state root) — and lookups below the window
raise :class:`~repro.chain.errors.PrunedHistoryError`.  The head state is
always live, so consensus never needs the evicted bodies; only historical
inspection does.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from ..crypto.addresses import Address
from ..obs import runtime as _obs
from .apply_cache import BlockApplyCache
from .block import Block, BlockHeader, transactions_root
from .errors import InvalidBlock, PrunedHistoryError, ValidationError
from .executor import BlockContext, TransactionExecutor
from .genesis import GenesisConfig, build_genesis_cached
from .receipt import Receipt, receipts_root
from .state import StateSnapshot, WorldState
from .transaction import Transaction

__all__ = ["Blockchain", "ChainAnchor", "execute_transactions"]


@dataclass(frozen=True)
class ChainAnchor:
    """Sealed commitment to the pruned prefix of a windowed chain.

    When retention evicts blocks, the newest evicted block's identifiers are
    folded in here: the anchor proves what the discarded history committed
    to (its state root is the commitment the first retained block was built
    on) without keeping any of its bodies in memory.
    """

    number: int
    block_hash: bytes
    state_root: bytes
    timestamp: float
    blocks_folded: int
    """How many blocks (genesis included) have been folded into this anchor."""


def execute_transactions(
    executor: TransactionExecutor,
    state: WorldState,
    transactions: List[Transaction],
    block: BlockContext,
) -> List[Receipt]:
    """Apply ``transactions`` in order to ``state``, returning their receipts.

    Failed transactions are rolled back (their state changes discarded) but a
    receipt is still produced, matching the blockchain behaviour of including
    failed transactions in the published block.
    """
    tracer = _obs.TRACER
    start = perf_counter() if tracer is not None else 0.0
    receipts: List[Receipt] = []
    for index, transaction in enumerate(transactions):
        # Executors are responsible for rollback-on-failure semantics (a
        # failed transaction still consumes its nonce and gas).  The snapshot
        # here is a safety net for executor bugs that raise instead of
        # returning a failed receipt.
        snapshot = state.snapshot()
        try:
            receipt = executor.execute(state, transaction, block)
        except Exception as error:  # defensive: executors should not raise
            state.revert(snapshot)
            receipt = Receipt(
                transaction_hash=transaction.hash,
                success=False,
                gas_used=0,
                error=f"executor error: {error}",
            )
        else:
            state.commit(snapshot)
        receipt.block_number = block.number
        receipt.transaction_index = index
        receipt.block_timestamp = block.timestamp
        receipts.append(receipt)
    if tracer is not None:
        tracer.phase("state_apply", start)
    return receipts


class Blockchain:
    """A single peer's view of the chain."""

    def __init__(
        self,
        executor: TransactionExecutor,
        genesis_config: Optional[GenesisConfig] = None,
        apply_cache: Optional[BlockApplyCache] = None,
        retain_blocks: Optional[int] = None,
    ) -> None:
        if retain_blocks is not None and retain_blocks < 2:
            raise ValueError("retain_blocks must be at least 2 (head and its parent)")
        self.executor = executor
        self.apply_cache = apply_cache
        self.retain_blocks = retain_blocks
        # Genesis states are built once per process per distinct config and
        # shared as frozen templates; every chain works on its own O(1) fork.
        genesis_block, genesis_state = build_genesis_cached(
            genesis_config or GenesisConfig()
        )
        self._blocks: List[Block] = [genesis_block]
        self._first_retained = 0
        self._anchor: Optional[ChainAnchor] = None
        self.last_snapshot: Optional[StateSnapshot] = None
        self._blocks_by_hash: Dict[bytes, Block] = {genesis_block.hash: genesis_block}
        self._state = genesis_state.fork()
        self._state_token = (
            apply_cache.genesis_token(genesis_block.hash)
            if apply_cache is not None
            else None
        )
        self._receipts_by_tx: Dict[bytes, Receipt] = {}

    # -- inspection -----------------------------------------------------------

    @property
    def head(self) -> Block:
        """The most recently appended block."""
        return self._blocks[-1]

    @property
    def height(self) -> int:
        """The block number of the head."""
        return self.head.number

    @property
    def state(self) -> WorldState:
        """The post-head world state (the READ-COMMITTED view)."""
        return self._state

    @property
    def earliest_block_number(self) -> int:
        """Number of the oldest block still held in memory (0 = genesis)."""
        return self._first_retained

    @property
    def anchor(self) -> Optional[ChainAnchor]:
        """Commitment to the pruned prefix, or None while history is intact."""
        return self._anchor

    def block_by_number(self, number: int) -> Block:
        index = number - self._first_retained
        if index < 0:
            if number >= 0:
                raise PrunedHistoryError(
                    f"block {number} was pruned: this chain retains the newest "
                    f"{self.retain_blocks} blocks and its window starts at block "
                    f"{self._first_retained}; raise retain_blocks (or run with "
                    f"retention disabled) to keep deeper history"
                )
            raise InvalidBlock(f"no block with number {number}")
        if index >= len(self._blocks):
            raise InvalidBlock(f"no block with number {number}")
        return self._blocks[index]

    def block_by_hash(self, block_hash: bytes) -> Optional[Block]:
        return self._blocks_by_hash.get(block_hash)

    def blocks(self) -> List[Block]:
        """Every retained block, oldest first (from genesis unless pruned)."""
        return list(self._blocks)

    def receipt_for(self, transaction_hash: bytes) -> Optional[Receipt]:
        """Receipt of a committed transaction, if any."""
        return self._receipts_by_tx.get(transaction_hash)

    def transaction_is_committed(self, transaction_hash: bytes) -> bool:
        return transaction_hash in self._receipts_by_tx

    # -- block production ------------------------------------------------------

    def build_block(
        self,
        transactions: List[Transaction],
        miner: Address,
        timestamp: float,
        difficulty: int = 1,
        nonce: int = 0,
        extra_data: bytes = b"",
    ) -> Tuple[Block, WorldState]:
        """Execute ``transactions`` on top of the head and assemble a block.

        Returns the block and the resulting state; the block is *not*
        appended — the caller (a miner) publishes it to the network and every
        peer, including the miner itself, imports it via :meth:`add_block`.
        """
        parent = self.head
        context = BlockContext(
            number=parent.number + 1,
            timestamp=timestamp,
            miner=miner,
            gas_limit=parent.header.gas_limit,
            difficulty=difficulty,
        )
        working_state = self._state.fork()
        receipts = execute_transactions(self.executor, working_state, transactions, context)
        header = BlockHeader(
            parent_hash=parent.hash,
            number=context.number,
            timestamp=timestamp,
            miner=miner,
            state_root=working_state.state_root(),
            transactions_root=transactions_root(transactions),
            receipts_root=receipts_root(receipts),
            difficulty=difficulty,
            gas_limit=context.gas_limit,
            gas_used=sum(receipt.gas_used for receipt in receipts),
            nonce=nonce,
            extra_data=extra_data,
        )
        block = Block(header=header, transactions=transactions, receipts=receipts)
        if self.apply_cache is not None and all(
            transaction.signature_is_valid() for transaction in transactions
        ):
            # Publish the build outcome so every peer on the same lineage can
            # import this block with an O(1) fork instead of a full replay.
            # The header's roots are commitments *derived from* this very
            # execution, so the only validation a replay would add beyond
            # them is the signature check performed above; a block carrying
            # a tampered transaction is deliberately not cached and gets
            # rejected by every peer's full validation, exactly as before.
            # The stored state becomes a frozen shared template, so the
            # caller receives a private fork of it, never the template.
            self.apply_cache.store(
                self._state_token, block.hash, working_state, block_number=block.number
            )
            working_state = working_state.fork()
        return block, working_state

    # -- block import / validation ----------------------------------------------

    def validate_block(self, block: Block) -> WorldState:
        """Replay ``block`` against the local head state (transaction replay).

        Returns the post-block state on success and raises
        :class:`ValidationError` or :class:`InvalidBlock` otherwise.
        """
        tracer = _obs.TRACER
        start = perf_counter() if tracer is not None else 0.0
        parent = self.head
        if block.header.parent_hash != parent.hash:
            raise InvalidBlock(
                f"block {block.number} does not extend the local head "
                f"(expected parent {parent.short_hash()})"
            )
        if block.number != parent.number + 1:
            raise InvalidBlock(f"expected block number {parent.number + 1}, got {block.number}")
        if not block.verify_roots():
            raise InvalidBlock("block body does not match header commitments")
        for transaction in block.transactions:
            if not transaction.signature_is_valid():
                raise ValidationError(
                    f"transaction {transaction.short_hash()} has an invalid signature "
                    "(inputs were modified after signing)"
                )
        context = BlockContext(
            number=block.number,
            timestamp=block.timestamp,
            miner=block.header.miner,
            gas_limit=block.header.gas_limit,
            difficulty=block.header.difficulty,
        )
        replay_state = self._state.fork()
        replay_receipts = execute_transactions(
            self.executor, replay_state, block.transactions, context
        )
        if replay_state.state_root() != block.header.state_root:
            raise ValidationError(
                f"replaying block {block.number} produced a different state root"
            )
        if receipts_root(replay_receipts) != block.header.receipts_root:
            raise ValidationError(
                f"replaying block {block.number} produced different receipts"
            )
        if tracer is not None:
            tracer.phase("validate", start)
        return replay_state

    def add_block(self, block: Block) -> Block:
        """Validate and append ``block``, advancing the head state.

        With an :class:`~repro.chain.apply_cache.BlockApplyCache` attached,
        a block already applied on this chain's exact state lineage (by the
        miner that built it or the first validating peer) is imported by
        forking the cached post-state instead of replaying — the cache key
        proves the parent states are identical, so the replay would
        reproduce the cached outcome bit for bit.
        """
        cached = None
        if self.apply_cache is not None:
            cached = self.apply_cache.lookup(self._state_token, block.hash)
        if cached is not None:
            if block.header.parent_hash != self.head.hash:  # defense in depth:
                # a lineage-token hit implies the parent matches.
                raise InvalidBlock(
                    f"block {block.number} does not extend the local head"
                )
            post_token, template = cached
            new_state = template.fork()
        else:
            new_state = self.validate_block(block)
            if self.apply_cache is not None:
                post_token = self.apply_cache.store(
                    self._state_token, block.hash, new_state, block_number=block.number
                )
                new_state = new_state.fork()  # the stored template stays frozen
            else:
                post_token = None
        self._blocks.append(block)
        self._blocks_by_hash[block.hash] = block
        self._state = new_state
        self._state_token = post_token
        for receipt in block.receipts:
            self._receipts_by_tx[receipt.transaction_hash] = receipt
        if self.retain_blocks is not None and len(self._blocks) > self.retain_blocks:
            self._prune_window()
        return block

    def _prune_window(self) -> None:
        """Evict blocks beyond the retention window into the sealed anchor.

        The newest evicted block's commitments become the anchor; its (and
        all older) bodies, hash-index entries, and receipts are dropped.  A
        :class:`~repro.chain.state.StateSnapshot` of the live head state is
        captured so tests (and the ``horizon`` experiment) can observe that
        memory actually shrinks.
        """
        excess = len(self._blocks) - self.retain_blocks
        evicted = self._blocks[:excess]
        del self._blocks[:excess]
        self._first_retained += excess
        for block in evicted:
            self._blocks_by_hash.pop(block.hash, None)
            for receipt in block.receipts:
                self._receipts_by_tx.pop(receipt.transaction_hash, None)
        newest = evicted[-1]
        folded = (self._anchor.blocks_folded if self._anchor is not None else 0) + excess
        self._anchor = ChainAnchor(
            number=newest.number,
            block_hash=newest.hash,
            state_root=newest.header.state_root,
            timestamp=newest.timestamp,
            blocks_folded=folded,
        )
        # Seal the head state (fold its overlay into the shared frozen base)
        # so the snapshot below measures one settled base, then record it.
        state = self._state
        if not state._journal:
            state._seal()
        self.last_snapshot = StateSnapshot.capture(
            state, block_number=self.height, state_root=self.head.header.state_root
        )

    def committed_transaction_hashes(self) -> List[bytes]:
        """Hashes of every transaction committed to the chain so far."""
        return list(self._receipts_by_tx.keys())
