"""The blockchain: an append-only list of validated blocks plus current state.

Each peer in the simulated network holds its own ``Blockchain`` instance.
Appending a block received from the network triggers *block validation* —
the peer replays every transaction against its own copy of the parent state
and checks that the announced state/transaction/receipt roots match
(Section II-D of the paper).  A block whose replay diverges is rejected.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..crypto.addresses import Address
from .apply_cache import BlockApplyCache
from .block import Block, BlockHeader, transactions_root
from .errors import InvalidBlock, ValidationError
from .executor import BlockContext, TransactionExecutor
from .genesis import GenesisConfig, build_genesis_cached
from .receipt import Receipt, receipts_root
from .state import WorldState
from .transaction import Transaction

__all__ = ["Blockchain", "execute_transactions"]


def execute_transactions(
    executor: TransactionExecutor,
    state: WorldState,
    transactions: List[Transaction],
    block: BlockContext,
) -> List[Receipt]:
    """Apply ``transactions`` in order to ``state``, returning their receipts.

    Failed transactions are rolled back (their state changes discarded) but a
    receipt is still produced, matching the blockchain behaviour of including
    failed transactions in the published block.
    """
    receipts: List[Receipt] = []
    for index, transaction in enumerate(transactions):
        # Executors are responsible for rollback-on-failure semantics (a
        # failed transaction still consumes its nonce and gas).  The snapshot
        # here is a safety net for executor bugs that raise instead of
        # returning a failed receipt.
        snapshot = state.snapshot()
        try:
            receipt = executor.execute(state, transaction, block)
        except Exception as error:  # defensive: executors should not raise
            state.revert(snapshot)
            receipt = Receipt(
                transaction_hash=transaction.hash,
                success=False,
                gas_used=0,
                error=f"executor error: {error}",
            )
        else:
            state.commit(snapshot)
        receipt.block_number = block.number
        receipt.transaction_index = index
        receipt.block_timestamp = block.timestamp
        receipts.append(receipt)
    return receipts


class Blockchain:
    """A single peer's view of the chain."""

    def __init__(
        self,
        executor: TransactionExecutor,
        genesis_config: Optional[GenesisConfig] = None,
        apply_cache: Optional[BlockApplyCache] = None,
    ) -> None:
        self.executor = executor
        self.apply_cache = apply_cache
        # Genesis states are built once per process per distinct config and
        # shared as frozen templates; every chain works on its own O(1) fork.
        genesis_block, genesis_state = build_genesis_cached(
            genesis_config or GenesisConfig()
        )
        self._blocks: List[Block] = [genesis_block]
        self._blocks_by_hash: Dict[bytes, Block] = {genesis_block.hash: genesis_block}
        self._state = genesis_state.fork()
        self._state_token = (
            apply_cache.genesis_token(genesis_block.hash)
            if apply_cache is not None
            else None
        )
        self._receipts_by_tx: Dict[bytes, Receipt] = {}

    # -- inspection -----------------------------------------------------------

    @property
    def head(self) -> Block:
        """The most recently appended block."""
        return self._blocks[-1]

    @property
    def height(self) -> int:
        """The block number of the head."""
        return self.head.number

    @property
    def state(self) -> WorldState:
        """The post-head world state (the READ-COMMITTED view)."""
        return self._state

    def block_by_number(self, number: int) -> Block:
        if number < 0 or number >= len(self._blocks):
            raise InvalidBlock(f"no block with number {number}")
        return self._blocks[number]

    def block_by_hash(self, block_hash: bytes) -> Optional[Block]:
        return self._blocks_by_hash.get(block_hash)

    def blocks(self) -> List[Block]:
        """All blocks from genesis to head."""
        return list(self._blocks)

    def receipt_for(self, transaction_hash: bytes) -> Optional[Receipt]:
        """Receipt of a committed transaction, if any."""
        return self._receipts_by_tx.get(transaction_hash)

    def transaction_is_committed(self, transaction_hash: bytes) -> bool:
        return transaction_hash in self._receipts_by_tx

    # -- block production ------------------------------------------------------

    def build_block(
        self,
        transactions: List[Transaction],
        miner: Address,
        timestamp: float,
        difficulty: int = 1,
        nonce: int = 0,
        extra_data: bytes = b"",
    ) -> Tuple[Block, WorldState]:
        """Execute ``transactions`` on top of the head and assemble a block.

        Returns the block and the resulting state; the block is *not*
        appended — the caller (a miner) publishes it to the network and every
        peer, including the miner itself, imports it via :meth:`add_block`.
        """
        parent = self.head
        context = BlockContext(
            number=parent.number + 1,
            timestamp=timestamp,
            miner=miner,
            gas_limit=parent.header.gas_limit,
            difficulty=difficulty,
        )
        working_state = self._state.fork()
        receipts = execute_transactions(self.executor, working_state, transactions, context)
        header = BlockHeader(
            parent_hash=parent.hash,
            number=context.number,
            timestamp=timestamp,
            miner=miner,
            state_root=working_state.state_root(),
            transactions_root=transactions_root(transactions),
            receipts_root=receipts_root(receipts),
            difficulty=difficulty,
            gas_limit=context.gas_limit,
            gas_used=sum(receipt.gas_used for receipt in receipts),
            nonce=nonce,
            extra_data=extra_data,
        )
        block = Block(header=header, transactions=transactions, receipts=receipts)
        if self.apply_cache is not None and all(
            transaction.signature_is_valid() for transaction in transactions
        ):
            # Publish the build outcome so every peer on the same lineage can
            # import this block with an O(1) fork instead of a full replay.
            # The header's roots are commitments *derived from* this very
            # execution, so the only validation a replay would add beyond
            # them is the signature check performed above; a block carrying
            # a tampered transaction is deliberately not cached and gets
            # rejected by every peer's full validation, exactly as before.
            # The stored state becomes a frozen shared template, so the
            # caller receives a private fork of it, never the template.
            self.apply_cache.store(self._state_token, block.hash, working_state)
            working_state = working_state.fork()
        return block, working_state

    # -- block import / validation ----------------------------------------------

    def validate_block(self, block: Block) -> WorldState:
        """Replay ``block`` against the local head state (transaction replay).

        Returns the post-block state on success and raises
        :class:`ValidationError` or :class:`InvalidBlock` otherwise.
        """
        parent = self.head
        if block.header.parent_hash != parent.hash:
            raise InvalidBlock(
                f"block {block.number} does not extend the local head "
                f"(expected parent {parent.short_hash()})"
            )
        if block.number != parent.number + 1:
            raise InvalidBlock(f"expected block number {parent.number + 1}, got {block.number}")
        if not block.verify_roots():
            raise InvalidBlock("block body does not match header commitments")
        for transaction in block.transactions:
            if not transaction.signature_is_valid():
                raise ValidationError(
                    f"transaction {transaction.short_hash()} has an invalid signature "
                    "(inputs were modified after signing)"
                )
        context = BlockContext(
            number=block.number,
            timestamp=block.timestamp,
            miner=block.header.miner,
            gas_limit=block.header.gas_limit,
            difficulty=block.header.difficulty,
        )
        replay_state = self._state.fork()
        replay_receipts = execute_transactions(
            self.executor, replay_state, block.transactions, context
        )
        if replay_state.state_root() != block.header.state_root:
            raise ValidationError(
                f"replaying block {block.number} produced a different state root"
            )
        if receipts_root(replay_receipts) != block.header.receipts_root:
            raise ValidationError(
                f"replaying block {block.number} produced different receipts"
            )
        return replay_state

    def add_block(self, block: Block) -> Block:
        """Validate and append ``block``, advancing the head state.

        With an :class:`~repro.chain.apply_cache.BlockApplyCache` attached,
        a block already applied on this chain's exact state lineage (by the
        miner that built it or the first validating peer) is imported by
        forking the cached post-state instead of replaying — the cache key
        proves the parent states are identical, so the replay would
        reproduce the cached outcome bit for bit.
        """
        cached = None
        if self.apply_cache is not None:
            cached = self.apply_cache.lookup(self._state_token, block.hash)
        if cached is not None:
            if block.header.parent_hash != self.head.hash:  # defense in depth:
                # a lineage-token hit implies the parent matches.
                raise InvalidBlock(
                    f"block {block.number} does not extend the local head"
                )
            post_token, template = cached
            new_state = template.fork()
        else:
            new_state = self.validate_block(block)
            if self.apply_cache is not None:
                post_token = self.apply_cache.store(
                    self._state_token, block.hash, new_state
                )
                new_state = new_state.fork()  # the stored template stays frozen
            else:
                post_token = None
        self._blocks.append(block)
        self._blocks_by_hash[block.hash] = block
        self._state = new_state
        self._state_token = post_token
        for receipt in block.receipts:
            self._receipts_by_tx[receipt.transaction_hash] = receipt
        return block

    def committed_transaction_hashes(self) -> List[bytes]:
        """Hashes of every transaction committed to the chain so far."""
        return list(self._receipts_by_tx.keys())
