"""Cross-peer sharing of block application results.

Every peer in the simulated network validates a gossiped block by replaying
it against its own head state.  The network models no forks, all peers start
from the same genesis, and replay is a pure function of (parent state,
block) — so when four peers sit on the same state lineage, four replays of
the same block are three replays too many.

A :class:`BlockApplyCache` shared by the peers of one simulation keys each
block application by ``(parent lineage token, block hash)``.  The first
chain to apply a block — the miner at build time, or the first validator —
stores the post-state as a frozen *template*; every later import on the same
lineage forks the template (O(1) with the copy-on-write
:class:`~repro.chain.state.WorldState`) instead of replaying.

Lineage tokens are opaque identity objects: two chains hold the same token
exactly when their head states were produced by the same sequence of cached
applications from the same genesis, which makes a cache hit a proof that the
parent states are byte-identical.  Entries built by an honest
``Blockchain.build_block`` are only stored after the block's transaction
signatures check out, so a block that full validation would reject never
enters the cache and still gets rejected by every peer (see
``tests/chain/test_apply_cache.py``).

The cache is scoped to one simulation (the engine creates one per
:class:`~repro.api.engine.SimulationHandle`), so it dies with the trial and
never leaks memory across sweep cells.

Within a trial the cache is still the dominant state-memory sink: every
stored template pins one frozen post-block :class:`WorldState` (and its
per-account RLP memos) for the rest of the run.  Constructing the cache
with ``retain_blocks=N`` bounds that: entries whose block number falls more
than N below the newest stored number are evicted as new blocks arrive, so
only the sliding window of templates a lagging peer could still import
stays resident.  An evicted entry is never wrong — a lookup for it simply
misses and the importer falls back to full replay.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["BlockApplyCache"]


class _LineageToken:
    """Identity marker for one state lineage position (repr aids debugging)."""

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<lineage {self.label}>"


class BlockApplyCache:
    """Shares (post-state, lineage) across peers importing the same blocks."""

    def __init__(self, retain_blocks: Optional[int] = None) -> None:
        if retain_blocks is not None and retain_blocks < 1:
            raise ValueError("retain_blocks must be positive")
        self._entries: Dict[Tuple[object, bytes], Tuple[object, object]] = {}
        self._genesis_tokens: Dict[bytes, _LineageToken] = {}
        self._retain_blocks = retain_blocks
        self._keys_by_number: Dict[int, List[Tuple[object, bytes]]] = {}
        self._min_live_number = 1
        self._max_number = 0
        self.hits = 0
        self.misses = 0
        self.evicted = 0

    def genesis_token(self, genesis_hash: bytes) -> _LineageToken:
        """The shared lineage token for chains starting from ``genesis_hash``."""
        token = self._genesis_tokens.get(genesis_hash)
        if token is None:
            token = _LineageToken(f"genesis:{genesis_hash.hex()[:8]}")
            self._genesis_tokens[genesis_hash] = token
        return token

    def lookup(
        self, parent_token: object, block_hash: bytes
    ) -> Optional[Tuple[object, object]]:
        """The ``(post_token, post_state_template)`` for applying ``block_hash``
        on ``parent_token``'s lineage, or None (counted as hit/miss)."""
        if parent_token is None:
            return None
        entry = self._entries.get((parent_token, block_hash))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def store(
        self,
        parent_token: object,
        block_hash: bytes,
        post_state: object,
        block_number: Optional[int] = None,
    ) -> object:
        """Record the outcome of applying ``block_hash`` and return the
        post-application lineage token.

        ``post_state`` becomes a frozen template: callers must only ever
        ``fork()`` it.  The first writer wins — a concurrent identical
        application (same lineage, same block) yields the same outcome by
        construction, so the existing entry's token is returned.  When the
        cache was built with ``retain_blocks`` and callers pass
        ``block_number``, entries that have slid out of the retention window
        are evicted here (the only point where the window advances).
        """
        key = (parent_token, block_hash)
        existing = self._entries.get(key)
        if existing is not None:
            return existing[0]
        post_token = _LineageToken(f"block:{block_hash.hex()[:8]}")
        self._entries[key] = (post_token, post_state)
        if block_number is not None:
            self._keys_by_number.setdefault(block_number, []).append(key)
            if block_number > self._max_number:
                self._max_number = block_number
            if self._retain_blocks is not None:
                self._evict_below(self._max_number - self._retain_blocks + 1)
        return post_token

    def _evict_below(self, horizon: int) -> None:
        """Drop entries for every block number strictly below ``horizon``."""
        while self._min_live_number < horizon:
            for key in self._keys_by_number.pop(self._min_live_number, ()):
                if self._entries.pop(key, None) is not None:
                    self.evicted += 1
            self._min_live_number += 1

    def clear(self) -> None:
        """Drop every cached application (tokens for live chains stay valid
        as dictionary keys; their entries simply have to be recomputed)."""
        self._entries.clear()
        self._keys_by_number.clear()
        self._min_live_number = 1
        self._max_number = 0

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "evicted": self.evicted,
        }
