"""World state: the mapping from addresses to accounts, with journaling.

The world state supports nested snapshots so that a failed transaction can
be rolled back while remaining *included* in the block — the behaviour the
paper calls out as the reason raw throughput overstates useful work.  A
state root (a deterministic commitment over all accounts) lets validating
peers check that replaying a block reproduces the miner's announced state.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..crypto.addresses import Address, is_address
from ..crypto.keccak import keccak256
from ..encoding.rlp import rlp_encode
from .account import Account
from .errors import UnknownAccount

__all__ = ["WorldState"]


class WorldState:
    """A journaled account store.

    Snapshots are implemented by stacking copy-on-write journals: each
    snapshot records the prior value (or absence) of every account touched
    after it was taken, so ``revert`` is O(touched accounts).
    """

    def __init__(self, accounts: Optional[Dict[Address, Account]] = None) -> None:
        self._accounts: Dict[Address, Account] = dict(accounts or {})
        self._journal: List[Dict[Address, Optional[Account]]] = []

    # -- account access -----------------------------------------------------

    def account_exists(self, address: Address) -> bool:
        return address in self._accounts

    def get_account(self, address: Address) -> Account:
        """Return the account at ``address``, raising if it does not exist."""
        try:
            return self._accounts[address]
        except KeyError:
            raise UnknownAccount(f"no account at 0x{address.hex()}") from None

    def get_or_create_account(self, address: Address) -> Account:
        """Return the account at ``address``, creating an empty one if needed."""
        if not is_address(address):
            raise ValueError("expected a 20-byte address")
        if address not in self._accounts:
            self._record_touch(address)
            self._accounts[address] = Account()
        return self._accounts[address]

    def _record_touch(self, address: Address) -> None:
        if not self._journal:
            return
        journal = self._journal[-1]
        if address not in journal:
            existing = self._accounts.get(address)
            journal[address] = existing.copy() if existing is not None else None

    def touch(self, address: Address) -> Account:
        """Return the account for mutation, journaling its prior value."""
        account = self.get_or_create_account(address)
        self._record_touch(address)
        return account

    # -- balances and nonces -------------------------------------------------

    def get_balance(self, address: Address) -> int:
        if address not in self._accounts:
            return 0
        return self._accounts[address].balance

    def set_balance(self, address: Address, balance: int) -> None:
        if balance < 0:
            raise ValueError("balance cannot be negative")
        self.touch(address).balance = balance

    def add_balance(self, address: Address, amount: int) -> None:
        self.set_balance(address, self.get_balance(address) + amount)

    def subtract_balance(self, address: Address, amount: int) -> None:
        balance = self.get_balance(address)
        if amount > balance:
            raise ValueError("balance would become negative")
        self.set_balance(address, balance - amount)

    def get_nonce(self, address: Address) -> int:
        if address not in self._accounts:
            return 0
        return self._accounts[address].nonce

    def increment_nonce(self, address: Address) -> None:
        self.touch(address).nonce += 1

    # -- storage --------------------------------------------------------------

    def get_storage(self, address: Address, slot: bytes) -> bytes:
        if address not in self._accounts:
            return b"\x00" * 32
        return self._accounts[address].get_storage(slot)

    def set_storage(self, address: Address, slot: bytes, value: bytes) -> None:
        self.touch(address).set_storage(slot, value)

    def set_code(self, address: Address, code: str) -> None:
        self.touch(address).code = code

    def get_code(self, address: Address) -> Optional[str]:
        if address not in self._accounts:
            return None
        return self._accounts[address].code

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> int:
        """Open a new journal level and return its identifier."""
        self._journal.append({})
        return len(self._journal) - 1

    def revert(self, snapshot_id: int) -> None:
        """Undo all changes made since ``snapshot_id`` (inclusive of later ones)."""
        if snapshot_id < 0 or snapshot_id >= len(self._journal):
            raise ValueError(f"unknown snapshot id {snapshot_id}")
        while len(self._journal) > snapshot_id:
            journal = self._journal.pop()
            for address, previous in journal.items():
                if previous is None:
                    self._accounts.pop(address, None)
                else:
                    self._accounts[address] = previous

    def commit(self, snapshot_id: int) -> None:
        """Discard the journal level, folding changes into the level below."""
        if snapshot_id < 0 or snapshot_id >= len(self._journal):
            raise ValueError(f"unknown snapshot id {snapshot_id}")
        while len(self._journal) > snapshot_id:
            journal = self._journal.pop()
            if self._journal:
                parent = self._journal[-1]
                for address, previous in journal.items():
                    parent.setdefault(address, previous)

    # -- commitments ----------------------------------------------------------

    def state_root(self) -> bytes:
        """Deterministic commitment over every account (address-sorted)."""
        items = sorted(self._accounts.items())
        return keccak256(rlp_encode([[address, account.encode()] for address, account in items]))

    def copy(self) -> "WorldState":
        """Deep copy of the state (journals are not copied)."""
        return WorldState({address: account.copy() for address, account in self._accounts.items()})

    def accounts(self) -> Iterator[Tuple[Address, Account]]:
        """Iterate over (address, account) pairs."""
        return iter(self._accounts.items())

    def __len__(self) -> int:
        return len(self._accounts)

    def __contains__(self, address: object) -> bool:
        return address in self._accounts
