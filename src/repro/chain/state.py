"""World state: the mapping from addresses to accounts, with journaling.

The world state supports nested snapshots so that a failed transaction can
be rolled back while remaining *included* in the block — the behaviour the
paper calls out as the reason raw throughput overstates useful work.  A
state root (a deterministic commitment over all accounts) lets validating
peers check that replaying a block reproduces the miner's announced state.

States are copy-on-write.  :meth:`fork` is O(1): the child shares the
parent's account mapping and copies an account only when it is first
mutated, so the per-block "copy the whole world" cost the original
implementation paid (one deep dict copy per block build *and* per peer
validation) disappears.  The sharing protocol:

* every state is a frozen ``_base`` mapping (shared with its ancestors and
  siblings, never written) plus a private ``_overlay`` of accounts this
  state has created or rewritten;
* reads consult the overlay first, then the base;
* the first mutation of an account copies it into the overlay
  (:meth:`touch`), after which it is mutated in place;
* forking seals the overlay into a fresh merged base (O(accounts), paid
  once per sealed state no matter how many forks are taken) and hands the
  child the shared base with an empty overlay.

Because the base is frozen, an account object reachable from two states is
never mutated — which is also what lets :class:`~repro.chain.account.Account`
memoise its RLP encoding for the incremental :meth:`state_root`.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Tuple

from ..crypto.addresses import Address, is_address
from ..crypto.keccak import keccak256
from ..encoding.rlp import rlp_encode
from ..obs import runtime as _obs
from .account import Account
from .errors import UnknownAccount

__all__ = ["StateSnapshot", "WorldState", "live_state_stats"]

_LIVE_STATES: "weakref.WeakSet[WorldState]" = weakref.WeakSet()
"""Every live WorldState, tracked weakly for the rss_stats accounting hooks."""

_ABSENT = object()
"""Journal sentinel: the address had no overlay entry when first touched."""


class WorldState:
    """A journaled, copy-on-write account store.

    Snapshots are implemented by journaling overlay slots: each snapshot
    level records the overlay entry (or its absence) for every account first
    touched at that level, so ``revert`` is O(touched accounts).  The frozen
    base is never written, so reverting simply restores overlay slots.
    """

    __slots__ = ("_base", "_overlay", "_journal", "_root_cache", "__weakref__")

    def __init__(self, accounts: Optional[Dict[Address, Account]] = None) -> None:
        self._base: Dict[Address, Account] = dict(accounts or {})
        self._overlay: Dict[Address, Account] = {}
        self._journal: List[Dict[Address, object]] = []
        self._root_cache: Optional[bytes] = None
        _LIVE_STATES.add(self)

    # -- account access -----------------------------------------------------

    def _lookup(self, address: Address) -> Optional[Account]:
        account = self._overlay.get(address)
        if account is not None:
            return account
        return self._base.get(address)

    def account_exists(self, address: Address) -> bool:
        return address in self._overlay or address in self._base

    def get_account(self, address: Address) -> Account:
        """Return the account at ``address`` for READING, raising if absent.

        The returned object may be shared with other states; mutate accounts
        only through :meth:`touch` (or the ``set_*`` helpers), never directly.
        """
        account = self._lookup(address)
        if account is None:
            raise UnknownAccount(f"no account at 0x{address.hex()}")
        return account

    def _mutable_account(self, address: Address) -> Account:
        """The account at ``address``, owned by this state and journaled at
        the current snapshot level — the single copy-on-write choke point.

        An account is copied at most once per (fork, journal level): once
        privately owned and recorded, later touches mutate it in place.
        """
        overlay = self._overlay
        self._root_cache = None
        if self._journal:
            top = self._journal[-1]
            if address in top:
                return overlay[address]
            if address in overlay:
                prior = top[address] = overlay[address]
            else:
                top[address] = _ABSENT
                prior = self._base.get(address)
            account = prior.copy() if prior is not None else self._new_account(address)
            overlay[address] = account
            return account
        account = overlay.get(address)
        if account is None:
            prior = self._base.get(address)
            account = prior.copy() if prior is not None else self._new_account(address)
            overlay[address] = account
        return account

    @staticmethod
    def _new_account(address: Address) -> Account:
        if not is_address(address):
            raise ValueError("expected a 20-byte address")
        return Account()

    def get_or_create_account(self, address: Address) -> Account:
        """Return a mutable account at ``address``, creating one if needed."""
        return self.touch(address)

    def touch(self, address: Address) -> Account:
        """Return the account for mutation (copy-on-write + journaled)."""
        account = self._mutable_account(address)
        account.drop_encoding_cache()
        return account

    # -- balances and nonces -------------------------------------------------

    def get_balance(self, address: Address) -> int:
        account = self._lookup(address)
        return account.balance if account is not None else 0

    def set_balance(self, address: Address, balance: int) -> None:
        if balance < 0:
            raise ValueError("balance cannot be negative")
        self.touch(address).balance = balance

    def add_balance(self, address: Address, amount: int) -> None:
        self.set_balance(address, self.get_balance(address) + amount)

    def subtract_balance(self, address: Address, amount: int) -> None:
        balance = self.get_balance(address)
        if amount > balance:
            raise ValueError("balance would become negative")
        self.set_balance(address, balance - amount)

    def get_nonce(self, address: Address) -> int:
        account = self._lookup(address)
        return account.nonce if account is not None else 0

    def increment_nonce(self, address: Address) -> None:
        self.touch(address).nonce += 1

    # -- storage --------------------------------------------------------------

    def get_storage(self, address: Address, slot: bytes) -> bytes:
        account = self._lookup(address)
        if account is None:
            return b"\x00" * 32
        return account.get_storage(slot)

    def set_storage(self, address: Address, slot: bytes, value: bytes) -> None:
        self.touch(address).set_storage(slot, value)

    def set_code(self, address: Address, code: str) -> None:
        self.touch(address).code = code

    def get_code(self, address: Address) -> Optional[str]:
        account = self._lookup(address)
        return account.code if account is not None else None

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> int:
        """Open a new journal level and return its identifier."""
        self._journal.append({})
        return len(self._journal) - 1

    def revert(self, snapshot_id: int) -> None:
        """Undo all changes made since ``snapshot_id`` (inclusive of later ones)."""
        if snapshot_id < 0 or snapshot_id >= len(self._journal):
            raise ValueError(f"unknown snapshot id {snapshot_id}")
        overlay = self._overlay
        while len(self._journal) > snapshot_id:
            for address, prior in self._journal.pop().items():
                if prior is _ABSENT:
                    overlay.pop(address, None)
                else:
                    overlay[address] = prior
        self._root_cache = None

    def commit(self, snapshot_id: int) -> None:
        """Discard the journal level, folding changes into the level below."""
        if snapshot_id < 0 or snapshot_id >= len(self._journal):
            raise ValueError(f"unknown snapshot id {snapshot_id}")
        while len(self._journal) > snapshot_id:
            journal = self._journal.pop()
            if self._journal:
                parent = self._journal[-1]
                for address, previous in journal.items():
                    parent.setdefault(address, previous)

    # -- commitments ----------------------------------------------------------

    def _merged(self) -> Dict[Address, Account]:
        if not self._overlay:
            return self._base
        merged = dict(self._base)
        merged.update(self._overlay)
        return merged

    def state_root(self) -> bytes:
        """Deterministic commitment over every account (address-sorted).

        The commitment bytes are identical to the pre-copy-on-write
        implementation; only the work is incremental — unchanged accounts
        reuse their memoised encodings and an unchanged state reuses the
        whole root.
        """
        root = self._root_cache
        if root is None:
            tracer = _obs.TRACER
            start = perf_counter() if tracer is not None else 0.0
            items = sorted(self._merged().items())
            root = keccak256(
                rlp_encode([[address, account.encode()] for address, account in items])
            )
            self._root_cache = root
            if tracer is not None:
                tracer.phase("trie_commit", start)
        return root

    # -- forking ---------------------------------------------------------------

    def _seal(self) -> None:
        """Fold the overlay into a fresh base so forks can share it.

        Paid once per sealed state regardless of how many forks are taken;
        ancestors holding references to the old base are unaffected because
        the merged mapping is a new dict.
        """
        if self._overlay:
            merged = dict(self._base)
            merged.update(self._overlay)
            self._base = merged
            self._overlay = {}

    def fork(self) -> "WorldState":
        """An O(1) copy-on-write child sharing this state's accounts.

        Mutating either state never affects the other: writes land in the
        writer's private overlay, copying the account first.  Forking a
        state with open snapshots falls back to a materialised deep copy
        (journals cannot be shared).
        """
        if self._journal:
            return WorldState(
                {address: account.copy() for address, account in self._merged().items()}
            )
        self._seal()
        child = WorldState.__new__(WorldState)
        child._base = self._base
        child._overlay = {}
        child._journal = []
        child._root_cache = self._root_cache
        _LIVE_STATES.add(child)
        return child

    def copy(self) -> "WorldState":
        """Alias of :meth:`fork` (kept for the pre-copy-on-write API)."""
        return self.fork()

    def accounts(self) -> Iterator[Tuple[Address, Account]]:
        """Iterate over (address, account) pairs (read-only)."""
        return iter(self._merged().items())

    def __len__(self) -> int:
        return len(self._merged())

    def __contains__(self, address: object) -> bool:
        return address in self._overlay or address in self._base

    # -- memory accounting -----------------------------------------------------

    def rss_stats(self) -> Dict[str, int]:
        """Size accounting for this state: account, memo, and slot counts.

        Shadowed base entries are not double-counted; ``encoded_memos``
        counts accounts currently holding a memoised RLP encoding (the
        per-account cache that retention is supposed to release).
        """
        base_accounts = len(self._base)
        overlay_accounts = len(self._overlay)
        encoded_memos = 0
        storage_slots = 0
        for account in self._merged().values():
            if "_encoded" in account.__dict__:
                encoded_memos += 1
            storage_slots += len(account.storage)
        return {
            "accounts": len(self),
            "base_accounts": base_accounts,
            "encoded_memos": encoded_memos,
            "overlay_accounts": overlay_accounts,
            "storage_slots": storage_slots,
        }


@dataclass(frozen=True)
class StateSnapshot:
    """A sealed observation of one state's memory footprint.

    Recorded by the chain each time retention prunes its window, so tests
    and the ``horizon`` experiment can assert that pruning actually released
    per-account memos rather than merely hiding blocks.
    """

    block_number: int
    state_root: bytes
    accounts: int
    base_accounts: int
    overlay_accounts: int
    encoded_memos: int
    storage_slots: int

    @classmethod
    def capture(
        cls, state: "WorldState", block_number: int, state_root: bytes
    ) -> "StateSnapshot":
        stats = state.rss_stats()
        return cls(
            block_number=block_number,
            state_root=state_root,
            accounts=stats["accounts"],
            base_accounts=stats["base_accounts"],
            overlay_accounts=stats["overlay_accounts"],
            encoded_memos=stats["encoded_memos"],
            storage_slots=stats["storage_slots"],
        )


def live_state_stats() -> Dict[str, int]:
    """Process-wide accounting over every live :class:`WorldState`.

    Distinct frozen bases are counted once no matter how many forks share
    them — the number of distinct bases is exactly the quantity retention
    bounds, because every evicted apply-cache template releases one.
    """
    states = list(_LIVE_STATES)
    bases: Dict[int, Dict[Address, Account]] = {}
    overlay_accounts = 0
    for state in states:
        bases[id(state._base)] = state._base
        overlay_accounts += len(state._overlay)
    distinct_accounts: Dict[int, Account] = {}
    for base in bases.values():
        for account in base.values():
            distinct_accounts[id(account)] = account
    encoded_memos = sum(
        1 for account in distinct_accounts.values() if "_encoded" in account.__dict__
    )
    return {
        "base_accounts": sum(len(base) for base in bases.values()),
        "distinct_accounts": len(distinct_accounts),
        "distinct_bases": len(bases),
        "encoded_memos": encoded_memos,
        "live_states": len(states),
        "overlay_accounts": overlay_accounts,
    }
