"""Gas schedule and gas metering.

Gas accounting in this reproduction does not need to match mainnet prices
exactly — the experiments' outcomes depend on which transactions succeed,
not on fee markets — but the structure (intrinsic cost, per-calldata-byte
cost, storage write costs, out-of-gas failure) is kept so that the miner's
block gas limit and fee-priority ordering behave like the real system.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GasSchedule", "GasMeter", "OutOfGas"]


class OutOfGas(Exception):
    """Raised when a contract execution exceeds its gas limit."""


@dataclass(frozen=True)
class GasSchedule:
    """Cost constants, loosely modelled on the Ethereum yellow paper."""

    tx_base: int = 21_000
    calldata_zero_byte: int = 4
    calldata_nonzero_byte: int = 16
    storage_set: int = 20_000
    storage_update: int = 5_000
    storage_clear_refund: int = 4_800
    storage_read: int = 200
    log_base: int = 375
    log_topic: int = 375
    log_data_byte: int = 8
    keccak_base: int = 30
    keccak_word: int = 6
    call_value_transfer: int = 9_000
    contract_creation: int = 32_000
    compute_step: int = 3


class GasMeter:
    """Tracks gas consumption for one message execution."""

    def __init__(self, gas_limit: int, schedule: GasSchedule | None = None) -> None:
        if gas_limit <= 0:
            raise ValueError("gas limit must be positive")
        self.gas_limit = gas_limit
        self.schedule = schedule or GasSchedule()
        self._used = 0
        self._refund = 0

    @property
    def used(self) -> int:
        """Gas consumed so far (refunds not yet applied)."""
        return self._used

    @property
    def remaining(self) -> int:
        return self.gas_limit - self._used

    def consume(self, amount: int, reason: str = "") -> None:
        """Charge ``amount`` gas, raising :class:`OutOfGas` on exhaustion."""
        if amount < 0:
            raise ValueError("cannot consume negative gas")
        if self._used + amount > self.gas_limit:
            self._used = self.gas_limit
            raise OutOfGas(f"out of gas{': ' + reason if reason else ''}")
        self._used += amount

    def refund(self, amount: int) -> None:
        """Record a refund (capped at half of gas used when finalized)."""
        if amount < 0:
            raise ValueError("cannot refund negative gas")
        self._refund += amount

    def finalize(self) -> int:
        """Return the net gas used after applying the capped refund."""
        capped_refund = min(self._refund, self._used // 2)
        return self._used - capped_refund

    def charge_storage_write(self, had_value: bool, clears_value: bool) -> None:
        """Charge for an SSTORE-like operation."""
        if clears_value and had_value:
            self.consume(self.schedule.storage_update, "storage clear")
            self.refund(self.schedule.storage_clear_refund)
        elif had_value:
            self.consume(self.schedule.storage_update, "storage update")
        else:
            self.consume(self.schedule.storage_set, "storage set")

    def charge_storage_read(self) -> None:
        self.consume(self.schedule.storage_read, "storage read")

    def charge_keccak(self, data_length: int) -> None:
        words = (data_length + 31) // 32
        self.consume(self.schedule.keccak_base + words * self.schedule.keccak_word, "keccak")

    def charge_log(self, topic_count: int, data_length: int) -> None:
        self.consume(
            self.schedule.log_base
            + topic_count * self.schedule.log_topic
            + data_length * self.schedule.log_data_byte,
            "log",
        )
