"""Blockchain substrate: accounts, transactions, blocks, state, and the chain."""

from .account import Account
from .block import Block, BlockHeader, transactions_root
from .chain import Blockchain, ChainAnchor, execute_transactions
from .errors import (
    ChainError,
    InsufficientBalance,
    InvalidBlock,
    InvalidTransaction,
    NonceError,
    PrunedHistoryError,
    UnknownAccount,
    ValidationError,
)
from .executor import BlockContext, TransactionExecutor, ValueTransferExecutor
from .gas import GasMeter, GasSchedule, OutOfGas
from .apply_cache import BlockApplyCache
from .genesis import (
    DEFAULT_INITIAL_BALANCE,
    ContractAllocation,
    GenesisConfig,
    build_genesis,
    build_genesis_cached,
    clear_genesis_cache,
    genesis_digest,
)
from .logs import LogBloom, LogIndex, LogQuery, MatchedLog, bloom_for_block
from .receipt import LogEntry, Receipt, receipts_root
from .state import StateSnapshot, WorldState, live_state_stats
from .transaction import Transaction, sign_transaction
from .trie import MerklePatriciaTrie, ordered_trie_root, trie_root, verify_proof
from .wire import (
    WireDecodingError,
    decode_block,
    decode_header,
    decode_receipt,
    decode_transaction,
    encode_block,
    encode_header,
    encode_receipt,
    encode_transaction,
    clear_wire_cache,
    wire_cache_stats,
    wire_encoding,
)

__all__ = [
    "Account",
    "Block",
    "BlockHeader",
    "transactions_root",
    "Blockchain",
    "ChainAnchor",
    "execute_transactions",
    "ChainError",
    "InsufficientBalance",
    "InvalidBlock",
    "InvalidTransaction",
    "NonceError",
    "PrunedHistoryError",
    "UnknownAccount",
    "ValidationError",
    "BlockContext",
    "TransactionExecutor",
    "ValueTransferExecutor",
    "GasMeter",
    "GasSchedule",
    "OutOfGas",
    "DEFAULT_INITIAL_BALANCE",
    "ContractAllocation",
    "GenesisConfig",
    "build_genesis",
    "build_genesis_cached",
    "clear_genesis_cache",
    "genesis_digest",
    "BlockApplyCache",
    "LogEntry",
    "Receipt",
    "receipts_root",
    "StateSnapshot",
    "WorldState",
    "live_state_stats",
    "Transaction",
    "sign_transaction",
    "LogBloom",
    "LogIndex",
    "LogQuery",
    "MatchedLog",
    "bloom_for_block",
    "MerklePatriciaTrie",
    "ordered_trie_root",
    "trie_root",
    "verify_proof",
    "WireDecodingError",
    "decode_block",
    "decode_header",
    "decode_receipt",
    "decode_transaction",
    "encode_block",
    "encode_header",
    "encode_receipt",
    "encode_transaction",
    "wire_encoding",
    "clear_wire_cache",
    "wire_cache_stats",
]
