"""A hexary Merkle Patricia trie, Ethereum's authenticated key/value structure.

The chain substrate commits to its transaction and receipt lists with this
trie (as the yellow paper specifies), so the roots in block headers are real
Merkle roots: a light client holding only a root can verify a single
transaction's inclusion with a logarithmic proof, which the proof helpers at
the bottom of this module implement.

Node model (per the yellow paper, appendix D):

* **leaf** — ``[encoded_path, value]`` with an odd/even hex-prefix flag;
* **extension** — ``[encoded_path, child]`` sharing a common nibble prefix;
* **branch** — a 17-item node: one child per nibble plus a value slot.

Nodes shorter than 32 bytes are embedded in their parent; longer nodes are
referenced by their Keccak-256 hash, exactly like the real structure, so
roots computed here match the shape (and the collision resistance) of
Ethereum's, even though this reproduction does not need byte-for-byte
mainnet compatibility.

Incremental commitment: every node memoises its RLP form and its reference
(inline RLP or hash).  A ``put``/``delete`` clears those memos only along the
mutated path, so a subsequent ``root()`` re-encodes O(changed path) nodes
instead of the whole structure — the difference between per-block commits
costing O(depth) and O(n) as history grows.  ``delete`` is structural
(leaf removal with extension/branch collapse), not a rebuild.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..crypto.keccak import keccak256
from ..encoding.rlp import rlp_decode, rlp_encode

__all__ = [
    "MerklePatriciaTrie",
    "trie_root",
    "ordered_trie_root",
    "clear_root_cache",
    "verify_proof",
    "ProofError",
]

EMPTY_ROOT = keccak256(rlp_encode(b""))


class ProofError(ValueError):
    """Raised when a Merkle proof does not verify against the claimed root."""


def _to_nibbles(key: bytes) -> List[int]:
    nibbles: List[int] = []
    for byte in key:
        nibbles.append(byte >> 4)
        nibbles.append(byte & 0x0F)
    return nibbles


def _hex_prefix_encode(nibbles: Sequence[int], is_leaf: bool) -> bytes:
    """Encode a nibble path with the odd/even + leaf/extension flag nibble."""
    flag = 2 if is_leaf else 0
    if len(nibbles) % 2 == 1:
        prefixed = [flag + 1] + list(nibbles)
    else:
        prefixed = [flag, 0] + list(nibbles)
    return bytes(
        (prefixed[index] << 4) | prefixed[index + 1] for index in range(0, len(prefixed), 2)
    )


def _hex_prefix_decode(encoded: bytes) -> Tuple[List[int], bool]:
    nibbles = _to_nibbles(encoded)
    flag = nibbles[0]
    is_leaf = flag >= 2
    if flag % 2 == 1:
        path = nibbles[1:]
    else:
        path = nibbles[2:]
    return path, is_leaf


def _common_prefix_length(left: Sequence[int], right: Sequence[int]) -> int:
    length = 0
    for a, b in zip(left, right):
        if a != b:
            break
        length += 1
    return length


class _Node:
    """Base of the three node kinds; carries the encoding memo.

    ``rlp_memo`` is the node's RLP structure, ``ref_memo`` the parent-visible
    reference (the RLP structure itself when its encoding is < 32 bytes, the
    32-byte Keccak hash otherwise).  Both are cleared whenever the node or
    anything beneath it changes; mutation helpers on the trie clear them
    bottom-up along exactly the touched path.
    """

    __slots__ = ("rlp_memo", "ref_memo")

    kind = ""

    def __init__(self) -> None:
        self.rlp_memo = None
        self.ref_memo = None

    def invalidate(self) -> None:
        self.rlp_memo = None
        self.ref_memo = None


class _Leaf(_Node):
    __slots__ = ("path", "value")

    kind = "leaf"

    def __init__(self, path: List[int], value: bytes) -> None:
        super().__init__()
        self.path = path
        self.value = value


class _Extension(_Node):
    __slots__ = ("path", "child")

    kind = "ext"

    def __init__(self, path: List[int], child: "_Node") -> None:
        super().__init__()
        self.path = path
        self.child = child


class _Branch(_Node):
    __slots__ = ("children", "value")

    kind = "branch"

    def __init__(self, children: List[Optional["_Node"]], value: Optional[bytes]) -> None:
        super().__init__()
        self.children = children
        self.value = value

    def child_count(self) -> int:
        return sum(1 for child in self.children if child is not None)


class MerklePatriciaTrie:
    """An in-memory hexary Merkle Patricia trie with proofs.

    Node encodings are memoised per node and invalidated along the mutated
    path, so ``root()`` after k single-key updates costs O(k · depth)
    re-encodings regardless of how many keys the trie holds.
    """

    def __init__(self) -> None:
        self._root_node: Optional[_Node] = None
        self._items: Dict[bytes, bytes] = {}

    # -- public API -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: object) -> bool:
        return key in self._items

    def get(self, key: bytes) -> Optional[bytes]:
        """Return the value stored at ``key`` or None."""
        return self._items.get(bytes(key))

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update ``key`` with ``value`` (empty value deletes)."""
        key = bytes(key)
        value = bytes(value)
        if not value:
            self.delete(key)
            return
        self._items[key] = value
        self._root_node = self._insert(self._root_node, _to_nibbles(key), value)

    def delete(self, key: bytes) -> None:
        """Remove ``key`` (no-op when absent) by structural deletion: the
        leaf is unlinked and any single-child branches / chained extensions
        left behind collapse back into canonical form."""
        key = bytes(key)
        if key not in self._items:
            return
        del self._items[key]
        self._root_node = self._delete(self._root_node, _to_nibbles(key))

    def root(self) -> bytes:
        """The 32-byte Merkle root (the hash of the empty string for an empty trie)."""
        node = self._root_node
        if node is None:
            return EMPTY_ROOT
        reference = self._encode_node(node)
        if isinstance(reference, bytes) and len(reference) == 32:
            return reference
        # The root node is embedded (its encoding is < 32 bytes): the root is
        # the hash of that encoding.
        return keccak256(rlp_encode(self._node_to_rlp(node)))

    def items(self) -> List[Tuple[bytes, bytes]]:
        return sorted(self._items.items())

    # -- proofs -----------------------------------------------------------------------

    def prove(self, key: bytes) -> List[bytes]:
        """Return the list of RLP-encoded nodes on the path from root to ``key``."""
        proof: List[bytes] = []
        node = self._root_node
        nibbles = _to_nibbles(bytes(key))
        while node is not None:
            proof.append(rlp_encode(self._node_to_rlp(node)))
            if node.kind == "leaf":
                break
            if node.kind == "ext":
                path = node.path
                if nibbles[: len(path)] != path:
                    break
                nibbles = nibbles[len(path):]
                node = node.child
                continue
            # branch
            if not nibbles:
                break
            node = node.children[nibbles[0]]
            nibbles = nibbles[1:]
        return proof

    # -- insertion ---------------------------------------------------------------------

    def _insert(self, node: Optional[_Node], nibbles: List[int], value: bytes) -> _Node:
        if node is None:
            return _Leaf(nibbles, value)
        if node.kind == "leaf":
            return self._insert_into_leaf(node, nibbles, value)
        if node.kind == "ext":
            return self._insert_into_extension(node, nibbles, value)
        return self._insert_into_branch(node, nibbles, value)

    def _insert_into_leaf(self, node: _Leaf, nibbles: List[int], value: bytes) -> _Node:
        if node.path == nibbles:
            node.value = value
            node.invalidate()
            return node
        common = _common_prefix_length(node.path, nibbles)
        branch_children: List[Optional[_Node]] = [None] * 16
        branch_value: Optional[bytes] = None
        remaining_existing = node.path[common:]
        remaining_new = nibbles[common:]
        if not remaining_existing:
            branch_value = node.value
        else:
            branch_children[remaining_existing[0]] = _Leaf(remaining_existing[1:], node.value)
        if not remaining_new:
            branch_value = value
        else:
            branch_children[remaining_new[0]] = _Leaf(remaining_new[1:], value)
        branch = _Branch(branch_children, branch_value)
        if common:
            return _Extension(nibbles[:common], branch)
        return branch

    def _insert_into_extension(self, node: _Extension, nibbles: List[int], value: bytes) -> _Node:
        common = _common_prefix_length(node.path, nibbles)
        if common == len(node.path):
            node.child = self._insert(node.child, nibbles[common:], value)
            node.invalidate()
            return node
        branch_children: List[Optional[_Node]] = [None] * 16
        branch_value: Optional[bytes] = None
        # The existing extension's remainder.
        remaining_path = node.path[common:]
        if len(remaining_path) == 1:
            descendant: _Node = node.child
        else:
            descendant = _Extension(remaining_path[1:], node.child)
        branch_children[remaining_path[0]] = descendant
        # The new key's remainder.
        remaining_new = nibbles[common:]
        if not remaining_new:
            branch_value = value
        else:
            branch_children[remaining_new[0]] = _Leaf(remaining_new[1:], value)
        branch = _Branch(branch_children, branch_value)
        if common:
            return _Extension(nibbles[:common], branch)
        return branch

    def _insert_into_branch(self, node: _Branch, nibbles: List[int], value: bytes) -> _Node:
        if not nibbles:
            node.value = value
            node.invalidate()
            return node
        index = nibbles[0]
        node.children[index] = self._insert(node.children[index], nibbles[1:], value)
        node.invalidate()
        return node

    # -- deletion ----------------------------------------------------------------------

    def _delete(self, node: Optional[_Node], nibbles: List[int]) -> Optional[_Node]:
        """Remove ``nibbles`` from the subtree under ``node``; returns the
        canonical replacement subtree (None when it becomes empty).

        The caller guarantees the key is present, so every path below ends in
        a leaf removal or a branch-value clear; on the way back up any branch
        left with a single child and no value collapses into its child.
        """
        if node is None:  # pragma: no cover - guarded by the item map
            return None
        if node.kind == "leaf":
            # The item map guarantees node.path == nibbles.
            return None
        if node.kind == "ext":
            node.child = self._delete(node.child, nibbles[len(node.path):])
            return self._collapse_extension(node)
        # branch
        if not nibbles:
            node.value = None
        else:
            index = nibbles[0]
            node.children[index] = self._delete(node.children[index], nibbles[1:])
        return self._collapse_branch(node)

    def _collapse_extension(self, node: _Extension) -> Optional[_Node]:
        """Re-canonicalise an extension whose child subtree just changed."""
        child = node.child
        if child is None:
            return None
        if child.kind == "leaf":
            # ext(p) + leaf(q) -> leaf(p + q)
            return _Leaf(node.path + child.path, child.value)
        if child.kind == "ext":
            # ext(p) + ext(q) -> ext(p + q)
            return _Extension(node.path + child.path, child.child)
        node.invalidate()
        return node

    def _collapse_branch(self, node: _Branch) -> Optional[_Node]:
        """Collapse a branch that may have lost children or its value."""
        count = node.child_count()
        if count == 0:
            if node.value is None:
                return None
            # Only the value slot remains: the branch becomes a leaf with an
            # empty path.
            return _Leaf([], node.value)
        if count == 1 and node.value is None:
            # A single child: splice the branch out, prefixing the child with
            # the nibble that selected it.
            index = next(
                child_index
                for child_index, child in enumerate(node.children)
                if child is not None
            )
            child = node.children[index]
            if child.kind == "leaf":
                return _Leaf([index] + child.path, child.value)
            if child.kind == "ext":
                return _Extension([index] + child.path, child.child)
            return _Extension([index], child)
        node.invalidate()
        return node

    # -- encoding -----------------------------------------------------------------------

    def _node_to_rlp(self, node: _Node):
        memo = node.rlp_memo
        if memo is not None:
            return memo
        if node.kind == "leaf":
            rlp_form = [_hex_prefix_encode(node.path, True), node.value]
        elif node.kind == "ext":
            rlp_form = [_hex_prefix_encode(node.path, False), self._encode_node(node.child)]
        else:
            rlp_form = [
                self._encode_node(child) if child is not None else b""
                for child in node.children
            ]
            rlp_form.append(node.value if node.value is not None else b"")
        node.rlp_memo = rlp_form
        return rlp_form

    def _encode_node(self, node: Optional[_Node]):
        """Return the node reference: inline RLP if < 32 bytes, else its hash."""
        if node is None:
            return b""
        memo = node.ref_memo
        if memo is not None:
            return memo
        rlp_form = self._node_to_rlp(node)
        encoded = rlp_encode(rlp_form)
        reference = rlp_form if len(encoded) < 32 else keccak256(encoded)
        node.ref_memo = reference
        return reference


def trie_root(items: Dict[bytes, bytes]) -> bytes:
    """Root of a trie holding ``items`` (a plain mapping)."""
    trie = MerklePatriciaTrie()
    for key, value in items.items():
        trie.put(key, value)
    return trie.root()


def _ordered_trie_root_uncached(values: Tuple[bytes, ...]) -> bytes:
    trie = MerklePatriciaTrie()
    for index, value in enumerate(values):
        trie.put(rlp_encode(index), value)
    return trie.root()


_ORDERED_ROOT_CACHE: Dict[Tuple[bytes, ...], bytes] = {}
_ORDERED_ROOT_CACHE_MAX = 4096


def clear_root_cache() -> None:
    """Drop the ordered-trie-root memo (pure ``values -> root`` pairs).

    Part of the per-engine-run cache lifecycle: long-lived sweep workers
    clear this together with the keccak digest memo so their memory stays
    bounded by one run.
    """
    _ORDERED_ROOT_CACHE.clear()


def ordered_trie_root(values: Sequence[bytes]) -> bytes:
    """Root of a trie keyed by RLP-encoded list index — how Ethereum commits to
    a block's transaction and receipt lists.

    Memoised on the value tuple: the miner that builds a block and every peer
    that validates it compute the same commitment over the same list, so each
    distinct list is committed once per process.  The memo is bounded (FIFO
    eviction) and holds only pure ``values -> root`` pairs.
    """
    key = tuple(bytes(value) for value in values)
    cached = _ORDERED_ROOT_CACHE.get(key)
    if cached is not None:
        return cached
    root = _ordered_trie_root_uncached(key)
    if len(_ORDERED_ROOT_CACHE) >= _ORDERED_ROOT_CACHE_MAX:
        _ORDERED_ROOT_CACHE.pop(next(iter(_ORDERED_ROOT_CACHE)))
    _ORDERED_ROOT_CACHE[key] = root
    return root


def verify_proof(root: bytes, key: bytes, value: bytes, proof: Sequence[bytes]) -> bool:
    """Verify a Merkle inclusion proof produced by :meth:`MerklePatriciaTrie.prove`.

    Walks the supplied nodes from the root, checking each node hashes (or
    embeds) correctly and that the path consumes the key's nibbles, ending at
    ``value``.  Raises :class:`ProofError` on malformed proofs and returns
    False when the proof is well-formed but does not bind ``key`` to
    ``value`` under ``root``.
    """
    if not proof:
        raise ProofError("empty proof")
    expected_reference: object = root
    nibbles = _to_nibbles(bytes(key))
    for encoded_node in proof:
        node = rlp_decode(encoded_node)
        if isinstance(expected_reference, bytes):
            if len(expected_reference) == 32 and keccak256(encoded_node) != expected_reference:
                raise ProofError("proof node hash does not match its reference")
        else:
            if node != expected_reference:
                raise ProofError("embedded proof node does not match its reference")
        if not isinstance(node, list):
            raise ProofError("malformed trie node")
        if len(node) == 2:
            path, is_leaf = _hex_prefix_decode(node[0])
            if is_leaf:
                return nibbles == path and node[1] == bytes(value)
            if nibbles[: len(path)] != path:
                return False
            nibbles = nibbles[len(path):]
            expected_reference = node[1]
        elif len(node) == 17:
            if not nibbles:
                return node[16] == bytes(value)
            expected_reference = node[nibbles[0]]
            nibbles = nibbles[1:]
            if expected_reference == b"":
                return False
        else:
            raise ProofError("trie nodes must have 2 or 17 items")
    return False
