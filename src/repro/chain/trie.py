"""A hexary Merkle Patricia trie, Ethereum's authenticated key/value structure.

The chain substrate commits to its transaction and receipt lists with this
trie (as the yellow paper specifies), so the roots in block headers are real
Merkle roots: a light client holding only a root can verify a single
transaction's inclusion with a logarithmic proof, which the proof helpers at
the bottom of this module implement.

Node model (per the yellow paper, appendix D):

* **leaf** — ``[encoded_path, value]`` with an odd/even hex-prefix flag;
* **extension** — ``[encoded_path, child]`` sharing a common nibble prefix;
* **branch** — a 17-item node: one child per nibble plus a value slot.

Nodes shorter than 32 bytes are embedded in their parent; longer nodes are
referenced by their Keccak-256 hash, exactly like the real structure, so
roots computed here match the shape (and the collision resistance) of
Ethereum's, even though this reproduction does not need byte-for-byte
mainnet compatibility.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..crypto.keccak import keccak256
from ..encoding.rlp import rlp_decode, rlp_encode

__all__ = ["MerklePatriciaTrie", "trie_root", "ordered_trie_root", "verify_proof", "ProofError"]

EMPTY_ROOT = keccak256(rlp_encode(b""))


class ProofError(ValueError):
    """Raised when a Merkle proof does not verify against the claimed root."""


def _to_nibbles(key: bytes) -> List[int]:
    nibbles: List[int] = []
    for byte in key:
        nibbles.append(byte >> 4)
        nibbles.append(byte & 0x0F)
    return nibbles


def _hex_prefix_encode(nibbles: Sequence[int], is_leaf: bool) -> bytes:
    """Encode a nibble path with the odd/even + leaf/extension flag nibble."""
    flag = 2 if is_leaf else 0
    if len(nibbles) % 2 == 1:
        prefixed = [flag + 1] + list(nibbles)
    else:
        prefixed = [flag, 0] + list(nibbles)
    return bytes(
        (prefixed[index] << 4) | prefixed[index + 1] for index in range(0, len(prefixed), 2)
    )


def _hex_prefix_decode(encoded: bytes) -> Tuple[List[int], bool]:
    nibbles = _to_nibbles(encoded)
    flag = nibbles[0]
    is_leaf = flag >= 2
    if flag % 2 == 1:
        path = nibbles[1:]
    else:
        path = nibbles[2:]
    return path, is_leaf


def _common_prefix_length(left: Sequence[int], right: Sequence[int]) -> int:
    length = 0
    for a, b in zip(left, right):
        if a != b:
            break
        length += 1
    return length


class MerklePatriciaTrie:
    """An in-memory hexary Merkle Patricia trie with proofs."""

    def __init__(self) -> None:
        # Internal representation: nested Python node structures.
        #   None                      — empty
        #   ("leaf", nibbles, value)
        #   ("ext", nibbles, child)
        #   ("branch", [16 children], value-or-None)
        self._root_node = None
        self._items: Dict[bytes, bytes] = {}

    # -- public API -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: object) -> bool:
        return key in self._items

    def get(self, key: bytes) -> Optional[bytes]:
        """Return the value stored at ``key`` or None."""
        return self._items.get(bytes(key))

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update ``key`` with ``value`` (empty value deletes)."""
        key = bytes(key)
        value = bytes(value)
        if not value:
            self.delete(key)
            return
        self._items[key] = value
        self._root_node = self._insert(self._root_node, _to_nibbles(key), value)

    def delete(self, key: bytes) -> None:
        """Remove ``key`` (no-op when absent).  Rebuilds from the item map —
        deletion is rare in this codebase (only storage clears), so clarity
        wins over an incremental delete."""
        key = bytes(key)
        if key not in self._items:
            return
        del self._items[key]
        self._root_node = None
        for stored_key, stored_value in self._items.items():
            self._root_node = self._insert(self._root_node, _to_nibbles(stored_key), stored_value)

    def root(self) -> bytes:
        """The 32-byte Merkle root (the hash of the empty string for an empty trie)."""
        if self._root_node is None:
            return EMPTY_ROOT
        encoded = self._encode_node(self._root_node)
        if isinstance(encoded, bytes) and len(encoded) == 32:
            return encoded
        return keccak256(rlp_encode(self._node_to_rlp(self._root_node)))

    def items(self) -> List[Tuple[bytes, bytes]]:
        return sorted(self._items.items())

    # -- proofs -----------------------------------------------------------------------

    def prove(self, key: bytes) -> List[bytes]:
        """Return the list of RLP-encoded nodes on the path from root to ``key``."""
        proof: List[bytes] = []
        node = self._root_node
        nibbles = _to_nibbles(bytes(key))
        while node is not None:
            proof.append(rlp_encode(self._node_to_rlp(node)))
            kind = node[0]
            if kind == "leaf":
                break
            if kind == "ext":
                _, path, child = node
                if nibbles[: len(path)] != list(path):
                    break
                nibbles = nibbles[len(path):]
                node = child
                continue
            # branch
            _, children, value = node
            if not nibbles:
                break
            child = children[nibbles[0]]
            nibbles = nibbles[1:]
            node = child
        return proof

    # -- insertion ---------------------------------------------------------------------

    def _insert(self, node, nibbles: List[int], value: bytes):
        if node is None:
            return ("leaf", nibbles, value)
        kind = node[0]
        if kind == "leaf":
            return self._insert_into_leaf(node, nibbles, value)
        if kind == "ext":
            return self._insert_into_extension(node, nibbles, value)
        return self._insert_into_branch(node, nibbles, value)

    def _insert_into_leaf(self, node, nibbles, value):
        _, existing_path, existing_value = node
        if list(existing_path) == list(nibbles):
            return ("leaf", nibbles, value)
        common = _common_prefix_length(existing_path, nibbles)
        branch_children: List[object] = [None] * 16
        branch_value = None
        remaining_existing = list(existing_path[common:])
        remaining_new = list(nibbles[common:])
        if not remaining_existing:
            branch_value = existing_value
        else:
            branch_children[remaining_existing[0]] = ("leaf", remaining_existing[1:], existing_value)
        if not remaining_new:
            branch_value = value
        else:
            branch_children[remaining_new[0]] = ("leaf", remaining_new[1:], value)
        branch = ("branch", branch_children, branch_value)
        if common:
            return ("ext", list(nibbles[:common]), branch)
        return branch

    def _insert_into_extension(self, node, nibbles, value):
        _, path, child = node
        common = _common_prefix_length(path, nibbles)
        if common == len(path):
            new_child = self._insert(child, list(nibbles[common:]), value)
            return ("ext", list(path), new_child)
        branch_children: List[object] = [None] * 16
        branch_value = None
        # The existing extension's remainder.
        remaining_path = list(path[common:])
        descendant = child if len(remaining_path) == 1 else ("ext", remaining_path[1:], child)
        branch_children[remaining_path[0]] = descendant
        # The new key's remainder.
        remaining_new = list(nibbles[common:])
        if not remaining_new:
            branch_value = value
        else:
            branch_children[remaining_new[0]] = ("leaf", remaining_new[1:], value)
        branch = ("branch", branch_children, branch_value)
        if common:
            return ("ext", list(nibbles[:common]), branch)
        return branch

    def _insert_into_branch(self, node, nibbles, value):
        _, children, branch_value = node
        children = list(children)
        if not nibbles:
            return ("branch", children, value)
        index = nibbles[0]
        children[index] = self._insert(children[index], list(nibbles[1:]), value)
        return ("branch", children, branch_value)

    # -- encoding -----------------------------------------------------------------------

    def _node_to_rlp(self, node):
        kind = node[0]
        if kind == "leaf":
            _, path, value = node
            return [_hex_prefix_encode(path, True), value]
        if kind == "ext":
            _, path, child = node
            return [_hex_prefix_encode(path, False), self._encode_node(child)]
        _, children, value = node
        encoded_children = [self._encode_node(child) if child is not None else b"" for child in children]
        return encoded_children + [value if value is not None else b""]

    def _encode_node(self, node):
        """Return the node reference: inline RLP if < 32 bytes, else its hash."""
        if node is None:
            return b""
        rlp_form = self._node_to_rlp(node)
        encoded = rlp_encode(rlp_form)
        if len(encoded) < 32:
            return rlp_form
        return keccak256(encoded)


def trie_root(items: Dict[bytes, bytes]) -> bytes:
    """Root of a trie holding ``items`` (a plain mapping)."""
    trie = MerklePatriciaTrie()
    for key, value in items.items():
        trie.put(key, value)
    return trie.root()


def ordered_trie_root(values: Sequence[bytes]) -> bytes:
    """Root of a trie keyed by RLP-encoded list index — how Ethereum commits to
    a block's transaction and receipt lists."""
    trie = MerklePatriciaTrie()
    for index, value in enumerate(values):
        trie.put(rlp_encode(index), value)
    return trie.root()


def verify_proof(root: bytes, key: bytes, value: bytes, proof: Sequence[bytes]) -> bool:
    """Verify a Merkle inclusion proof produced by :meth:`MerklePatriciaTrie.prove`.

    Walks the supplied nodes from the root, checking each node hashes (or
    embeds) correctly and that the path consumes the key's nibbles, ending at
    ``value``.  Raises :class:`ProofError` on malformed proofs and returns
    False when the proof is well-formed but does not bind ``key`` to
    ``value`` under ``root``.
    """
    if not proof:
        raise ProofError("empty proof")
    expected_reference: object = root
    nibbles = _to_nibbles(bytes(key))
    for encoded_node in proof:
        node = rlp_decode(encoded_node)
        if isinstance(expected_reference, bytes):
            if len(expected_reference) == 32 and keccak256(encoded_node) != expected_reference:
                raise ProofError("proof node hash does not match its reference")
        else:
            if node != expected_reference:
                raise ProofError("embedded proof node does not match its reference")
        if not isinstance(node, list):
            raise ProofError("malformed trie node")
        if len(node) == 2:
            path, is_leaf = _hex_prefix_decode(node[0])
            if is_leaf:
                return nibbles == path and node[1] == bytes(value)
            if nibbles[: len(path)] != path:
                return False
            nibbles = nibbles[len(path):]
            expected_reference = node[1]
        elif len(node) == 17:
            if not nibbles:
                return node[16] == bytes(value)
            expected_reference = node[nibbles[0]]
            nibbles = nibbles[1:]
            if expected_reference == b"":
                return False
        else:
            raise ProofError("trie nodes must have 2 or 17 items")
    return False
