"""Exception hierarchy for the chain substrate."""

from __future__ import annotations

__all__ = [
    "ChainError",
    "InvalidTransaction",
    "InvalidBlock",
    "ValidationError",
    "NonceError",
    "InsufficientBalance",
    "UnknownAccount",
    "PrunedHistoryError",
]


class ChainError(Exception):
    """Base class for all chain-substrate errors."""


class InvalidTransaction(ChainError):
    """A transaction is structurally invalid and cannot enter the pool."""


class NonceError(InvalidTransaction):
    """A transaction's nonce does not follow the sender's account nonce."""


class InsufficientBalance(InvalidTransaction):
    """The sender cannot cover value + gas for a transaction."""


class InvalidBlock(ChainError):
    """A block is structurally invalid (bad parent, number, or roots)."""


class ValidationError(InvalidBlock):
    """Block replay on a validating peer produced a different state."""


class UnknownAccount(ChainError):
    """An operation referenced an address with no account record."""


class PrunedHistoryError(ChainError):
    """A lookup targeted a block that retention has already evicted.

    Raised instead of :class:`InvalidBlock` so callers can distinguish
    "this block never existed" from "this block existed but fell outside
    the configured ``retain_blocks`` window"; the chain's sealed
    :class:`~repro.chain.chain.ChainAnchor` still commits to the pruned
    prefix.
    """
