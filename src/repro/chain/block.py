"""Blocks and block headers.

A block commits a miner-chosen ordered list of transactions as one atomic
super-transaction (the paper's "block publishing").  Headers carry the
parent link, state/transaction/receipt roots, difficulty and timestamp so
that validating peers can replay the block and check the roots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..crypto.addresses import Address, ZERO_ADDRESS
from ..crypto.keccak import keccak256
from ..encoding.rlp import rlp_encode
from .receipt import Receipt, receipts_root
from .transaction import Transaction
from .trie import ordered_trie_root

__all__ = ["BlockHeader", "Block", "transactions_root"]


def transactions_root(transactions: List[Transaction]) -> bytes:
    """Merkle Patricia trie root over the block's ordered transaction list,
    keyed by RLP-encoded index — the yellow-paper commitment, so inclusion of
    a single transaction is provable against the header."""
    return ordered_trie_root([transaction.hash for transaction in transactions])


@dataclass(frozen=True)
class BlockHeader:
    """Consensus-relevant block metadata."""

    parent_hash: bytes
    number: int
    timestamp: float
    miner: Address = ZERO_ADDRESS
    state_root: bytes = b"\x00" * 32
    transactions_root: bytes = b"\x00" * 32
    receipts_root: bytes = b"\x00" * 32
    difficulty: int = 1
    gas_limit: int = 8_000_000
    gas_used: int = 0
    nonce: int = 0
    extra_data: bytes = b""

    @property
    def hash(self) -> bytes:
        """Keccak-256 of the RLP-encoded header fields (cached; headers are immutable)."""
        cached = self.__dict__.get("_cached_hash")
        if cached is not None:
            return cached
        digest = keccak256(
            rlp_encode(
                [
                    self.parent_hash,
                    self.number,
                    int(self.timestamp * 1000),
                    self.miner,
                    self.state_root,
                    self.transactions_root,
                    self.receipts_root,
                    self.difficulty,
                    self.gas_limit,
                    self.gas_used,
                    self.nonce,
                    self.extra_data,
                ]
            )
        )
        object.__setattr__(self, "_cached_hash", digest)
        return digest


@dataclass(frozen=True)
class Block:
    """A published block: header plus the ordered transactions and receipts."""

    header: BlockHeader
    transactions: List[Transaction] = field(default_factory=list)
    receipts: List[Receipt] = field(default_factory=list)

    @property
    def hash(self) -> bytes:
        return self.header.hash

    @property
    def number(self) -> int:
        return self.header.number

    @property
    def timestamp(self) -> float:
        return self.header.timestamp

    def transaction_count(self) -> int:
        return len(self.transactions)

    def successful_transaction_count(self) -> int:
        """Number of transactions in this block that changed state."""
        return sum(1 for receipt in self.receipts if receipt.success)

    def failed_transaction_count(self) -> int:
        return len(self.receipts) - self.successful_transaction_count()

    def verify_roots(self) -> bool:
        """Check that the header commitments match the block body."""
        return (
            self.header.transactions_root == transactions_root(self.transactions)
            and self.header.receipts_root == receipts_root(self.receipts)
        )

    def contains(self, transaction_hash: bytes) -> bool:
        return any(transaction.hash == transaction_hash for transaction in self.transactions)

    def receipt_for(self, transaction_hash: bytes) -> Optional[Receipt]:
        for receipt in self.receipts:
            if receipt.transaction_hash == transaction_hash:
                return receipt
        return None

    def short_hash(self) -> str:
        return self.hash.hex()[:8]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Block(number={self.number}, hash={self.short_hash()}, "
            f"txs={self.transaction_count()}, ok={self.successful_transaction_count()})"
        )
