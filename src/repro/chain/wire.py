"""Wire codec: RLP serialization of transactions, headers, and blocks.

The discrete-event network passes Python objects between peers for speed,
but a real devp2p network ships RLP byte strings.  This codec provides the
byte-level round trip so that (a) object identity never leaks information a
real peer would not have, which tests assert by round-tripping every gossiped
artefact, and (b) traces and fixtures can be persisted and replayed.
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional, Union

from ..crypto.addresses import Address
from ..encoding.rlp import RLPDecodingError, rlp_decode, rlp_encode
from ..obs import runtime as _obs
from .block import Block, BlockHeader
from .receipt import LogEntry, Receipt
from .transaction import Transaction

__all__ = [
    "WireDecodingError",
    "encode_transaction",
    "decode_transaction",
    "encode_header",
    "decode_header",
    "encode_receipt",
    "decode_receipt",
    "encode_block",
    "decode_block",
    "wire_encoding",
    "clear_wire_cache",
    "wire_cache_stats",
]

_TIMESTAMP_SCALE = 1_000_000
"""Timestamps travel as integer microseconds (RLP has no float type)."""


class WireDecodingError(ValueError):
    """Raised when a wire payload cannot be decoded into a chain object."""


def _as_int(field: bytes) -> int:
    return int.from_bytes(field, "big") if field else 0


def _optional_address(field: bytes) -> Optional[Address]:
    if field == b"":
        return None
    if len(field) != 20:
        raise WireDecodingError("address fields must be 20 bytes or empty")
    return field


# -- transactions -------------------------------------------------------------------


def encode_transaction(transaction: Transaction) -> bytes:
    """Serialize a transaction, including its signature and submission time."""
    return rlp_encode(
        [
            transaction.sender,
            transaction.nonce,
            transaction.to if transaction.to is not None else b"",
            transaction.value,
            transaction.gas_price,
            transaction.gas_limit,
            transaction.data,
            transaction.signature,
            int(transaction.submitted_at * _TIMESTAMP_SCALE),
        ]
    )


def decode_transaction(payload: bytes) -> Transaction:
    try:
        fields = rlp_decode(payload)
    except RLPDecodingError as error:
        raise WireDecodingError(f"malformed transaction payload: {error}") from None
    if not isinstance(fields, list) or len(fields) != 9:
        raise WireDecodingError("transaction payload must be a 9-item list")
    return Transaction(
        sender=fields[0],
        nonce=_as_int(fields[1]),
        to=_optional_address(fields[2]),
        value=_as_int(fields[3]),
        gas_price=_as_int(fields[4]),
        gas_limit=_as_int(fields[5]),
        data=fields[6],
        signature=fields[7],
        submitted_at=_as_int(fields[8]) / _TIMESTAMP_SCALE,
    )


# -- headers -------------------------------------------------------------------------


def encode_header(header: BlockHeader) -> bytes:
    return rlp_encode(
        [
            header.parent_hash,
            header.number,
            int(header.timestamp * _TIMESTAMP_SCALE),
            header.miner,
            header.state_root,
            header.transactions_root,
            header.receipts_root,
            header.difficulty,
            header.gas_limit,
            header.gas_used,
            header.nonce,
            header.extra_data,
        ]
    )


def decode_header(payload: bytes) -> BlockHeader:
    try:
        fields = rlp_decode(payload)
    except RLPDecodingError as error:
        raise WireDecodingError(f"malformed header payload: {error}") from None
    if not isinstance(fields, list) or len(fields) != 12:
        raise WireDecodingError("header payload must be a 12-item list")
    return BlockHeader(
        parent_hash=fields[0],
        number=_as_int(fields[1]),
        timestamp=_as_int(fields[2]) / _TIMESTAMP_SCALE,
        miner=fields[3],
        state_root=fields[4],
        transactions_root=fields[5],
        receipts_root=fields[6],
        difficulty=_as_int(fields[7]),
        gas_limit=_as_int(fields[8]),
        gas_used=_as_int(fields[9]),
        nonce=_as_int(fields[10]),
        extra_data=fields[11],
    )


# -- receipts and logs -------------------------------------------------------------------


def _encode_log(log: LogEntry) -> list:
    return [log.address, list(log.topics), log.data]


def _decode_log(fields: list) -> LogEntry:
    if len(fields) != 3 or not isinstance(fields[1], list):
        raise WireDecodingError("log entries must be [address, topics, data]")
    return LogEntry(address=fields[0], topics=tuple(fields[1]), data=fields[2])


def encode_receipt(receipt: Receipt) -> bytes:
    return rlp_encode(
        [
            receipt.transaction_hash,
            1 if receipt.success else 0,
            receipt.gas_used,
            [_encode_log(log) for log in receipt.logs],
            receipt.error.encode("utf-8") if receipt.error else b"",
            receipt.return_data,
            receipt.block_number if receipt.block_number is not None else b"",
            receipt.transaction_index if receipt.transaction_index is not None else b"",
        ]
    )


def decode_receipt(payload: bytes) -> Receipt:
    try:
        fields = rlp_decode(payload)
    except RLPDecodingError as error:
        raise WireDecodingError(f"malformed receipt payload: {error}") from None
    if not isinstance(fields, list) or len(fields) != 8:
        raise WireDecodingError("receipt payload must be an 8-item list")
    return Receipt(
        transaction_hash=fields[0],
        success=_as_int(fields[1]) == 1,
        gas_used=_as_int(fields[2]),
        logs=[_decode_log(log_fields) for log_fields in fields[3]],
        error=fields[4].decode("utf-8") if fields[4] else None,
        return_data=fields[5],
        block_number=_as_int(fields[6]) if fields[6] != b"" else None,
        transaction_index=_as_int(fields[7]) if fields[7] != b"" else None,
    )


# -- blocks ---------------------------------------------------------------------------------


def encode_block(block: Block) -> bytes:
    return rlp_encode(
        [
            encode_header(block.header),
            [encode_transaction(transaction) for transaction in block.transactions],
            [encode_receipt(receipt) for receipt in block.receipts],
        ]
    )


def decode_block(payload: bytes) -> Block:
    try:
        fields = rlp_decode(payload)
    except RLPDecodingError as error:
        raise WireDecodingError(f"malformed block payload: {error}") from None
    if not isinstance(fields, list) or len(fields) != 3:
        raise WireDecodingError("block payload must be [header, transactions, receipts]")
    header = decode_header(fields[0])
    transactions = [decode_transaction(item) for item in fields[1]]
    receipts = [decode_receipt(item) for item in fields[2]]
    return Block(header=header, transactions=transactions, receipts=receipts)


# -- per-object encoding memo ----------------------------------------------------------

_ENCODERS = {
    Transaction: encode_transaction,
    Block: encode_block,
    BlockHeader: encode_header,
    Receipt: encode_receipt,
}

_WIRE_CACHE: dict = {}
"""``id(artefact) -> (artefact, payload)``.  Holding a strong reference to
the artefact pins its ``id`` for the life of the entry, which is what makes
the id-keyed lookup sound; :func:`clear_wire_cache` bounds the lifetime."""

_WIRE_CACHE_LIMIT = 8192
"""Entry cap, evicted FIFO (dicts iterate in insertion order).  The gossip
working set is the handful of blocks currently in flight, so the cap never
bites a hit that matters — what it bounds is the *pinning*: without it a
long-horizon run keeps every gossiped block alive through its memo entry
even after the chains have pruned it.  Eviction is always safe (a re-gossip
of an evicted artefact just re-encodes)."""

_WIRE_CACHE_STATS = {"hits": 0, "misses": 0}


def wire_encoding(artefact: Union[Transaction, Block, BlockHeader, Receipt]) -> bytes:
    """The artefact's wire encoding, computed at most once per object.

    Gossiped artefacts are immutable once sealed, so the gossip layer hands
    the *same* frozen object to every neighbour and memoises the bytes it
    would have put on a real wire (for traffic accounting and persisted
    traces) instead of paying an encode/decode round trip per hop.

    Entries hold strong references; sweep workers call
    :func:`clear_wire_cache` between trials (the same lifecycle as
    :func:`repro.crypto.keccak.clear_hash_cache`) so nothing leaks across
    runs.
    """
    key = id(artefact)
    entry = _WIRE_CACHE.get(key)
    if entry is not None and entry[0] is artefact:
        _WIRE_CACHE_STATS["hits"] += 1
        return entry[1]
    encoder = _ENCODERS.get(type(artefact))
    if encoder is None:
        raise TypeError(f"no wire encoding for {type(artefact).__name__}")
    tracer = _obs.TRACER
    start = perf_counter() if tracer is not None else 0.0
    payload = encoder(artefact)
    if tracer is not None:
        tracer.phase("gossip_encode", start)
    _WIRE_CACHE[key] = (artefact, payload)
    _WIRE_CACHE_STATS["misses"] += 1
    while len(_WIRE_CACHE) > _WIRE_CACHE_LIMIT:
        _WIRE_CACHE.pop(next(iter(_WIRE_CACHE)))
    return payload


def clear_wire_cache() -> None:
    """Drop every memoised wire encoding (and the artefact references
    pinning them).  Always safe: the memo only caches pure object->bytes
    pairs for immutable artefacts."""
    _WIRE_CACHE.clear()


def wire_cache_stats() -> dict:
    """Hit/miss/size counters of the wire-encoding memo."""
    return {
        "hits": _WIRE_CACHE_STATS["hits"],
        "misses": _WIRE_CACHE_STATS["misses"],
        "size": len(_WIRE_CACHE),
    }
