"""Log blooms and a chain-wide event query index.

Ethereum headers carry a 2048-bit bloom filter over the block's log
addresses and topics so clients can cheaply skip blocks that cannot contain
an event they care about.  The oracle operator and several examples need
exactly that primitive (scan for ``OracleRequest`` / ``Set`` events), so the
substrate provides the bloom plus a small query API over a chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..crypto.addresses import Address
from ..crypto.keccak import keccak256
from .block import Block
from .chain import Blockchain
from .receipt import LogEntry, Receipt

__all__ = ["LogBloom", "bloom_for_block", "LogQuery", "LogIndex", "MatchedLog"]

BLOOM_BITS = 2048
BLOOM_BYTES = BLOOM_BITS // 8


class LogBloom:
    """A 2048-bit bloom filter over log addresses and topics.

    Each item sets three bits chosen from the low 11 bits of three pairs of
    bytes of its Keccak-256 hash (the yellow-paper construction).
    """

    def __init__(self, bits: Optional[int] = None) -> None:
        self._bits = bits or 0

    @staticmethod
    def _bit_indexes(item: bytes) -> List[int]:
        digest = keccak256(item)
        return [
            ((digest[offset] << 8) | digest[offset + 1]) & (BLOOM_BITS - 1)
            for offset in (0, 2, 4)
        ]

    def add(self, item: bytes) -> "LogBloom":
        for index in self._bit_indexes(item):
            self._bits |= 1 << index
        return self

    def add_log(self, log: LogEntry) -> "LogBloom":
        self.add(log.address)
        for topic in log.topics:
            self.add(topic)
        return self

    def might_contain(self, item: bytes) -> bool:
        """False means definitely absent; True means possibly present."""
        return all(self._bits & (1 << index) for index in self._bit_indexes(item))

    def to_bytes(self) -> bytes:
        return self._bits.to_bytes(BLOOM_BYTES, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "LogBloom":
        if len(data) != BLOOM_BYTES:
            raise ValueError(f"bloom must be {BLOOM_BYTES} bytes")
        return cls(int.from_bytes(data, "big"))

    def __or__(self, other: "LogBloom") -> "LogBloom":
        return LogBloom(self._bits | other._bits)

    def is_empty(self) -> bool:
        return self._bits == 0


def bloom_for_block(block: Block) -> LogBloom:
    """The union bloom over every log in a block's receipts."""
    bloom = LogBloom()
    for receipt in block.receipts:
        for log in receipt.logs:
            bloom.add_log(log)
    return bloom


@dataclass(frozen=True)
class LogQuery:
    """A filter over chain logs (any field may be None = wildcard)."""

    address: Optional[Address] = None
    topic0: Optional[bytes] = None
    from_block: int = 0
    to_block: Optional[int] = None

    def matches(self, log: LogEntry) -> bool:
        if self.address is not None and log.address != self.address:
            return False
        if self.topic0 is not None and (not log.topics or log.topics[0] != self.topic0):
            return False
        return True


@dataclass(frozen=True)
class MatchedLog:
    """A log hit plus its position on the chain."""

    log: LogEntry
    block_number: int
    block_timestamp: float
    transaction_hash: bytes
    transaction_index: int


class LogIndex:
    """Queries a chain's logs, using per-block blooms to skip irrelevant blocks."""

    def __init__(self, chain: Blockchain) -> None:
        self.chain = chain
        self._blooms: dict = {}

    def _bloom(self, block: Block) -> LogBloom:
        cached = self._blooms.get(block.hash)
        if cached is None:
            cached = bloom_for_block(block)
            self._blooms[block.hash] = cached
        return cached

    def query(self, query: LogQuery) -> List[MatchedLog]:
        """Return every log matching ``query`` between its block bounds."""
        matches: List[MatchedLog] = []
        last_block = query.to_block if query.to_block is not None else self.chain.height
        for number in range(query.from_block, last_block + 1):
            block = self.chain.block_by_number(number)
            bloom = self._bloom(block)
            if query.address is not None and not bloom.might_contain(query.address):
                continue
            if query.topic0 is not None and not bloom.might_contain(query.topic0):
                continue
            for receipt in block.receipts:
                if not receipt.success:
                    continue
                for log in receipt.logs:
                    if query.matches(log):
                        matches.append(
                            MatchedLog(
                                log=log,
                                block_number=block.number,
                                block_timestamp=block.timestamp,
                                transaction_hash=receipt.transaction_hash,
                                transaction_index=receipt.transaction_index or 0,
                            )
                        )
        return matches
