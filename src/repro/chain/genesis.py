"""Genesis configuration: the initial world state and block zero."""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..crypto.addresses import Address, ZERO_ADDRESS, address_from_label
from .account import Account
from .block import Block, BlockHeader, transactions_root
from .receipt import receipts_root
from .state import WorldState

__all__ = [
    "ContractAllocation",
    "GenesisConfig",
    "build_genesis",
    "build_genesis_cached",
    "genesis_digest",
    "clear_genesis_cache",
]

DEFAULT_INITIAL_BALANCE = 10**24
"""One million ether (in wei) — ample for every experiment workload."""


@dataclass
class ContractAllocation:
    """A contract pre-deployed in the genesis state.

    ``storage`` maps 32-byte slots to 32-byte values and must contain
    whatever the contract's constructor would have written; pre-deployment
    bypasses constructors (exactly like a genesis ``alloc`` with code and
    storage in a real Ethereum genesis file).
    """

    code_name: str
    storage: Dict[bytes, bytes] = field(default_factory=dict)
    balance: int = 0


@dataclass
class GenesisConfig:
    """Describes the initial allocation and chain parameters."""

    allocations: Dict[Address, int] = field(default_factory=dict)
    contracts: Dict[Address, ContractAllocation] = field(default_factory=dict)
    gas_limit: int = 8_000_000
    difficulty: int = 1
    timestamp: float = 0.0
    extra_data: bytes = b"repro genesis"

    @classmethod
    def for_labels(
        cls, labels: List[str], balance: int = DEFAULT_INITIAL_BALANCE, **kwargs
    ) -> "GenesisConfig":
        """Convenience: fund one account per human-readable label."""
        allocations = {address_from_label(label): balance for label in labels}
        return cls(allocations=allocations, **kwargs)

    def fund(self, address: Address, balance: int = DEFAULT_INITIAL_BALANCE) -> "GenesisConfig":
        """Add or update an allocation, returning self for chaining."""
        self.allocations[address] = balance
        return self

    def deploy_contract(
        self,
        address: Address,
        code_name: str,
        storage: Optional[Dict[bytes, bytes]] = None,
        balance: int = 0,
    ) -> "GenesisConfig":
        """Pre-deploy a contract in the genesis state, returning self for chaining."""
        self.contracts[address] = ContractAllocation(
            code_name=code_name, storage=dict(storage or {}), balance=balance
        )
        return self


def build_genesis(config: GenesisConfig) -> Tuple[Block, WorldState]:
    """Construct the genesis block and the corresponding world state."""
    state = WorldState()
    for address, balance in sorted(config.allocations.items()):
        account = state.get_or_create_account(address)
        account.balance = balance
    for address, allocation in sorted(config.contracts.items()):
        account = state.get_or_create_account(address)
        account.code = allocation.code_name
        account.balance = allocation.balance
        for slot, value in allocation.storage.items():
            account.set_storage(slot, value)
    header = BlockHeader(
        parent_hash=b"\x00" * 32,
        number=0,
        timestamp=config.timestamp,
        miner=ZERO_ADDRESS,
        state_root=state.state_root(),
        transactions_root=transactions_root([]),
        receipts_root=receipts_root([]),
        difficulty=config.difficulty,
        gas_limit=config.gas_limit,
        gas_used=0,
        extra_data=config.extra_data,
    )
    return Block(header=header, transactions=[], receipts=[]), state


def genesis_digest(config: GenesisConfig) -> bytes:
    """Content digest of a genesis configuration (the template cache key).

    Keyed by *content*, not object identity, so a caller that mutates a
    config after building from it simply lands on a different cache entry.
    """
    payload = repr(
        (
            sorted(config.allocations.items()),
            sorted(
                (
                    address,
                    allocation.code_name,
                    sorted(allocation.storage.items()),
                    allocation.balance,
                )
                for address, allocation in config.contracts.items()
            ),
            config.gas_limit,
            config.difficulty,
            config.timestamp,
            config.extra_data,
        )
    ).encode("utf-8")
    return hashlib.sha256(payload).digest()


_GENESIS_CACHE: "OrderedDict[bytes, Tuple[Block, WorldState]]" = OrderedDict()
_GENESIS_CACHE_MAX = 32


def build_genesis_cached(config: GenesisConfig) -> Tuple[Block, WorldState]:
    """Per-process memo over :func:`build_genesis`, keyed by content digest.

    Sweep workers build the same genesis for every peer of every trial of a
    grid cell; this returns one shared frozen template instead.  Callers
    MUST treat the returned state as immutable and work on ``fork()``s of
    it (which is what :class:`~repro.chain.chain.Blockchain` does).
    """
    digest = genesis_digest(config)
    entry = _GENESIS_CACHE.get(digest)
    if entry is None:
        entry = build_genesis(config)
        _GENESIS_CACHE[digest] = entry
        while len(_GENESIS_CACHE) > _GENESIS_CACHE_MAX:
            _GENESIS_CACHE.popitem(last=False)
    else:
        _GENESIS_CACHE.move_to_end(digest)
    return entry


def clear_genesis_cache() -> None:
    """Drop the genesis template memo (lifecycle hook, mirrors
    :func:`repro.crypto.keccak.clear_hash_cache`)."""
    _GENESIS_CACHE.clear()
