"""Request-log persistence: the ``--persist``/``--resume`` durability story.

The journal is deliberately *not* a state snapshot.  Sessions are pure
functions of their request history (specs carry content-derived seeds,
session ids are ``<digest>-<ordinal>``, and every engine is deterministic),
so the cheapest durable representation of a server's state is the ordered
log of the state-changing requests it accepted.  :class:`RequestJournal`
appends one JSON line per successful mutating request (fsynced, so a killed
process loses at most the request whose response never went out), and
``--resume`` replays the log through the ordinary dispatcher before the
HTTP listener opens — rebuilding byte-identical sessions: same specs, same
seeds, same ids, same summaries.

Read-only methods (status, summaries, balances, view calls) are never
journaled: they do not change what a replay must rebuild, and keeping them
out bounds the log by the write traffic, not the read traffic.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from .errors import ServiceError

__all__ = ["JOURNALED_METHODS", "RequestJournal"]

JOURNALED_METHODS = frozenset(
    {
        "session.create",
        "session.advance",
        "session.run",
        "session.close",
        "contract.deploy",
        "tx.submit",
    }
)
"""The state-changing RPC methods.  Everything else is a read against state
these six determine, so replaying exactly this set rebuilds the server."""

_HEADER = {"journal": "repro-service-requests", "version": 1}


class RequestJournal:
    """An append-only JSONL log of successful state-changing requests.

    Concurrency: the dispatcher records from worker threads, so appends are
    serialized under a lock and each one is flushed + fsynced before the
    caller's response can be written — the log never claims less than what
    clients were told succeeded.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.path = self.directory / "requests.jsonl"
        self._lock = threading.Lock()
        self._file: Optional[Any] = None
        self.recorded = 0
        self.replayed = 0
        self.replay_errors = 0

    # -- replay (before serving) ---------------------------------------------------

    def entries(self) -> List[Dict[str, Any]]:
        """The recorded requests, in arrival order (header line skipped).

        A line that does not decode — a partially written tail after a kill,
        or hand-mangled bytes — drops only itself (counted as a replay
        error): every intact request before and after it still replays.
        """
        rows: List[Dict[str, Any]] = []
        if not self.path.exists():
            return rows
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    self.replay_errors += 1
                    continue
                if isinstance(row, dict) and "method" in row:
                    rows.append(row)
        return rows

    def replay(self, dispatch: Callable[[str, Dict[str, Any]], Dict[str, Any]]) -> int:
        """Re-dispatch every recorded request through ``dispatch``.

        Typed service errors are counted, not fatal: a log may legitimately
        end with requests the old process rejected too (e.g. a submit against
        a session whose close was also recorded earlier in the log).
        """
        for entry in self.entries():
            self.replayed += 1
            try:
                dispatch(str(entry["method"]), dict(entry.get("params") or {}))
            except ServiceError:
                self.replay_errors += 1
        return self.replayed

    # -- recording (while serving) ---------------------------------------------------

    def open(self) -> None:
        """Open for appending (creating the directory and header if new)."""
        with self._lock:
            if self._file is not None:
                return
            self.directory.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._file = self.path.open("a", encoding="utf-8")
            if fresh:
                self._file.write(json.dumps(_HEADER, sort_keys=True) + "\n")
                self._file.flush()
                os.fsync(self._file.fileno())

    def record(self, method: str, params: Optional[Dict[str, Any]]) -> None:
        """Durably append one successful request (no-op for read methods)."""
        if method not in JOURNALED_METHODS:
            return
        line = json.dumps(
            {"method": method, "params": dict(params or {})},
            sort_keys=True,
            separators=(",", ":"),
        )
        with self._lock:
            if self._file is None:
                return
            self._file.write(line + "\n")
            self._file.flush()
            os.fsync(self._file.fileno())
            self.recorded += 1

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def counters(self) -> Dict[str, int]:
        """The journal's contribution to ``service.status``."""
        return {
            "recorded": self.recorded,
            "replayed": self.replayed,
            "replay_errors": self.replay_errors,
        }
