"""The stdlib HTTP client for the service, in the shape e2e suites expect.

The module-level helpers mirror the idiom of blockchain-simulator e2e
harnesses — build a ``payload``, ``post_request`` it, check
``has_success_status`` — so a test reads like a transcript of what a real
client does.  :class:`ServiceClient` wraps them with one method per RPC.

Transport failures (refused, reset, timeout, a connection dropped mid-body)
raise :class:`~repro.service.errors.ServiceConnectionError`; JSON-RPC error
envelopes raise :class:`~repro.service.errors.ServiceRPCError` carrying the
server's typed ``kind`` — a killed server is always a typed exception here,
never a hang (every request carries a timeout).

Resilience: :class:`ServiceClient` retries *idempotent* methods (reads,
``healthz``, the summary-cached ``session.run``) on transport errors and on
typed ``server_overloaded`` rejections, with capped exponential backoff and
deterministic seeded jitter (same ``retry_seed`` → same schedule, so tests
and replayed load runs see identical timing decisions).  State-changing
verbs — ``tx.submit``, ``session.advance``, ``contract.deploy``, create /
close / shutdown — are never retried: a lost response does not prove the
request was lost, and a blind resend could double-apply it.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
import urllib.error
import urllib.request
from itertools import count
from typing import Any, Callable, Dict, List, Optional

from .errors import ServiceConnectionError, ServiceRPCError

__all__ = [
    "payload",
    "post_request",
    "post_request_localhost",
    "has_success_status",
    "IDEMPOTENT_METHODS",
    "ServiceClient",
]

DEFAULT_PORT = 8547
_request_ids = count(1)

IDEMPOTENT_METHODS = frozenset(
    {
        "service.ping",
        "service.status",
        "registry.list",
        "obs.probes",
        "session.list",
        "session.describe",
        "session.status",
        "session.summary",
        "session.metrics",
        # run is idempotent by construction: the server caches the summary
        # and a repeated run returns it rather than re-driving the engine.
        "session.run",
        "tx.receipt",
        "state.balance",
        "state.storage",
        "hms.status",
        "contract.call",
    }
)
"""The verbs a client may safely resend: pure reads plus ``session.run``.
Everything else mutates on arrival and is delivered at most once."""


def payload(method: str, params: Optional[Dict[str, Any]] = None, request_id: Optional[int] = None) -> Dict[str, Any]:
    """A JSON-RPC 2.0 request object for ``method``."""
    return {
        "jsonrpc": "2.0",
        "method": method,
        "params": params or {},
        "id": next(_request_ids) if request_id is None else request_id,
    }


def post_request(url: str, body: Dict[str, Any], timeout: float = 60.0) -> Dict[str, Any]:
    """POST one JSON-RPC envelope and return the parsed response envelope."""
    data = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}, method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        raise ServiceConnectionError(f"HTTP {error.code} from {url}: {error.reason}") from error
    except (urllib.error.URLError, ConnectionError, socket.timeout, OSError) as error:
        raise ServiceConnectionError(f"cannot reach {url}: {error}") from error
    # IncompleteRead (a server killed mid-body) subclasses HTTPException, not
    # OSError — without this clause it would escape as a raw http.client error.
    except http.client.HTTPException as error:
        raise ServiceConnectionError(
            f"connection to {url} lost mid-response: {error!r}"
        ) from error
    except json.JSONDecodeError as error:
        raise ServiceConnectionError(f"non-JSON response from {url}: {error}") from error


def post_request_localhost(
    body: Dict[str, Any], port: int = DEFAULT_PORT, timeout: float = 60.0
) -> Dict[str, Any]:
    """POST to a server on localhost (the e2e harness's default shape)."""
    return post_request(f"http://127.0.0.1:{port}/rpc", body, timeout=timeout)


def has_success_status(receipt: Dict[str, Any]) -> bool:
    """True when a ``tx.receipt`` result is committed AND executed cleanly."""
    return bool(receipt.get("committed")) and bool(receipt.get("success"))


class ServiceClient:
    """One server, one method per RPC; raises typed errors, returns results.

    ``retries`` bounds the *extra* attempts for idempotent verbs (so the
    worst case is ``retries + 1`` sends); backoff doubles from ``backoff``
    up to ``backoff_cap`` with deterministic jitter drawn from
    ``random.Random(retry_seed)``.  Non-idempotent verbs always get exactly
    one attempt regardless.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 60.0,
        retries: int = 2,
        backoff: float = 0.05,
        backoff_cap: float = 1.0,
        retry_seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff <= 0.0 or backoff_cap < backoff:
            raise ValueError(
                f"need 0 < backoff <= backoff_cap, got {backoff} / {backoff_cap}"
            )
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self._jitter = random.Random(retry_seed)
        self._sleep = sleep
        self.retries_performed = 0

    # -- retry plumbing ------------------------------------------------------------

    def _backoff_delay(self, attempt: int) -> float:
        """The pause before retry ``attempt`` (1-based): capped exponential
        with deterministic jitter in [0.5x, 1.5x)."""
        base = min(self.backoff_cap, self.backoff * (2 ** (attempt - 1)))
        return base * self._jitter.uniform(0.5, 1.5)

    def _with_retries(self, send: Callable[[], Dict[str, Any]], idempotent: bool) -> Dict[str, Any]:
        attempts = self.retries + 1 if idempotent else 1
        attempt = 0
        while True:
            try:
                return send()
            except ServiceConnectionError:
                attempt += 1
                if attempt >= attempts:
                    raise
                delay = self._backoff_delay(attempt)
            except ServiceRPCError as error:
                if error.kind != "server_overloaded":
                    raise
                attempt += 1
                if attempt >= attempts:
                    raise
                # Honor the server's backlog-sized hint when it is larger
                # than our own schedule would have waited.
                retry_after = float(error.data.get("retry_after", 0.0) or 0.0)
                delay = max(self._backoff_delay(attempt), retry_after)
            self.retries_performed += 1
            self._sleep(delay)

    def request(self, method: str, params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        return self._with_retries(
            lambda: self._request_once(method, params),
            idempotent=method in IDEMPOTENT_METHODS,
        )

    def _request_once(self, method: str, params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        envelope = post_request(f"{self.url}/rpc", payload(method, params), timeout=self.timeout)
        error = envelope.get("error")
        if error is not None:
            raise ServiceRPCError(
                int(error.get("code", 0)),
                str(error.get("message", "service error")),
                error.get("data"),
            )
        return envelope.get("result", {})

    # -- control plane -------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """The liveness endpoint (``GET /healthz``); retried like any read."""

        def send() -> Dict[str, Any]:
            request = urllib.request.Request(f"{self.url}/healthz", method="GET")
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    return dict(json.loads(response.read().decode("utf-8")))
            except urllib.error.HTTPError as error:
                raise ServiceConnectionError(
                    f"HTTP {error.code} from {self.url}/healthz: {error.reason}"
                ) from error
            except (urllib.error.URLError, ConnectionError, socket.timeout, OSError) as error:
                raise ServiceConnectionError(f"cannot reach {self.url}: {error}") from error
            except http.client.HTTPException as error:
                raise ServiceConnectionError(
                    f"connection to {self.url} lost mid-response: {error!r}"
                ) from error
            except json.JSONDecodeError as error:
                raise ServiceConnectionError(
                    f"non-JSON response from {self.url}: {error}"
                ) from error

        return self._with_retries(send, idempotent=True)

    def ping(self) -> Dict[str, Any]:
        return self.request("service.ping")

    def status(self) -> Dict[str, Any]:
        return self.request("service.status")

    def registries(self) -> Dict[str, Any]:
        return self.request("registry.list")

    def probes(self) -> Dict[str, Any]:
        return self.request("obs.probes")

    def shutdown_server(self) -> Dict[str, Any]:
        return self.request("service.shutdown")

    # -- sessions ------------------------------------------------------------------

    def create_session(self, **spec: Any) -> str:
        """Create a session and return its id (``create_session_info`` for
        the full spec/seed/digest record)."""
        return str(self.create_session_info(**spec)["session"])

    def create_session_info(self, **spec: Any) -> Dict[str, Any]:
        return self.request("session.create", spec)

    def list_sessions(self) -> List[Dict[str, Any]]:
        return list(self.request("session.list")["sessions"])

    def describe_session(self, session: str) -> Dict[str, Any]:
        return self.request("session.describe", {"session": session})

    def session_status(self, session: str) -> Dict[str, Any]:
        return self.request("session.status", {"session": session})

    def advance(self, session: str, **how: Any) -> Dict[str, Any]:
        """Advance simulated time: ``seconds=``, ``to=``, or ``blocks=``."""
        return self.request("session.advance", {"session": session, **how})

    def run(self, session: str) -> Dict[str, Any]:
        """Run the session's measured loop to completion; returns the summary."""
        return self.request("session.run", {"session": session})

    def summary(self, session: str) -> Dict[str, Any]:
        return self.request("session.summary", {"session": session})

    def metrics(self, session: str) -> Dict[str, Any]:
        return self.request("session.metrics", {"session": session})

    def close_session(self, session: str) -> Dict[str, Any]:
        return self.request("session.close", {"session": session})

    # -- transactions ---------------------------------------------------------------

    def deploy_contract(
        self,
        session: str,
        account: str,
        code: str,
        constructor: str = "0x",
        value: int = 0,
    ) -> Dict[str, Any]:
        return self.request(
            "contract.deploy",
            {
                "session": session,
                "account": account,
                "code": code,
                "constructor": constructor,
                "value": value,
            },
        )

    def submit_transaction(
        self,
        session: str,
        account: str,
        to: str,
        data: str = "0x",
        value: int = 0,
        gas_limit: Optional[int] = None,
    ) -> Dict[str, Any]:
        params: Dict[str, Any] = {
            "session": session,
            "account": account,
            "to": to,
            "data": data,
            "value": value,
        }
        if gas_limit is not None:
            params["gas_limit"] = gas_limit
        return self.request("tx.submit", params)

    def receipt(self, session: str, transaction_hash: str) -> Dict[str, Any]:
        return self.request(
            "tx.receipt", {"session": session, "transaction_hash": transaction_hash}
        )

    # -- queries -------------------------------------------------------------------

    def call_contract_method(
        self,
        session: str,
        contract: str,
        function: str,
        arguments: Optional[List[Any]] = None,
        account: Optional[str] = None,
        peer: Optional[str] = None,
        allow_raa: bool = True,
    ) -> Dict[str, Any]:
        params: Dict[str, Any] = {
            "session": session,
            "contract": contract,
            "function": function,
            "arguments": arguments or [],
            "allow_raa": allow_raa,
        }
        if account is not None:
            params["account"] = account
        if peer is not None:
            params["peer"] = peer
        return self.request("contract.call", params)

    def balance(self, session: str, account: str) -> int:
        return int(self.request("state.balance", {"session": session, "account": account})["balance"])

    def storage(self, session: str, contract: str, slot: int) -> str:
        return str(
            self.request(
                "state.storage", {"session": session, "contract": contract, "slot": slot}
            )["value"]
        )

    def hms_status(self, session: str, peer: Optional[str] = None) -> Dict[str, Any]:
        params: Dict[str, Any] = {"session": session}
        if peer is not None:
            params["peer"] = peer
        return self.request("hms.status", params)
