"""One served simulation: a locked, evictable wrapper around SimulationHandle.

A :class:`ServiceSession` is the unit the RPC facade multiplexes: it owns a
fully wired :class:`~repro.api.engine.SimulationHandle`, a re-entrant lock
(the dispatcher enters the engine only while holding it, so one session's
event loop is never driven concurrently), a lazily built
:class:`~repro.clients.base.ContractClient` per account label, and the
idle-eviction bookkeeping.

Determinism is the point of the seeding scheme: a ``session.create`` request
that names no seed gets one *derived from the spec's content digest*
(:func:`derive_session_seed`), and session ids are ``<digest>-<ordinal>``.
Replaying the same request log against a fresh server therefore rebuilds
byte-identical sessions — same specs, same seeds, same ids — which is what
makes a recorded load-generator run reproducible.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..api.builder import BuildError, Simulation
from ..api.checkpoint import spec_digest
from ..api.engine import SimulationHandle, build_simulation
from ..api.experiment import EXPERIMENT_REGISTRY, ExperimentOptions
from ..api.seeding import derive_seed
from ..api.spec import SimulationSpec
from ..clients.base import ContractClient
from ..crypto.addresses import ADDRESS_LENGTH, address_from_label, contract_address
from ..encoding.hexutil import bytes32_from_int, from_hex, to_hex
from .errors import (
    ExecutionError,
    InvalidParamsError,
    ServerShutdownError,
    SessionClosedError,
)

__all__ = [
    "ServiceSession",
    "build_session_spec",
    "derive_session_seed",
    "session_id_for",
]

VIEW_CALLER_LABEL = "service-viewer"
"""Caller label for view calls that name no account (view calls need an
address for ``msg.sender`` but no balance)."""

_SPEC_FIELD_BUILDERS = (
    "scenario",
    "workload",
    "params",
    "miners",
    "clients",
    "block_interval",
    "fixed_block_interval",
    "settle_blocks",
    "max_duration",
    "metrics_window",
    "retention",
    "adversaries",
    "topology",
    "accounts",
    "seed",
)


def resolve_address(token: Any) -> bytes:
    """An account label or ``0x…`` hex string as a 20-byte address."""
    if isinstance(token, str):
        if token.startswith("0x"):
            raw = from_hex(token)
            if len(raw) != ADDRESS_LENGTH:
                raise InvalidParamsError(
                    f"address must be {ADDRESS_LENGTH} bytes, got {len(raw)}"
                )
            return raw
        return address_from_label(token)
    raise InvalidParamsError(f"expected an account label or 0x-hex address, got {token!r}")


def decode_argument(value: Any) -> Any:
    """One JSON call argument as the engine's native form (hex → bytes)."""
    if isinstance(value, str) and value.startswith("0x"):
        return from_hex(value)
    if isinstance(value, list):
        return [decode_argument(item) for item in value]
    if isinstance(value, (int, bool, str)) or value is None:
        return value
    raise InvalidParamsError(f"unsupported call argument {value!r}")


def jsonable(value: Any) -> Any:
    """Render an engine value JSON-ready (bytes become ``0x…`` hex)."""
    if isinstance(value, bytes):
        return to_hex(value)
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


# -- spec construction -------------------------------------------------------------


def _spec_from_experiment(request: Dict[str, Any]) -> SimulationSpec:
    name = request.pop("experiment")
    smoke = bool(request.pop("smoke", True))
    if name not in EXPERIMENT_REGISTRY:
        raise InvalidParamsError(
            f"unknown experiment {name!r}; registered: {EXPERIMENT_REGISTRY.names()}"
        )
    experiment = EXPERIMENT_REGISTRY.get(name)
    base_spec = getattr(experiment, "base_spec", None)
    if base_spec is None:
        raise InvalidParamsError(
            f"experiment {name!r} does not expose a base spec; "
            "create the session from explicit spec fields instead"
        )
    return base_spec(ExperimentOptions(smoke=smoke))


def _spec_from_fields(request: Dict[str, Any]) -> SimulationSpec:
    builder = Simulation.builder()
    builder.scenario(str(request.pop("scenario", "semantic_mining")))
    workload = str(request.pop("workload", "market"))
    params = request.pop("params", {}) or {}
    if not isinstance(params, dict):
        raise InvalidParamsError("params must be an object of workload parameters")
    builder.workload(workload, **params)
    if "miners" in request:
        builder.miners(int(request.pop("miners")))
    if "clients" in request:
        builder.clients(int(request.pop("clients")))
    if "block_interval" in request:
        builder.block_interval(
            float(request.pop("block_interval")),
            fixed=bool(request.pop("fixed_block_interval", False)),
        )
    request.pop("fixed_block_interval", None)
    if "settle_blocks" in request:
        builder.settle_blocks(int(request.pop("settle_blocks")))
    if "max_duration" in request:
        builder.max_duration(float(request.pop("max_duration")))
    if "metrics_window" in request:
        builder.metrics_window(float(request.pop("metrics_window")))
    for entry in request.pop("adversaries", ()) or ():
        if isinstance(entry, str):
            builder.adversary(entry)
        elif isinstance(entry, dict) and "name" in entry:
            builder.adversary(str(entry["name"]), **(entry.get("params") or {}))
        else:
            raise InvalidParamsError(
                f"adversaries entries must be names or {{name, params}} objects, got {entry!r}"
            )
    topology = request.pop("topology", None)
    if topology is not None:
        if isinstance(topology, str):
            builder.topology(topology)
        elif isinstance(topology, dict) and "name" in topology:
            builder.topology(str(topology["name"]), **(topology.get("params") or {}))
        else:
            raise InvalidParamsError(
                f"topology must be a name or a {{name, params}} object, got {topology!r}"
            )
    return builder.build()


def build_session_spec(
    params: Optional[Dict[str, Any]],
    retention_default: Optional[int] = None,
) -> SimulationSpec:
    """Build the effective :class:`SimulationSpec` for a ``session.create``.

    The request either names a registered ``experiment`` (its smoke-grid
    base spec, via :class:`ExperimentOptions`) or gives builder-style fields
    (``scenario``/``workload``/``params``/``miners``/…).  Three session-level
    rules apply on top:

    * ``accounts`` labels are funded at genesis (``spec.extra_accounts``);
    * ``retention`` defaults to ``retention_default`` when the request does
      not mention it (pass ``"retention": null`` to force unbounded history);
    * a missing ``seed`` is *derived from the spec digest* so identical
      requests build identical sessions (see :func:`derive_session_seed`).

    ``observe``/``trace_dir`` are rejected: the tracer slot is process-global
    and belongs to the server, not to one of its concurrent sessions.
    """
    request = dict(params or {})
    for forbidden in ("observe", "trace_dir"):
        if forbidden in request:
            raise InvalidParamsError(
                f"{forbidden!r} is not a session field: the server owns the process-wide "
                "tracer; use the server's --trace-out for request-lifecycle traces"
            )
    accounts = request.pop("accounts", ()) or ()
    if not isinstance(accounts, (list, tuple)) or not all(
        isinstance(label, str) and label for label in accounts
    ):
        raise InvalidParamsError("accounts must be a list of non-empty labels")
    explicit_seed = request.pop("seed", None)
    retention_given = "retention" in request
    retention = request.pop("retention", None)

    try:
        if "experiment" in request:
            spec = _spec_from_experiment(request)
        else:
            spec = _spec_from_fields(request)
    except (BuildError, KeyError, TypeError, ValueError) as error:
        message = error.args[0] if error.args else error
        raise InvalidParamsError(f"bad session spec: {message}") from error
    if request:
        raise InvalidParamsError(
            f"unknown session fields {sorted(request)}; known: {sorted(_SPEC_FIELD_BUILDERS)}"
        )

    overrides: Dict[str, Any] = {}
    if accounts:
        overrides["extra_accounts"] = tuple(accounts)
    if retention_given:
        overrides["retention"] = None if retention is None else int(retention)
    elif retention_default is not None and spec.retention is None:
        overrides["retention"] = int(retention_default)
    if overrides:
        try:
            spec = replace(spec, **overrides)
        except ValueError as error:
            raise InvalidParamsError(str(error)) from error
    if explicit_seed is not None:
        return spec.with_seed(int(explicit_seed))
    return spec.with_seed(derive_session_seed(spec))


def derive_session_seed(spec: SimulationSpec) -> int:
    """The deterministic seed for a spec that named none: the SeedPlan
    derivation of the spec's content digest (computed at seed 0, so the
    derivation is itself seed-independent)."""
    return derive_seed(0, "service-session", spec_digest(spec.with_seed(0)))


def session_id_for(spec: SimulationSpec, ordinal: int) -> str:
    """Deterministic session id: content digest plus a per-digest ordinal,
    so a replayed request log reallocates the very same ids."""
    return f"{spec_digest(spec)}-{ordinal}"


# -- the session -------------------------------------------------------------------


class ServiceSession:
    """One multiplexed simulation with its lock, clients, and lifecycle."""

    def __init__(
        self,
        session_id: str,
        spec: SimulationSpec,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.session_id = session_id
        self.spec = spec
        self.lock = threading.RLock()
        self.closed = threading.Event()
        self.state = "open"  # open -> finished -> closed
        self.handle: SimulationHandle = build_simulation(spec)
        self._clock = clock
        self.created_at = clock()
        self.last_used = clock()
        self.requests_served = 0
        self._started = False
        self._summary: Optional[Dict[str, Any]] = None
        self._clients: Dict[Tuple[str, str], ContractClient] = {}

    # -- bookkeeping ---------------------------------------------------------------

    def touch(self) -> None:
        self.last_used = self._clock()
        self.requests_served += 1

    @property
    def idle_seconds(self) -> float:
        return self._clock() - self.last_used

    def _require_open(self) -> None:
        if self.state == "closed":
            raise SessionClosedError(f"session {self.session_id} is closed")
        if self.closed.is_set():
            raise ServerShutdownError(
                f"session {self.session_id} is shutting down with the server"
            )

    def _peer(self, peer_id: Optional[str]):
        if peer_id is None:
            return self.handle.client_peers[0]
        peer = self.handle.peers.get(peer_id)
        if peer is None:
            raise InvalidParamsError(
                f"unknown peer {peer_id!r}; known: {sorted(self.handle.peers)}"
            )
        return peer

    def _client(self, account: str, peer_id: Optional[str] = None) -> ContractClient:
        if not isinstance(account, str) or not account:
            raise InvalidParamsError("account must be a non-empty label")
        key = (account, peer_id or "")
        client = self._clients.get(key)
        if client is None:
            client = ContractClient(account, self._peer(peer_id), self.handle.simulator)
            self._clients[key] = client
        return client

    def _ensure_started(self) -> None:
        if not self._started:
            self.handle.start()
            self._started = True

    # -- driving -------------------------------------------------------------------

    def advance(
        self,
        seconds: Optional[float] = None,
        to: Optional[float] = None,
        blocks: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Advance simulated time (default: one block interval), stepping in
        block-interval chunks so a server shutdown interrupts between steps
        (the fail-closed path) and bounded-memory metrics resolve in-window."""
        self._require_open()
        self._ensure_started()
        simulator = self.handle.simulator
        spec = self.spec
        if to is not None:
            target = float(to)
        elif seconds is not None:
            target = simulator.now + float(seconds)
        else:
            target = simulator.now + (blocks if blocks is not None else 1) * spec.block_interval
        while simulator.now < target:
            if self.closed.is_set():
                raise ServerShutdownError(
                    f"session {self.session_id} interrupted by server shutdown "
                    f"at t={simulator.now:.3f}"
                )
            simulator.run_until(min(simulator.now + spec.block_interval, target))
            self.handle.metrics.resolve_from_chain(self.handle.reference_chain)
        return self.status()

    def run(self) -> Dict[str, Any]:
        """Run the workload's measured loop to completion; idempotent (the
        summary is cached, and re-running a finished engine would re-drive a
        consumed event queue)."""
        self._require_open()
        if self._summary is not None:
            return self._summary
        try:
            result = self.handle.run()
        except Exception as error:  # engine bugs become typed envelopes
            raise ExecutionError(f"simulation run failed: {error}") from error
        self._summary = result.summary()
        self.state = "finished"
        return self._summary

    def summary(self) -> Dict[str, Any]:
        if self._summary is None:
            raise InvalidParamsError(
                f"session {self.session_id} has not run to completion; "
                "call session.run first (or query session.status / session.metrics)"
            )
        return self._summary

    # -- transactions ---------------------------------------------------------------

    def deploy(
        self,
        account: str,
        code: str,
        constructor: str = "0x",
        value: int = 0,
    ) -> Dict[str, Any]:
        """Deploy a registered contract from ``account``; the address is
        derived from (sender, nonce) before the deploy commits, exactly as a
        real client predicts it."""
        self._require_open()
        self._ensure_started()
        client = self._client(account)
        transaction = client.deploy(code, from_hex(constructor), value=int(value))
        address = contract_address(client.address, transaction.nonce)
        return {
            "transaction_hash": to_hex(transaction.hash),
            "contract_address": to_hex(address),
            "nonce": transaction.nonce,
            "submitted_at": transaction.submitted_at,
        }

    def submit(
        self,
        account: str,
        to: Any,
        data: str = "0x",
        value: int = 0,
        gas_limit: Optional[int] = None,
    ) -> Dict[str, Any]:
        self._require_open()
        self._ensure_started()
        client = self._client(account)
        transaction = client.send_transaction(
            to=resolve_address(to),
            data=from_hex(data),
            value=int(value),
            gas_limit=int(gas_limit) if gas_limit is not None else None,
        )
        return {
            "transaction_hash": to_hex(transaction.hash),
            "nonce": transaction.nonce,
            "submitted_at": transaction.submitted_at,
        }

    def receipt(self, transaction_hash: str) -> Dict[str, Any]:
        self._require_open()
        receipt = self.handle.reference_chain.receipt_for(from_hex(transaction_hash))
        if receipt is None:
            return {"committed": False}
        return {
            "committed": True,
            "success": receipt.success,
            "gas_used": receipt.gas_used,
            "error": receipt.error,
            "block_number": receipt.block_number,
            "transaction_index": receipt.transaction_index,
            "block_timestamp": receipt.block_timestamp,
            "logs": len(receipt.logs),
            "return_data": to_hex(receipt.return_data),
        }

    # -- queries -------------------------------------------------------------------

    def call(
        self,
        contract: Any,
        function: str,
        arguments: Optional[List[Any]] = None,
        account: Optional[str] = None,
        peer: Optional[str] = None,
        allow_raa: bool = True,
    ) -> Dict[str, Any]:
        """A view call against one peer's local state — on a Sereth peer with
        ``allow_raa`` this is the paper's READ-UNCOMMITTED read path."""
        self._require_open()
        self._ensure_started()
        target_peer = self._peer(peer)
        caller = address_from_label(account) if account else address_from_label(VIEW_CALLER_LABEL)
        contract_addr = resolve_address(contract)
        decoded = [decode_argument(item) for item in (arguments or [])]
        try:
            result = target_peer.call_contract(
                contract_addr,
                str(function),
                decoded,
                caller=caller,
                now=self.handle.simulator.now,
                allow_raa=bool(allow_raa),
            )
        except (KeyError, TypeError, ValueError) as error:
            message = error.args[0] if error.args else error
            raise InvalidParamsError(f"call failed: {message}") from error
        return {
            "values": jsonable(list(result.values)),
            "gas_used": result.gas_used,
            "return_data": to_hex(result.return_data),
        }

    def balance(self, account: Any) -> Dict[str, Any]:
        self._require_open()
        address = resolve_address(account)
        return {
            "address": to_hex(address),
            "balance": self.handle.reference_chain.state.get_balance(address),
        }

    def storage(self, contract: Any, slot: int) -> Dict[str, Any]:
        self._require_open()
        address = resolve_address(contract)
        word = self.handle.reference_chain.state.get_storage(
            address, bytes32_from_int(int(slot))
        )
        return {"address": to_hex(address), "slot": int(slot), "value": to_hex(word)}

    def hms_status(self, peer: Optional[str] = None) -> Dict[str, Any]:
        """Every watched contract's Hash-Mark-Set view on one peer (default:
        the first client peer): predicted mark/value, series depth, source."""
        self._require_open()
        target_peer = self._peer(peer)
        entries = []
        for contract_addr, _selector in self.handle.workload.hms_targets():
            provider = target_peer.hms_provider(contract_addr)
            if provider is None:
                entries.append({"contract": to_hex(contract_addr), "installed": False})
                continue
            view = provider.view()
            entries.append(
                {
                    "contract": to_hex(contract_addr),
                    "installed": True,
                    "source": view.source,
                    "mark": to_hex(view.mark),
                    "value": to_hex(view.value),
                    "depth": view.depth,
                    "pool_size": view.pool_size,
                    "requests_served": provider.requests_served,
                }
            )
        return {"peer": target_peer.peer_id, "watched": entries}

    def status(self) -> Dict[str, Any]:
        metrics = self.handle.metrics
        chain = self.handle.reference_chain
        return {
            "session": self.session_id,
            "state": self.state,
            "now": self.handle.simulator.now,
            "height": chain.height,
            "blocks_produced": self.handle.production.blocks_produced,
            "watched": metrics.watched_count(),
            "pending": metrics.pending_count(),
            "committed": metrics.committed_count(),
            "seed": self.spec.seed,
            "spec_digest": spec_digest(self.spec),
            "requests_served": self.requests_served,
        }

    def describe(self) -> Dict[str, Any]:
        return {
            "session": self.session_id,
            "state": self.state,
            "seed": self.spec.seed,
            "spec_digest": spec_digest(self.spec),
            "spec": self.spec.describe(),
        }

    def metrics_report(self) -> Dict[str, Any]:
        self._require_open()
        metrics = self.handle.metrics
        metrics.resolve_from_chain(self.handle.reference_chain)
        return {
            "labels": {
                label: jsonable(metrics.report(label).as_dict())
                for label in metrics.labels()
            }
        }

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        """Idempotent teardown: metrics spill closed, the process-wide wire
        memo dropped (``handle.run`` already did both for finished sessions,
        and both are safe to repeat)."""
        if self.state == "closed":
            return
        self.state = "closed"
        self.closed.set()
        self.handle.close()
