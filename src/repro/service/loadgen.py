"""Closed- and open-loop load generation against a running service.

The generator answers the operational question the facade raises: what tail
latency does a *served* simulation deliver under concurrent clients?  Each
client owns one session (the paper's market workload at smoke scale) and
issues a deterministic, seeded mix of the real RPC verbs — READ-UNCOMMITTED
``mark``/``get`` observations, client-side-encoded Sereth ``buy``
submissions, block advances, receipt polls.

Two loop disciplines, because they measure different things:

* **closed** — each client issues its next request the moment the previous
  one returns; latency is pure service time and throughput is the
  saturation rate for that client count.
* **open** — arrivals are scheduled by an arrival process (regular /
  Poisson / bursty) regardless of completions, and latency is measured from
  the *scheduled* arrival, so queueing delay is included (no
  coordinated-omission blind spot: a late client does not sleep off its
  backlog).

Results land in the ``{"baseline", "current", "deltas"}`` bench shape the
repo's other BENCH files use; ``--smoke`` gates on a zero error rate, a p95
ceiling, and byte-identical summaries from two same-spec sessions.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..contracts.sereth import SerethContract
from ..core.hms.fpv import BUY_FLAG
from ..core.percentiles import percentile
from ..encoding.hexutil import from_hex, to_bytes32
from ..workloads.arrivals import BurstyArrivals, PoissonArrivals, RegularArrivals
from .client import ServiceClient
from .errors import ServiceClientError, ServiceRPCError

__all__ = ["LoadgenConfig", "run_loadgen", "write_bench", "format_report"]

_BUY_ABI = SerethContract.function_by_name("buy").abi
_PLACEHOLDER = ["0x" + "00" * 32] * 3
"""The RAA argument placeholder: three zero words the peer's Hash-Mark-Set
view substitutes on ``mark``/``get`` (the READ-UNCOMMITTED read path)."""

_MIXES: Dict[str, Dict[str, Any]] = {
    # The paper's READ-UNCOMMITTED market at smoke scale: Sereth clients,
    # semantic mining, a handful of buys so a session advances quickly.
    "market": {
        "scenario": "semantic_mining",
        "workload": "market",
        "params": {"num_buys": 6, "buys_per_set": 2.0, "submission_interval": 1.0},
        "clients": 2,
        "max_duration": 240.0,
    },
    # The READ-COMMITTED baseline (unmodified-geth scenario), same shape.
    "market_committed": {
        "scenario": "geth_unmodified",
        "workload": "market",
        "params": {"num_buys": 6, "buys_per_set": 2.0, "submission_interval": 1.0},
        "clients": 2,
        "max_duration": 240.0,
    },
    # A heavier market: more buys per session, higher buy:set ratio.
    "market_heavy": {
        "scenario": "semantic_mining",
        "workload": "market",
        "params": {"num_buys": 12, "buys_per_set": 4.0, "submission_interval": 1.0},
        "clients": 3,
        "max_duration": 360.0,
    },
}

# Weighted operation mix: mostly reads (the paper's workload is read-heavy),
# a steady trickle of writes and block advances.
_OP_WEIGHTS: Sequence[Tuple[str, int]] = (
    ("observe", 5),
    ("buy", 2),
    ("advance", 2),
    ("status", 2),
    ("receipt", 1),
    ("hms", 1),
)


@dataclass
class LoadgenConfig:
    """One load-generation run against ``url``."""

    url: str
    clients: int = 4
    requests_per_client: int = 25
    mode: str = "closed"  # closed | open | both
    arrival: str = "regular"  # regular | poisson | bursty (open loop only)
    rate: float = 50.0
    """Open-loop target arrival rate per client, in requests per second."""
    mix: str = "market"
    seed: int = 0
    timeout: float = 60.0
    smoke: bool = False
    p95_ceiling_ms: float = 2000.0

    def __post_init__(self) -> None:
        if self.clients <= 0 or self.requests_per_client <= 0:
            raise ValueError("clients and requests_per_client must be positive")
        if self.mode not in ("closed", "open", "both"):
            raise ValueError(f"unknown mode {self.mode!r}; expected closed|open|both")
        if self.arrival not in ("regular", "poisson", "bursty"):
            raise ValueError(f"unknown arrival {self.arrival!r}")
        if self.mix not in _MIXES:
            raise ValueError(f"unknown mix {self.mix!r}; known: {sorted(_MIXES)}")
        if self.rate <= 0:
            raise ValueError("rate must be positive")

    @property
    def modes(self) -> Tuple[str, ...]:
        return ("closed", "open") if self.mode == "both" else (self.mode,)


@dataclass
class _Sample:
    op: str
    latency_ms: float
    ok: bool
    error_kind: Optional[str] = None


def _arrival_process(config: LoadgenConfig, client_index: int):
    interval = 1.0 / config.rate
    if config.arrival == "regular":
        return RegularArrivals(interval)
    if config.arrival == "poisson":
        return PoissonArrivals(interval, seed=config.seed * 1000 + client_index)
    return BurstyArrivals(
        burst_size=5, gap=interval * 10, spread=interval, seed=config.seed * 1000 + client_index
    )


class _SessionDriver:
    """One client's session plus the state its operation mix needs."""

    def __init__(self, client: ServiceClient, config: LoadgenConfig, index: int) -> None:
        self.client = client
        self.account = f"loadgen-{index}"
        self.rng = random.Random((config.seed, config.mix, index).__repr__())
        spec = dict(_MIXES[config.mix])
        spec["accounts"] = [self.account]
        self.session = client.create_session(**spec)
        # Let the workload's own contract deployment and opening price commit
        # before the mix starts reading the market.
        client.advance(self.session, blocks=3)
        watched = client.hms_status(self.session)["watched"]
        self.contract = watched[0]["contract"] if watched else None
        self.last_tx: Optional[str] = None
        ops, weights = zip(*_OP_WEIGHTS)
        self.ops = ops
        self.weights = weights

    def next_op(self) -> str:
        op = self.rng.choices(self.ops, weights=self.weights, k=1)[0]
        if op in ("observe", "buy", "hms") and self.contract is None:
            return "status"
        if op == "receipt" and self.last_tx is None:
            return "status"
        return op

    def perform(self, op: str) -> None:
        client, session = self.client, self.session
        if op == "observe":
            client.call_contract_method(session, self.contract, "mark", [_PLACEHOLDER])
        elif op == "buy":
            mark = client.call_contract_method(session, self.contract, "mark", [_PLACEHOLDER])
            price = client.call_contract_method(session, self.contract, "get", [_PLACEHOLDER])
            offer = [
                BUY_FLAG,
                to_bytes32(from_hex(mark["values"][0])),
                to_bytes32(from_hex(price["values"][0])),
            ]
            data = "0x" + _BUY_ABI.encode_call(offer).hex()
            submitted = client.submit_transaction(
                session, self.account, self.contract, data=data
            )
            self.last_tx = submitted["transaction_hash"]
        elif op == "advance":
            client.advance(session, blocks=1)
        elif op == "status":
            client.session_status(session)
        elif op == "receipt":
            client.receipt(session, self.last_tx)
        elif op == "hms":
            client.hms_status(session)
        else:  # pragma: no cover - mix table and dispatch kept in sync
            raise ValueError(f"unknown op {op!r}")

    def close(self) -> None:
        try:
            self.client.close_session(self.session)
        except ServiceClientError:
            pass


def _timed(driver: _SessionDriver, op: str, started_at: float) -> _Sample:
    try:
        driver.perform(op)
    except ServiceRPCError as error:
        return _Sample(op, (time.perf_counter() - started_at) * 1000.0, False, error.kind)
    except ServiceClientError:
        return _Sample(op, (time.perf_counter() - started_at) * 1000.0, False, "connection")
    except Exception as error:
        # A transport failure the client layer did not wrap (e.g. a server
        # killed mid-body on an old client) is still a transport error to the
        # load generator — record it instead of letting the worker thread die
        # and silently under-count its remaining requests.
        return _Sample(
            op,
            (time.perf_counter() - started_at) * 1000.0,
            False,
            f"transport:{type(error).__name__}",
        )
    return _Sample(op, (time.perf_counter() - started_at) * 1000.0, True)


def _closed_loop(driver: _SessionDriver, count: int, samples: List[_Sample]) -> None:
    for _ in range(count):
        op = driver.next_op()
        samples.append(_timed(driver, op, time.perf_counter()))


def _open_loop(
    driver: _SessionDriver,
    offsets: Sequence[float],
    origin: float,
    samples: List[_Sample],
) -> None:
    for offset in offsets:
        scheduled = origin + offset
        delay = scheduled - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        op = driver.next_op()
        # Latency is measured from the *scheduled* arrival: a request that
        # queued behind a slow predecessor pays for the wait.
        samples.append(_timed(driver, op, scheduled))


def _latency_summary(samples: Sequence[float]) -> Dict[str, Any]:
    if not samples:
        return {"count": 0}
    ordered = sorted(samples)
    return {
        "count": len(ordered),
        "mean_ms": round(sum(ordered) / len(ordered), 3),
        "p50_ms": round(percentile(ordered, 0.50, presorted=True), 3),
        "p95_ms": round(percentile(ordered, 0.95, presorted=True), 3),
        "p99_ms": round(percentile(ordered, 0.99, presorted=True), 3),
        "max_ms": round(ordered[-1], 3),
    }


def _run_mode(
    mode: str,
    config: LoadgenConfig,
    make_client: Callable[[], ServiceClient],
) -> Dict[str, Any]:
    drivers = [
        _SessionDriver(make_client(), config, index) for index in range(config.clients)
    ]
    per_client: List[List[_Sample]] = [[] for _ in drivers]
    threads: List[threading.Thread] = []
    started = time.perf_counter()
    try:
        if mode == "closed":
            for index, driver in enumerate(drivers):
                threads.append(
                    threading.Thread(
                        target=_closed_loop,
                        args=(driver, config.requests_per_client, per_client[index]),
                        name=f"loadgen-closed-{index}",
                    )
                )
        else:
            origin = time.perf_counter()
            for index, driver in enumerate(drivers):
                offsets = _arrival_process(config, index).times(
                    config.requests_per_client, 0.0
                )
                threads.append(
                    threading.Thread(
                        target=_open_loop,
                        args=(driver, offsets, origin, per_client[index]),
                        name=f"loadgen-open-{index}",
                    )
                )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        duration = time.perf_counter() - started
    finally:
        for driver in drivers:
            driver.close()

    samples = [sample for bucket in per_client for sample in bucket]
    errors = [sample for sample in samples if not sample.ok]
    by_op: Dict[str, List[float]] = {}
    for sample in samples:
        by_op.setdefault(sample.op, []).append(sample.latency_ms)
    return {
        "mode": mode,
        "clients": config.clients,
        "requests_per_client": config.requests_per_client,
        "operations": len(samples),
        "duration_s": round(duration, 3),
        "throughput_rps": round(len(samples) / duration, 3) if duration > 0 else None,
        "errors": len(errors),
        "error_rate": round(len(errors) / len(samples), 6) if samples else 0.0,
        "error_kinds": sorted({sample.error_kind for sample in errors if sample.error_kind}),
        "latency_ms": _latency_summary([sample.latency_ms for sample in samples]),
        "by_op": {
            op: _latency_summary(latencies) for op, latencies in sorted(by_op.items())
        },
    }


def _determinism_check(config: LoadgenConfig, make_client: Callable[[], ServiceClient]) -> Dict[str, Any]:
    """Two sessions from the same spec must derive the same seed and run to
    byte-identical summaries — the served engine is as reproducible as a
    direct ``run_simulation``."""
    client = make_client()
    spec = dict(_MIXES[config.mix])
    first = client.create_session_info(**spec)
    second = client.create_session_info(**spec)
    try:
        summaries = [
            json.dumps(client.run(str(info["session"])), sort_keys=True)
            for info in (first, second)
        ]
    finally:
        for info in (first, second):
            try:
                client.close_session(str(info["session"]))
            except ServiceClientError:
                pass
    return {
        "ok": summaries[0] == summaries[1] and first["seed"] == second["seed"],
        "seed": first["seed"],
        "sessions": [str(first["session"]), str(second["session"])],
    }


def run_loadgen(
    config: LoadgenConfig,
    client_factory: Optional[Callable[[], ServiceClient]] = None,
) -> Dict[str, Any]:
    """Drive the configured load against the server and return the report."""
    make_client = client_factory or (lambda: ServiceClient(config.url, timeout=config.timeout))
    make_client().ping()

    modes = {mode: _run_mode(mode, config, make_client) for mode in config.modes}
    determinism = _determinism_check(config, make_client)

    worst_p95 = max(
        (result["latency_ms"].get("p95_ms", 0.0) or 0.0 for result in modes.values()),
        default=0.0,
    )
    total_errors = sum(result["errors"] for result in modes.values())
    gates = {
        "error_rate_zero": total_errors == 0,
        "p95_under_ceiling": worst_p95 <= config.p95_ceiling_ms,
        "determinism_ok": determinism["ok"],
    }
    return {
        "config": {
            "url": config.url,
            "clients": config.clients,
            "requests_per_client": config.requests_per_client,
            "mode": config.mode,
            "arrival": config.arrival,
            "rate": config.rate,
            "mix": config.mix,
            "seed": config.seed,
            "p95_ceiling_ms": config.p95_ceiling_ms,
        },
        "modes": modes,
        "determinism": determinism,
        "gates": gates,
        "passed": all(gates.values()),
    }


# -- bench file -----------------------------------------------------------------------


def _bench_metrics(report: Dict[str, Any]) -> Dict[str, Any]:
    metrics: Dict[str, Any] = {
        "error_rate": max(
            (result["error_rate"] for result in report["modes"].values()), default=0.0
        ),
        "determinism_ok": bool(report["determinism"]["ok"]),
    }
    for mode, result in sorted(report["modes"].items()):
        latency = result["latency_ms"]
        metrics[f"{mode}_throughput_rps"] = result["throughput_rps"]
        metrics[f"{mode}_p50_ms"] = latency.get("p50_ms")
        metrics[f"{mode}_p95_ms"] = latency.get("p95_ms")
        metrics[f"{mode}_p99_ms"] = latency.get("p99_ms")
    return metrics


def write_bench(report: Dict[str, Any], path: Path) -> Dict[str, Any]:
    """Write ``path`` in the repo's BENCH shape: a pinned ``baseline`` (kept
    from an existing file), the ``current`` run, and numeric ``deltas``."""
    path = Path(path)
    current = _bench_metrics(report)
    baseline = current
    if path.exists():
        try:
            baseline = json.loads(path.read_text())["baseline"]
        except (json.JSONDecodeError, KeyError, TypeError):
            baseline = current
    deltas = {}
    for key, value in current.items():
        base = baseline.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool) and isinstance(
            base, (int, float)
        ) and not isinstance(base, bool):
            deltas[key] = round(value - base, 3)
    bench = {
        "benchmark": "repro.service loadgen",
        "config": report["config"],
        "baseline": baseline,
        "current": current,
        "deltas": deltas,
        "passed": report["passed"],
    }
    path.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    return bench


def format_report(report: Dict[str, Any]) -> str:
    """A terminal-friendly rendering of a loadgen report."""
    lines = [
        f"loadgen against {report['config']['url']} "
        f"(mix={report['config']['mix']}, clients={report['config']['clients']}, "
        f"requests/client={report['config']['requests_per_client']})"
    ]
    for mode, result in sorted(report["modes"].items()):
        latency = result["latency_ms"]
        lines.append(
            f"  {mode:>6}: {result['operations']} ops in {result['duration_s']}s "
            f"({result['throughput_rps']} req/s), errors={result['errors']}"
        )
        if latency.get("count"):
            lines.append(
                f"          p50={latency['p50_ms']}ms p95={latency['p95_ms']}ms "
                f"p99={latency['p99_ms']}ms max={latency['max_ms']}ms"
            )
    determinism = report["determinism"]
    lines.append(
        f"  determinism: {'ok' if determinism['ok'] else 'DRIFT'} "
        f"(seed={determinism['seed']}, sessions={determinism['sessions']})"
    )
    lines.append(f"  gates: {report['gates']} -> {'PASS' if report['passed'] else 'FAIL'}")
    return "\n".join(lines)
