"""One-line descriptions of everything registered, for humans and RPC alike.

Backs both the ``registry.list`` RPC method and the bare ``repro list``
command: every registry (scenarios, workloads, adversaries, topologies,
experiments, probes) rendered as ``{"name": ..., "description": ...}``
entries, with descriptions pulled from the registered object itself — the
class docstring's first line, an experiment's declared description, or a
topology's ``summary()``.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..api import (
    ADVERSARY_REGISTRY,
    EXPERIMENT_REGISTRY,
    SCENARIO_REGISTRY,
    TOPOLOGY_REGISTRY,
    WORKLOAD_REGISTRY,
    probe_names,
)
from ..obs import probes as _probes_module

__all__ = ["registry_catalog"]


def _first_doc_line(obj: Any, fallback: str = "(no description)") -> str:
    doc = getattr(obj, "__doc__", None)
    if not doc:
        return fallback
    stripped = doc.strip()
    return stripped.splitlines()[0] if stripped else fallback


def registry_catalog() -> Dict[str, List[Dict[str, Any]]]:
    """Every registry's entries with a one-line description each."""
    scenarios = [
        {
            "name": name,
            "description": (
                f"clients={SCENARIO_REGISTRY.get(name).client_kind}, "
                f"reads={SCENARIO_REGISTRY.get(name).buyer_read_mode}, "
                f"semantic_mining={SCENARIO_REGISTRY.get(name).semantic_mining}"
            ),
        }
        for name in SCENARIO_REGISTRY.names()
    ]
    workloads = [
        {"name": name, "description": _first_doc_line(WORKLOAD_REGISTRY.get(name))}
        for name in WORKLOAD_REGISTRY.names()
    ]
    adversaries = [
        {"name": name, "description": _first_doc_line(ADVERSARY_REGISTRY.get(name))}
        for name in ADVERSARY_REGISTRY.names()
    ]
    topologies = [
        {"name": name, "description": TOPOLOGY_REGISTRY.get(name).summary()}
        for name in TOPOLOGY_REGISTRY.names()
    ]
    experiments = [
        {
            "name": name,
            "description": (
                f"{EXPERIMENT_REGISTRY.get(name).description} "
                f"({len(EXPERIMENT_REGISTRY.get(name).claims)} claim gate(s))"
            ),
        }
        for name in EXPERIMENT_REGISTRY.names()
    ]
    probe_registry = getattr(_probes_module, "_REGISTRY", {})
    probes = [
        {"name": name, "description": _first_doc_line(probe_registry.get(name))}
        for name in probe_names()
    ]
    return {
        "scenarios": scenarios,
        "workloads": workloads,
        "adversaries": adversaries,
        "topologies": topologies,
        "experiments": experiments,
        "probes": probes,
    }
