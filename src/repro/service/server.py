"""The simulator-as-a-service facade: JSON-RPC 2.0 over stdlib HTTP.

Two layers, deliberately separable:

* :class:`SimulatorService` — the transport-independent dispatcher.  It owns
  the session table, the idle-eviction loop, the request counters behind the
  ``service`` probe, and a wall-clock :class:`~repro.obs.tracer.Tracer` of
  request-lifecycle events (``rpc.request``/``rpc.error``/``session.*``).
  Unit tests drive :meth:`SimulatorService.dispatch` directly.
* :class:`ServiceServer` — ``ThreadingHTTPServer`` + a bounded
  ``ThreadPoolExecutor``.  HTTP handler threads parse the envelope and hand
  *session* methods to the pool (so at most ``workers`` engines run at
  once); control-plane methods (``service.*``, ``registry.list``,
  ``obs.probes``) run inline so a saturated pool can still answer pings and
  an operator can always shut the server down.

The fail-closed contract on shutdown: new requests are refused with
``server_shutdown``, queued pool work is cancelled (same typed error), and
in-flight ``session.advance`` loops abort at the next block-interval step —
a killed server answers with a typed error envelope, never a hang.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from ..obs.probes import register_probe, snapshot as probe_snapshot, unregister_probe
from ..obs.tracer import Tracer
from .catalog import registry_catalog
from .errors import (
    ExecutionError,
    InvalidParamsError,
    MethodNotFoundError,
    RPC_INVALID_REQUEST,
    RPC_PARSE_ERROR,
    ServerOverloadedError,
    ServerShutdownError,
    ServiceError,
    SessionNotFoundError,
    TooManySessionsError,
)
from .persist import RequestJournal
from .session import ServiceSession, build_session_spec, session_id_for

__all__ = ["ServiceConfig", "ServiceStats", "SimulatorService", "ServiceServer"]

CONTROL_METHODS = frozenset({"service.ping", "service.status", "service.shutdown", "registry.list", "obs.probes"})
"""Methods dispatched inline on the HTTP thread, bypassing the worker pool:
they never enter a session's engine, and they must stay answerable while
every pool worker is busy (shutdown in particular)."""


@dataclass
class ServiceConfig:
    """Everything one server instance is allowed to do."""

    host: str = "127.0.0.1"
    port: int = 8547
    workers: int = 4
    """Engine concurrency: at most this many session methods run at once."""
    idle_timeout: Optional[float] = 300.0
    """Close sessions idle longer than this many wall seconds (None: never)."""
    retention_default: Optional[int] = 64
    """Retention applied to sessions whose spec asks for none, so a
    long-lived server inherits the bounded-memory contract by default.
    ``None`` leaves unbounded history to sessions that want it."""
    max_sessions: int = 64
    trace_dir: Optional[str] = None
    """Where shutdown writes the request-lifecycle trace + probe snapshot."""
    max_queue: Optional[int] = None
    """Bounded admission: refuse session methods (typed ``server_overloaded``
    with a ``retry_after`` hint) once more than ``workers + max_queue`` are
    pending, instead of queueing without bound.  ``None`` derives
    ``2 * workers``."""
    persist_dir: Optional[str] = None
    """Journal successful state-changing requests to ``<dir>/requests.jsonl``
    (fsynced per append) so a killed server can be rebuilt with ``resume``."""
    resume: bool = False
    """Replay ``persist_dir``'s journal through the dispatcher before serving,
    rebuilding byte-identical sessions (same specs, seeds, and ids)."""


@dataclass
class ServiceStats:
    """The counters behind ``service.status`` and the ``service`` probe."""

    requests: int = 0
    errors: int = 0
    in_flight: int = 0
    rejected_overload: int = 0
    sessions_created: int = 0
    sessions_closed: int = 0
    sessions_evicted: int = 0
    started_at: float = field(default_factory=time.monotonic)

    def as_dict(self, open_sessions: int) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "in_flight": self.in_flight,
            "rejected_overload": self.rejected_overload,
            "sessions_open": open_sessions,
            "sessions_created": self.sessions_created,
            "sessions_closed": self.sessions_closed,
            "sessions_evicted": self.sessions_evicted,
            "uptime_seconds": time.monotonic() - self.started_at,
        }


class SimulatorService:
    """The dispatcher: session table + method routing + observability."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        self.closed = threading.Event()
        self._sessions: Dict[str, ServiceSession] = {}
        self._sessions_lock = threading.Lock()
        self._digest_ordinals: Dict[str, int] = {}
        self._trace_lock = threading.Lock()
        self._teardown_lock = threading.Lock()
        self._teardown_done = False
        origin = time.perf_counter()
        # The server has no simulation clock; the tracer's "sim time" axis
        # carries wall seconds since service start instead.
        self.tracer = Tracer(clock=lambda: time.perf_counter() - origin)
        self._stop_eviction = threading.Event()
        self._eviction_thread: Optional[threading.Thread] = None
        register_probe("service", self._probe)
        if self.config.idle_timeout is not None:
            self._eviction_thread = threading.Thread(
                target=self._eviction_loop, name="repro-service-evict", daemon=True
            )
            self._eviction_thread.start()
        self._methods: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
            "service.ping": self._rpc_ping,
            "service.status": self._rpc_status,
            # The transport layer performs the actual stop after the
            # acknowledgement is on the wire; the dispatcher only acks.
            "service.shutdown": lambda params: {"stopping": True},
            "registry.list": lambda params: registry_catalog(),
            "obs.probes": lambda params: {"probes": probe_snapshot()},
            "session.create": self._rpc_session_create,
            "session.list": self._rpc_session_list,
            "session.describe": self._session_rpc("describe"),
            "session.status": self._session_rpc("status"),
            "session.advance": self._session_rpc("advance", "seconds", "to", "blocks"),
            "session.run": self._session_rpc("run"),
            "session.summary": self._session_rpc("summary"),
            "session.metrics": self._session_rpc("metrics_report"),
            "session.close": self._rpc_session_close,
            "contract.deploy": self._session_rpc("deploy", "account", "code", "constructor", "value"),
            "contract.call": self._session_rpc(
                "call", "contract", "function", "arguments", "account", "peer", "allow_raa"
            ),
            "tx.submit": self._session_rpc("submit", "account", "to", "data", "value", "gas_limit"),
            "tx.receipt": self._session_rpc("receipt", "transaction_hash"),
            "state.balance": self._session_rpc("balance", "account"),
            "state.storage": self._session_rpc("storage", "contract", "slot"),
            "hms.status": self._session_rpc("hms_status", "peer"),
        }
        # Durability: replay first (through the ordinary dispatcher, with
        # journaling suppressed), then open the journal for appending — a
        # resumed server continues the very log it was rebuilt from.
        self.journal: Optional[RequestJournal] = None
        self._replaying = False
        if self.config.persist_dir is not None:
            self.journal = RequestJournal(self.config.persist_dir)
            if self.config.resume:
                self._replaying = True
                try:
                    self.journal.replay(self.dispatch)
                finally:
                    self._replaying = False
            self.journal.open()

    # -- observability -------------------------------------------------------------

    def _probe(self) -> Dict[str, Any]:
        """Service request/session counters (requests, errors, open sessions)."""
        with self._sessions_lock:
            open_sessions = len(self._sessions)
        return self.stats.as_dict(open_sessions)

    def _trace(self, kind: str, **fields: Any) -> None:
        # Tracer.event is a plain append; the server records from many
        # threads, so serialize (trials never needed this — one thread).
        with self._trace_lock:
            self.tracer.event(kind, **fields)

    # -- method plumbing -----------------------------------------------------------

    def _session_rpc(self, attribute: str, *argument_names: str):
        """An RPC handler that locks the named session and calls one of its
        methods with the whitelisted keyword arguments."""

        def handler(params: Dict[str, Any]) -> Dict[str, Any]:
            session = self._session(params)
            unknown = set(params) - set(argument_names) - {"session"}
            if unknown:
                raise InvalidParamsError(
                    f"unknown parameters {sorted(unknown)}; "
                    f"accepted: {sorted(argument_names) + ['session']}"
                )
            kwargs = {name: params[name] for name in argument_names if name in params}
            with session.lock:
                session.touch()
                return getattr(session, attribute)(**kwargs)

        return handler

    def _session(self, params: Dict[str, Any]) -> ServiceSession:
        session_id = params.get("session")
        if not isinstance(session_id, str) or not session_id:
            raise InvalidParamsError("missing required parameter 'session'")
        with self._sessions_lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise SessionNotFoundError(f"no session {session_id!r} (closed or evicted?)")
        return session

    # -- dispatch ------------------------------------------------------------------

    def dispatch(self, method: str, params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Execute one request; raises :class:`ServiceError` subclasses."""
        started = time.perf_counter()
        self.stats.requests += 1
        self.stats.in_flight += 1
        try:
            if self.closed.is_set() and method != "service.status":
                raise ServerShutdownError("service is shutting down")
            handler = self._methods.get(method)
            if handler is None:
                raise MethodNotFoundError(
                    f"unknown method {method!r}; known: {sorted(self._methods)}"
                )
            if params is not None and not isinstance(params, dict):
                raise InvalidParamsError("params must be an object")
            result = handler(dict(params or {}))
            if self.journal is not None and not self._replaying:
                self.journal.record(method, params)
        except ServiceError as error:
            self.stats.errors += 1
            self._trace(
                "rpc.error",
                method=method,
                error_kind=error.kind,
                message=str(error),
                duration_ms=(time.perf_counter() - started) * 1000.0,
            )
            raise
        except Exception as error:
            self.stats.errors += 1
            self._trace(
                "rpc.error",
                method=method,
                error_kind="execution_error",
                message=str(error),
                duration_ms=(time.perf_counter() - started) * 1000.0,
            )
            raise ExecutionError(f"internal error in {method}: {error}") from error
        finally:
            self.stats.in_flight -= 1
        self._trace(
            "rpc.request",
            method=method,
            duration_ms=(time.perf_counter() - started) * 1000.0,
        )
        return result

    # -- control plane -------------------------------------------------------------

    def _rpc_ping(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {"ok": True, "service": "repro", "sessions": len(self._sessions)}

    def _rpc_status(self, params: Dict[str, Any]) -> Dict[str, Any]:
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        status: Dict[str, Any] = {
            "stats": self.stats.as_dict(len(sessions)),
            "closing": self.closed.is_set(),
            "config": {
                "workers": self.config.workers,
                "idle_timeout": self.config.idle_timeout,
                "retention_default": self.config.retention_default,
                "max_sessions": self.config.max_sessions,
            },
            "sessions": [
                {
                    "session": session.session_id,
                    "state": session.state,
                    "idle_seconds": session.idle_seconds,
                    "requests_served": session.requests_served,
                }
                for session in sessions
            ],
        }
        if self.journal is not None:
            status["config"]["persist_dir"] = str(self.config.persist_dir)
            status["journal"] = self.journal.counters()
        return status

    # -- session lifecycle ---------------------------------------------------------

    def _rpc_session_create(self, params: Dict[str, Any]) -> Dict[str, Any]:
        spec = build_session_spec(params, retention_default=self.config.retention_default)
        with self._sessions_lock:
            if len(self._sessions) >= self.config.max_sessions:
                raise TooManySessionsError(
                    f"server is at its {self.config.max_sessions}-session capacity; "
                    "close or wait for idle eviction"
                )
            from ..api.checkpoint import spec_digest

            digest = spec_digest(spec)
            ordinal = self._digest_ordinals.get(digest, 0)
            self._digest_ordinals[digest] = ordinal + 1
            session = ServiceSession(session_id_for(spec, ordinal), spec)
            self._sessions[session.session_id] = session
            self.stats.sessions_created += 1
        self._trace(
            "session.create",
            session=session.session_id,
            seed=spec.seed,
            workload=spec.workload,
            scenario=spec.scenario_name,
        )
        return {
            "session": session.session_id,
            "seed": spec.seed,
            "spec_digest": digest,
            "retention": spec.retention,
            "spec": spec.describe(),
        }

    def _rpc_session_list(self, params: Dict[str, Any]) -> Dict[str, Any]:
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        return {
            "sessions": [
                {
                    "session": session.session_id,
                    "state": session.state,
                    "idle_seconds": session.idle_seconds,
                    "requests_served": session.requests_served,
                }
                for session in sessions
            ]
        }

    def _rpc_session_close(self, params: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(params)
        with session.lock:
            session.close()
        with self._sessions_lock:
            self._sessions.pop(session.session_id, None)
        self.stats.sessions_closed += 1
        self._trace("session.close", session=session.session_id)
        return {"session": session.session_id, "state": session.state}

    # -- eviction ------------------------------------------------------------------

    def _eviction_loop(self) -> None:
        timeout = self.config.idle_timeout
        interval = max(min(timeout / 4.0, 5.0), 0.02)
        while not self._stop_eviction.wait(interval):
            self.evict_idle_sessions()

    def evict_idle_sessions(self) -> List[str]:
        """Close and drop sessions idle past the configured timeout.  A
        session whose lock is held (a request is mid-flight) is by
        definition not idle and is skipped without blocking."""
        timeout = self.config.idle_timeout
        if timeout is None:
            return []
        with self._sessions_lock:
            candidates = [
                session
                for session in self._sessions.values()
                if session.idle_seconds > timeout
            ]
        evicted: List[str] = []
        for session in candidates:
            if not session.lock.acquire(blocking=False):
                continue
            try:
                if session.idle_seconds > timeout:
                    session.close()
                    evicted.append(session.session_id)
            finally:
                session.lock.release()
        if evicted:
            with self._sessions_lock:
                for session_id in evicted:
                    self._sessions.pop(session_id, None)
            self.stats.sessions_evicted += len(evicted)
            for session_id in evicted:
                self._trace("session.evict", session=session_id)
        return evicted

    # -- teardown ------------------------------------------------------------------

    def close(self) -> None:
        """Refuse new work, interrupt in-flight sessions, release resources.

        Idempotence is tracked by its own flag, not ``self.closed``: the
        transport layer sets ``closed`` early (to fail requests fast) and
        still relies on this method to do the actual teardown afterwards.
        """
        self.closed.set()
        self._stop_eviction.set()
        with self._teardown_lock:
            if self._teardown_done:
                return
            self._teardown_done = True
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        # Signal first (in-flight advance loops abort at their next step),
        # then close each session under a bounded lock wait.
        for session in sessions:
            session.closed.set()
        for session in sessions:
            if session.lock.acquire(timeout=5.0):
                try:
                    session.state = "closed"
                    session.handle.metrics.close()
                finally:
                    session.lock.release()
        with self._sessions_lock:
            self._sessions.clear()
        if self._eviction_thread is not None:
            self._eviction_thread.join(timeout=2.0)
        self.write_artifacts()
        if self.journal is not None:
            self.journal.close()
        unregister_probe("service")

    def write_artifacts(self) -> Dict[str, Path]:
        """Write the request-lifecycle trace and a final probe snapshot to
        ``config.trace_dir`` (no-op when unset)."""
        if self.config.trace_dir is None:
            return {}
        target = Path(self.config.trace_dir)
        target.mkdir(parents=True, exist_ok=True)
        with self._trace_lock:
            paths = self.tracer.write(target, "service")
        probes_path = target / "service_probes.json"
        probes_path.write_text(
            json.dumps(probe_snapshot(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        paths["probes"] = probes_path
        return paths


# -- HTTP transport ------------------------------------------------------------------


class _RequestHandler(BaseHTTPRequestHandler):
    """One JSON-RPC 2.0 request per POST; ``GET /healthz`` for liveness."""

    server_version = "repro-service"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # the tracer records request lifecycles; stderr stays quiet

    def _respond(self, status: int, body: Dict[str, Any]) -> None:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            service: SimulatorService = self.server.rpc_server.service  # type: ignore[attr-defined]
            self._respond(200, {"ok": not service.closed.is_set()})
        else:
            self._respond(404, {"ok": False, "error": "unknown path (POST JSON-RPC to /rpc)"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        rpc_server: "ServiceServer" = self.server.rpc_server  # type: ignore[attr-defined]
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length)
            envelope = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._respond(
                200,
                _error_envelope(None, RPC_PARSE_ERROR, "request body is not valid JSON"),
            )
            return
        if not isinstance(envelope, dict) or not isinstance(envelope.get("method"), str):
            self._respond(
                200,
                _error_envelope(
                    None, RPC_INVALID_REQUEST, "expected a single JSON-RPC request object"
                ),
            )
            return
        request_id = envelope.get("id")
        method = envelope["method"]
        params = envelope.get("params")
        try:
            result = rpc_server.execute(method, params)
        except ServiceError as error:
            self._respond(
                200, {"jsonrpc": "2.0", "id": request_id, "error": error.to_rpc_error()}
            )
            return
        except Exception as error:  # transport-layer surprise: still answer
            self._respond(
                200,
                {
                    "jsonrpc": "2.0",
                    "id": request_id,
                    "error": ExecutionError(f"internal error: {error}").to_rpc_error(),
                },
            )
            return
        self._respond(200, {"jsonrpc": "2.0", "id": request_id, "result": result})
        if method == "service.shutdown":
            # The envelope is already on the wire; stop the server from a
            # helper thread (shutdown() would deadlock from a handler).
            threading.Thread(target=rpc_server.shutdown, daemon=True).start()


def _error_envelope(request_id: Any, code: int, message: str) -> Dict[str, Any]:
    return {
        "jsonrpc": "2.0",
        "id": request_id,
        "error": {"code": code, "message": message, "data": {"kind": "invalid_request"}},
    }


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class ServiceServer:
    """The long-running server: HTTP front, worker pool, one SimulatorService."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.service = SimulatorService(self.config)
        self.executor = ThreadPoolExecutor(
            max_workers=max(self.config.workers, 1), thread_name_prefix="repro-service"
        )
        self.httpd = _HTTPServer((self.config.host, self.config.port), _RequestHandler)
        self.httpd.rpc_server = self  # type: ignore[attr-defined]
        self.host, self.port = self.httpd.server_address[:2]
        self._serve_thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        self._shutdown_lock = threading.Lock()
        workers = max(self.config.workers, 1)
        queue_slots = (
            2 * workers if self.config.max_queue is None else max(self.config.max_queue, 0)
        )
        self._admission_limit = workers + queue_slots
        self._pending = 0
        self._pending_lock = threading.Lock()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request execution ---------------------------------------------------------

    def execute(self, method: str, params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        """Run one request: control-plane inline, session methods pooled.

        Session methods pass bounded admission first: once ``workers +
        max_queue`` are already pending, the request is refused immediately
        with a typed ``server_overloaded`` (and a ``retry_after`` hint sized
        to the backlog) instead of parking the HTTP thread behind an
        unbounded executor queue.
        """
        if method in CONTROL_METHODS:
            return self.service.dispatch(method, params)
        if self.service.closed.is_set():
            raise ServerShutdownError("service is shutting down")
        with self._pending_lock:
            if self._pending >= self._admission_limit:
                backlog = self._pending - max(self.config.workers, 1) + 1
                retry_after = round(min(1.0, 0.05 * max(backlog, 1)), 3)
                self.service.stats.rejected_overload += 1
                self.service._trace(
                    "rpc.error",
                    method=method,
                    error_kind="server_overloaded",
                    message=f"{self._pending} requests pending",
                    duration_ms=0.0,
                )
                raise ServerOverloadedError(
                    f"server overloaded: {self._pending} session requests pending "
                    f"(limit {self._admission_limit}); retry after {retry_after}s",
                    retry_after=retry_after,
                )
            self._pending += 1
        try:
            future: Future = self.executor.submit(self.service.dispatch, method, params)
        except RuntimeError as error:  # executor already shut down
            with self._pending_lock:
                self._pending -= 1
            raise ServerShutdownError("service is shutting down") from error
        future.add_done_callback(self._release_pending)
        try:
            return future.result()
        except CancelledError as error:
            raise ServerShutdownError(
                "request cancelled: the server shut down before it ran"
            ) from error

    def _release_pending(self, _future: Future) -> None:
        with self._pending_lock:
            self._pending -= 1

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> "ServiceServer":
        """Serve in a background thread (returns immediately)."""
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self.httpd.serve_forever,
                kwargs={"poll_interval": 0.1},
                name="repro-service-http",
                daemon=True,
            )
            self._serve_thread.start()
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until :meth:`shutdown` completes (CLI foreground mode)."""
        return self._stopped.wait(timeout)

    def shutdown(self) -> None:
        """Graceful, idempotent stop: fail queued/in-flight work closed,
        stop accepting, write artifacts, release the pool."""
        with self._shutdown_lock:
            if self._stopped.is_set():
                return
            # Order matters: mark closed (new requests refused, in-flight
            # advance loops abort) BEFORE cancelling queued futures, so
            # everything fails with the same typed server_shutdown error.
            self.service.closed.set()
            with self.service._sessions_lock:
                for session in self.service._sessions.values():
                    session.closed.set()
            self.executor.shutdown(wait=False, cancel_futures=True)
            self.httpd.shutdown()
            if self._serve_thread is not None:
                self._serve_thread.join(timeout=5.0)
            self.httpd.server_close()
            self.service.close()
            self._stopped.set()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
