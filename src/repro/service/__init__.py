"""repro.service — the simulator as a long-running JSON-RPC service.

Everything else in this repo runs a simulation as a batch: build, run,
summarize, exit.  This package keeps simulations *resident* — a
:class:`ServiceServer` multiplexes many concurrent sessions behind a
JSON-RPC-over-HTTP facade (stdlib only), each session a locked
:class:`ServiceSession` with a deterministic spec-derived seed, so a
replayed request log rebuilds byte-identical state.  :mod:`.client` is the
matching stdlib HTTP client, :mod:`.loadgen` the closed/open-loop load
generator that measures the facade's tail latency, and :mod:`.catalog` the
registry listing backing ``registry.list`` and ``repro list``.
"""

from .catalog import registry_catalog
from .client import (
    ServiceClient,
    has_success_status,
    payload,
    post_request,
    post_request_localhost,
)
from .errors import (
    ExecutionError,
    InvalidParamsError,
    MethodNotFoundError,
    ServerShutdownError,
    ServiceClientError,
    ServiceConnectionError,
    ServiceError,
    ServiceRPCError,
    SessionClosedError,
    SessionNotFoundError,
    TooManySessionsError,
)
from .loadgen import LoadgenConfig, format_report, run_loadgen, write_bench
from .server import ServiceConfig, ServiceServer, SimulatorService
from .session import ServiceSession, build_session_spec, derive_session_seed, session_id_for

__all__ = [
    "ServiceServer",
    "ServiceConfig",
    "SimulatorService",
    "ServiceSession",
    "ServiceClient",
    "LoadgenConfig",
    "run_loadgen",
    "write_bench",
    "format_report",
    "registry_catalog",
    "build_session_spec",
    "derive_session_seed",
    "session_id_for",
    "payload",
    "post_request",
    "post_request_localhost",
    "has_success_status",
    "ServiceError",
    "MethodNotFoundError",
    "InvalidParamsError",
    "SessionNotFoundError",
    "SessionClosedError",
    "ServerShutdownError",
    "TooManySessionsError",
    "ExecutionError",
    "ServiceClientError",
    "ServiceConnectionError",
    "ServiceRPCError",
]
