"""The service's typed error taxonomy, shared by server and client.

Every failure a caller can see has a stable string ``kind`` (the contract
tests and the load generator key on) and a JSON-RPC integer code (what goes
on the wire).  The split matters for the fail-closed story: a session that
dies mid-request must surface as a *typed* error a client can match on —
``server_shutdown``, ``session_closed`` — never as a hang or a bare 500.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = [
    "ServiceError",
    "MethodNotFoundError",
    "InvalidParamsError",
    "SessionNotFoundError",
    "SessionClosedError",
    "ServerShutdownError",
    "TooManySessionsError",
    "ServerOverloadedError",
    "ExecutionError",
    "ServiceClientError",
    "ServiceConnectionError",
    "ServiceRPCError",
    "RPC_PARSE_ERROR",
    "RPC_INVALID_REQUEST",
    "RPC_METHOD_NOT_FOUND",
    "RPC_INVALID_PARAMS",
]

# JSON-RPC 2.0 pre-defined codes.
RPC_PARSE_ERROR = -32700
RPC_INVALID_REQUEST = -32600
RPC_METHOD_NOT_FOUND = -32601
RPC_INVALID_PARAMS = -32602

# Implementation-defined server-error range (-32000..-32099).
_RPC_SESSION_NOT_FOUND = -32001
_RPC_SESSION_CLOSED = -32002
_RPC_SERVER_SHUTDOWN = -32003
_RPC_TOO_MANY_SESSIONS = -32004
_RPC_EXECUTION_ERROR = -32005
_RPC_SERVER_OVERLOADED = -32006


class ServiceError(Exception):
    """Base of every error the dispatcher deliberately raises.

    ``kind`` is the stable machine-readable discriminator carried in the
    JSON-RPC error's ``data`` object; ``rpc_code`` is the integer code.
    """

    kind = "service_error"
    rpc_code = _RPC_EXECUTION_ERROR

    def __init__(self, message: str, data: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.data = dict(data or {})

    def to_rpc_error(self) -> Dict[str, Any]:
        """The JSON-RPC 2.0 ``error`` member for this failure."""
        payload = dict(self.data)
        payload["kind"] = self.kind
        return {"code": self.rpc_code, "message": str(self), "data": payload}


class MethodNotFoundError(ServiceError):
    kind = "method_not_found"
    rpc_code = RPC_METHOD_NOT_FOUND


class InvalidParamsError(ServiceError):
    kind = "invalid_params"
    rpc_code = RPC_INVALID_PARAMS


class SessionNotFoundError(ServiceError):
    kind = "session_not_found"
    rpc_code = _RPC_SESSION_NOT_FOUND


class SessionClosedError(ServiceError):
    """The session was closed (explicitly or by idle eviction)."""

    kind = "session_closed"
    rpc_code = _RPC_SESSION_CLOSED


class ServerShutdownError(ServiceError):
    """The server is stopping: in-flight work fails closed with this kind."""

    kind = "server_shutdown"
    rpc_code = _RPC_SERVER_SHUTDOWN


class TooManySessionsError(ServiceError):
    kind = "too_many_sessions"
    rpc_code = _RPC_TOO_MANY_SESSIONS


class ServerOverloadedError(ServiceError):
    """The worker pool and its bounded queue are saturated: the request is
    refused immediately (with a ``retry_after`` hint in ``data``) instead of
    queueing without bound behind the executor."""

    kind = "server_overloaded"
    rpc_code = _RPC_SERVER_OVERLOADED

    def __init__(
        self,
        message: str,
        retry_after: float = 0.1,
        data: Optional[Dict[str, Any]] = None,
    ) -> None:
        payload = dict(data or {})
        payload.setdefault("retry_after", retry_after)
        super().__init__(message, payload)
        self.retry_after = float(payload["retry_after"])


class ExecutionError(ServiceError):
    """An unexpected engine-side failure, wrapped so callers still get a
    typed envelope rather than a transport-level 500."""

    kind = "execution_error"
    rpc_code = _RPC_EXECUTION_ERROR


_KIND_TO_CLASS = {
    cls.kind: cls
    for cls in (
        MethodNotFoundError,
        InvalidParamsError,
        SessionNotFoundError,
        SessionClosedError,
        ServerShutdownError,
        TooManySessionsError,
        ServerOverloadedError,
        ExecutionError,
    )
}


def error_from_kind(kind: str, message: str) -> ServiceError:
    """Rebuild the matching typed error from a wire-level ``kind``."""
    return _KIND_TO_CLASS.get(kind, ServiceError)(message)


# -- client-side errors ---------------------------------------------------------------


class ServiceClientError(Exception):
    """Base of everything :class:`repro.service.client.ServiceClient` raises."""


class ServiceConnectionError(ServiceClientError):
    """The transport failed: refused, reset, or timed out.  A killed server
    surfaces as this (or as a :class:`ServiceRPCError` whose kind is
    ``server_shutdown`` when the error envelope still got out)."""


class ServiceRPCError(ServiceClientError):
    """The server answered with a JSON-RPC error envelope."""

    def __init__(self, code: int, message: str, data: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.code = code
        self.data = dict(data or {})

    @property
    def kind(self) -> str:
        """The server-side error taxonomy kind (``session_not_found``, ...)."""
        return str(self.data.get("kind", "service_error"))
